//! `monitord` — the component-utilization monitoring daemon (§2.3).
//!
//! On each emulated server, `monitord` periodically samples the
//! utilization of the machine's components and reports it to the solver in
//! small UDP messages. The sampling back end is pluggable through
//! [`UtilizationSource`]:
//!
//! * [`ProcSource`] samples a real Linux host's `/proc/stat` and
//!   `/proc/diskstats` — the paper's deployment;
//! * [`TraceSource`] replays a recorded [`crate::trace::UtilizationTrace`];
//! * [`FnSource`] adapts a closure — how the cluster simulation feeds its
//!   per-server utilizations into Mercury.

use super::metrics::MonitordStats;
use super::proto::{self, Reply, Request};
use crate::error::Error;
use crate::trace::UtilizationTrace;
use crate::units::Seconds;
use std::fs;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use telemetry::Registry;

/// Provides `(component, utilization)` samples for one machine.
///
/// Implementations may keep state between calls (rate counters, trace
/// cursors). Returning an empty vector is allowed and simply skips the
/// update for that interval.
pub trait UtilizationSource: Send + 'static {
    /// Takes one sample. Utilizations are fractions in `[0, 1]`; values
    /// outside the range are clamped downstream.
    fn sample(&mut self) -> Vec<(String, f64)>;
}

/// A [`UtilizationSource`] backed by a closure.
#[derive(Debug)]
pub struct FnSource<F>(pub F);

impl<F> UtilizationSource for FnSource<F>
where
    F: FnMut() -> Vec<(String, f64)> + Send + 'static,
{
    fn sample(&mut self) -> Vec<(String, f64)> {
        (self.0)()
    }
}

/// Replays a recorded utilization trace row by row (one row per sample,
/// clamping at the final row), mapping trace components 1:1 onto solver
/// components.
#[derive(Debug, Clone)]
pub struct TraceSource {
    trace: UtilizationTrace,
    cursor: usize,
}

impl TraceSource {
    /// Creates a source replaying `trace` from its beginning.
    pub fn new(trace: UtilizationTrace) -> Self {
        TraceSource { trace, cursor: 0 }
    }

    /// Rows already replayed.
    pub fn position(&self) -> usize {
        self.cursor
    }
}

impl UtilizationSource for TraceSource {
    fn sample(&mut self) -> Vec<(String, f64)> {
        let t = Seconds(self.cursor as f64 * self.trace.interval().0);
        let row = match self.trace.at(t) {
            Some(row) => row,
            None => return Vec::new(),
        };
        let out = self
            .trace
            .components()
            .iter()
            .zip(row)
            .map(|(c, u)| (c.clone(), u.fraction()))
            .collect();
        if self.cursor + 1 < self.trace.len() {
            self.cursor += 1;
        }
        out
    }
}

/// The §2.3 "Mercury for modern processors" pipeline as a monitord
/// source: a provider yields per-interval performance-counter samples,
/// the event-energy model turns them into an estimated average power,
/// and the power is mapped linearly onto `[0% = P_base, 100% = P_max]` —
/// the "low-level utilization" reported to the solver, which keeps the
/// solver itself unmodified.
pub struct PerfSource<F> {
    component: String,
    model: crate::perf::EventEnergyModel,
    base: crate::units::Watts,
    max: crate::units::Watts,
    provider: F,
}

impl<F> std::fmt::Debug for PerfSource<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PerfSource")
            .field("component", &self.component)
            .field("base", &self.base)
            .field("max", &self.max)
            .finish_non_exhaustive()
    }
}

impl<F> PerfSource<F>
where
    F: FnMut() -> crate::perf::CounterSample + Send + 'static,
{
    /// Creates a source reporting for `component`, using `provider` to
    /// read the hardware counters each interval and `(base, max)` as the
    /// linear power range the solver was configured with.
    pub fn new(
        component: impl Into<String>,
        model: crate::perf::EventEnergyModel,
        base_w: f64,
        max_w: f64,
        provider: F,
    ) -> Self {
        PerfSource {
            component: component.into(),
            model,
            base: crate::units::Watts(base_w),
            max: crate::units::Watts(max_w),
            provider,
        }
    }
}

impl<F> UtilizationSource for PerfSource<F>
where
    F: FnMut() -> crate::perf::CounterSample + Send + 'static,
{
    fn sample(&mut self) -> Vec<(String, f64)> {
        let counters = (self.provider)();
        let util = self
            .model
            .low_level_utilization(&counters, self.base, self.max);
        vec![(self.component.clone(), util.fraction())]
    }
}

/// Samples CPU and disk utilization from a Linux host's `/proc`.
///
/// CPU utilization is `1 − idle_share` over `/proc/stat` deltas (idle +
/// iowait count as idle). Disk utilization is the rate of change of the
/// "time spent doing I/Os" field of `/proc/diskstats`. The first sample
/// after construction reports zeros (no deltas yet), matching how real
/// monitoring daemons warm up.
#[derive(Debug)]
pub struct ProcSource {
    cpu_component: String,
    disk_component: String,
    disk_device: String,
    last_cpu: Option<(u64, u64)>,
    last_disk: Option<std::time::Instant>,
    last_disk_ms: Option<u64>,
    proc_root: std::path::PathBuf,
}

impl ProcSource {
    /// Creates a source mapping the host CPU to `cpu_component` and the
    /// named block device (e.g. `"sda"`) to `disk_component`.
    pub fn new(
        cpu_component: impl Into<String>,
        disk_component: impl Into<String>,
        disk_device: impl Into<String>,
    ) -> Self {
        ProcSource {
            cpu_component: cpu_component.into(),
            disk_component: disk_component.into(),
            disk_device: disk_device.into(),
            last_cpu: None,
            last_disk: None,
            last_disk_ms: None,
            proc_root: "/proc".into(),
        }
    }

    /// Points the source at an alternative procfs root — lets tests (and
    /// containers) supply canned `stat`/`diskstats` files.
    pub fn with_proc_root(mut self, root: impl Into<std::path::PathBuf>) -> Self {
        self.proc_root = root.into();
        self
    }

    fn read_cpu_counters(&self) -> Option<(u64, u64)> {
        let text = fs::read_to_string(self.proc_root.join("stat")).ok()?;
        let line = text.lines().find(|l| l.starts_with("cpu "))?;
        let fields: Vec<u64> = line
            .split_whitespace()
            .skip(1)
            .filter_map(|f| f.parse().ok())
            .collect();
        if fields.len() < 5 {
            return None;
        }
        let total: u64 = fields.iter().sum();
        // idle (index 3) + iowait (index 4).
        let idle = fields[3] + fields.get(4).copied().unwrap_or(0);
        Some((total, idle))
    }

    fn read_disk_io_ms(&self) -> Option<u64> {
        let text = fs::read_to_string(self.proc_root.join("diskstats")).ok()?;
        for line in text.lines() {
            let fields: Vec<&str> = line.split_whitespace().collect();
            // name is field 2 (0-based); "time spent doing I/Os (ms)" is
            // field 12.
            if fields.len() > 12 && fields[2] == self.disk_device {
                return fields[12].parse().ok();
            }
        }
        None
    }
}

impl UtilizationSource for ProcSource {
    fn sample(&mut self) -> Vec<(String, f64)> {
        let mut out = Vec::with_capacity(2);
        if let Some((total, idle)) = self.read_cpu_counters() {
            if let Some((last_total, last_idle)) = self.last_cpu {
                let dt = total.saturating_sub(last_total);
                let di = idle.saturating_sub(last_idle);
                if dt > 0 {
                    let busy = 1.0 - di as f64 / dt as f64;
                    out.push((self.cpu_component.clone(), busy.clamp(0.0, 1.0)));
                }
            }
            self.last_cpu = Some((total, idle));
        }
        if let Some(io_ms) = self.read_disk_io_ms() {
            let now = std::time::Instant::now();
            if let (Some(last_ms), Some(last_t)) = (self.last_disk_ms, self.last_disk) {
                let wall_ms = now.duration_since(last_t).as_millis() as f64;
                if wall_ms > 0.0 {
                    let busy = io_ms.saturating_sub(last_ms) as f64 / wall_ms;
                    out.push((self.disk_component.clone(), busy.clamp(0.0, 1.0)));
                }
            }
            self.last_disk_ms = Some(io_ms);
            self.last_disk = Some(now);
        }
        out
    }
}

/// A running monitoring daemon: samples a source on an interval and ships
/// UDP updates to the solver service.
#[derive(Debug)]
pub struct Monitord {
    machine: String,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    stats: MonitordStats,
}

/// Ships one utilization update and waits for the service's reply.
///
/// Historically the reporting loop fired and forgot (`let _ =` on both
/// the send and the reply drain), which made a dead service, a chopped
/// datagram, and a healthy ack all look identical. Every outcome is now
/// classified: booked on `stats` and returned as a typed [`Error`] so
/// the loop (and tests) can tell them apart. The daemon itself stays
/// tolerant — a failed report is counted and the next interval retried.
fn report_update(
    socket: &UdpSocket,
    machine: &str,
    utilizations: Vec<(String, f32)>,
    stats: &MonitordStats,
) -> Result<(), Error> {
    let req = Request::UtilizationUpdate {
        machine: machine.to_string(),
        utilizations,
    };
    if let Err(e) = socket.send(&proto::encode_request(&req)) {
        stats.send_errors.inc();
        return Err(e.into());
    }
    stats.updates.inc();
    let mut buf = [0u8; proto::MAX_DATAGRAM];
    let n = match socket.recv(&mut buf) {
        Ok(n) => n,
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            stats.send_errors.inc();
            return Err(Error::Timeout);
        }
        Err(e) => {
            stats.send_errors.inc();
            return Err(e.into());
        }
    };
    let reply = match proto::decode_reply(&buf[..n]) {
        Ok(reply) => reply,
        Err(e) => {
            stats.malformed.inc();
            return Err(e);
        }
    };
    stats.record_reply(&reply);
    match reply {
        Reply::Ack => Ok(()),
        Reply::Error { message } => Err(Error::Remote { reason: message }),
        other => Err(Error::protocol(format!(
            "unexpected reply {other:?} to a utilization update"
        ))),
    }
}

impl Monitord {
    /// Spawns a daemon reporting for `machine` to the solver at
    /// `solver_addr`, sampling every `interval` (the paper's default is
    /// one second).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the reporting socket cannot be created.
    pub fn spawn(
        machine: impl Into<String>,
        mut source: impl UtilizationSource,
        solver_addr: SocketAddr,
        interval: Duration,
    ) -> Result<Self, Error> {
        let machine = machine.into();
        let socket = UdpSocket::bind(("0.0.0.0", 0))?;
        socket.connect(solver_addr)?;
        // The service answers every update; wait briefly for the ack so
        // outcomes can be classified (and the socket buffer stays clean).
        socket.set_read_timeout(Some(Duration::from_millis(5)))?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = MonitordStats::new();
        let thread = {
            let stop = Arc::clone(&stop);
            let stats = stats.clone();
            let machine = machine.clone();
            std::thread::Builder::new()
                .name(format!("monitord-{machine}"))
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let utilizations: Vec<(String, f32)> = source
                            .sample()
                            .into_iter()
                            .map(|(c, u)| (c, u as f32))
                            .collect();
                        if !utilizations.is_empty() {
                            // Failures are booked on `stats`; the daemon
                            // retries at the next interval regardless.
                            let _ = report_update(&socket, &machine, utilizations, &stats);
                        }
                        std::thread::sleep(interval);
                    }
                })
                .map_err(Error::Io)?
        };
        Ok(Monitord {
            machine,
            stop,
            thread: Some(thread),
            stats,
        })
    }

    /// The daemon's always-on reporting counters (updates, acks,
    /// malformed replies, socket errors).
    pub fn stats(&self) -> &MonitordStats {
        &self.stats
    }

    /// Registers the `mercury_monitord_*` families on `registry`,
    /// labelled with this daemon's machine name — typically the registry
    /// of the [`SolverService`](super::SolverService) it reports to, so
    /// client-side counters appear in the same scrape.
    pub fn register_metrics(&self, registry: &Registry) {
        self.stats.register(registry, &self.machine);
    }

    /// Stops the daemon and waits for its thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Monitord {
    fn drop(&mut self) {
        // The sampling loop polls the stop flag each interval; intervals
        // are short in practice, so this join is brief.
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::service::{ServiceConfig, SolverService};
    use crate::presets::{self, nodes};

    #[test]
    fn fn_source_feeds_the_solver() {
        let service =
            SolverService::spawn_machine(&presets::validation_machine(), ServiceConfig::fast())
                .unwrap();
        let daemon = Monitord::spawn(
            "",
            FnSource(|| vec![("cpu".to_string(), 1.0)]),
            service.local_addr(),
            Duration::from_millis(5),
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(300));
        let util = service.with_system(|sys| match sys {
            crate::net::service::EmulatedSystem::Single(s) => s.utilization("cpu").unwrap(),
            _ => unreachable!(),
        });
        assert_eq!(util.fraction(), 1.0);
        daemon.shutdown();
        service.shutdown();
    }

    #[test]
    #[cfg(feature = "instrument")]
    fn stats_count_updates_and_acks() {
        let service =
            SolverService::spawn_machine(&presets::validation_machine(), ServiceConfig::fast())
                .unwrap();
        let daemon = Monitord::spawn(
            "",
            FnSource(|| vec![("cpu".to_string(), 0.5)]),
            service.local_addr(),
            Duration::from_millis(5),
        )
        .unwrap();
        daemon.register_metrics(service.registry());
        std::thread::sleep(Duration::from_millis(300));
        let updates = daemon.stats().updates.get();
        let acks = daemon.stats().acks.get();
        assert!(updates >= 5, "only {updates} updates sent");
        assert!(acks >= 1, "no acks recorded");
        assert!(acks <= updates);
        // The daemon's counters render in the service's scrape document.
        let text = service.registry().render_prometheus();
        assert!(text.contains("mercury_monitord_updates_total"));
        daemon.shutdown();
        service.shutdown();
    }

    #[test]
    fn report_update_classifies_a_dead_service() {
        // No service behind this address: the send succeeds, the reply
        // times out, and the outcome is a typed error plus a counter.
        let socket = UdpSocket::bind("127.0.0.1:0").unwrap();
        let sink = UdpSocket::bind("127.0.0.1:0").unwrap();
        socket.connect(sink.local_addr().unwrap()).unwrap();
        socket
            .set_read_timeout(Some(Duration::from_millis(10)))
            .unwrap();
        let stats = MonitordStats::new();
        let err = report_update(&socket, "m", vec![("cpu".into(), 0.5)], &stats).unwrap_err();
        assert!(matches!(err, Error::Timeout));
        #[cfg(feature = "instrument")]
        {
            assert_eq!(stats.updates.get(), 1);
            assert_eq!(stats.send_errors.get(), 1);
            assert_eq!(stats.acks.get(), 0);
        }
    }

    #[test]
    fn trace_source_replays_rows_and_clamps() {
        let trace = UtilizationTrace::from_fn("m", 1.0, vec![nodes::CPU.to_string()], 3, |t, _| {
            if t < 1.0 {
                0.2
            } else {
                0.9
            }
        })
        .unwrap();
        let mut source = TraceSource::new(trace);
        assert_eq!(source.sample()[0].1, 0.2);
        assert_eq!(source.position(), 1);
        assert_eq!(source.sample()[0].1, 0.9);
        assert_eq!(source.sample()[0].1, 0.9);
        // Clamped at the last row forever.
        assert_eq!(source.sample()[0].1, 0.9);
    }

    #[test]
    fn proc_source_parses_canned_files() {
        let dir = std::env::temp_dir().join(format!("mercury-proc-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("stat"),
            "cpu  100 0 100 800 0 0 0 0 0 0\ncpu0 100 0 100 800 0 0 0 0 0 0\n",
        )
        .unwrap();
        fs::write(
            dir.join("diskstats"),
            "   8       0 sda 100 0 100 0 0 0 0 0 0 5000 0\n",
        )
        .unwrap();
        let mut source = ProcSource::new("cpu", "disk_platters", "sda").with_proc_root(&dir);
        // First sample warms up the counters.
        let first = source.sample();
        assert!(
            first.is_empty(),
            "warm-up sample should be empty, got {first:?}"
        );
        // Advance the counters: 100 more busy jiffies, 100 more idle.
        fs::write(
            dir.join("stat"),
            "cpu  150 0 150 900 0 0 0 0 0 0\ncpu0 150 0 150 900 0 0 0 0 0 0\n",
        )
        .unwrap();
        fs::write(
            dir.join("diskstats"),
            "   8       0 sda 100 0 100 0 0 0 0 0 0 5005 0\n",
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let second = source.sample();
        let cpu = second.iter().find(|(c, _)| c == "cpu").expect("cpu sample");
        // Delta: total 200, idle 100 -> 50% busy.
        assert!((cpu.1 - 0.5).abs() < 1e-9, "cpu util {}", cpu.1);
        let disk = second
            .iter()
            .find(|(c, _)| c == "disk_platters")
            .expect("disk sample");
        assert!(disk.1 > 0.0 && disk.1 <= 1.0, "disk util {}", disk.1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn proc_source_survives_missing_files() {
        let mut source =
            ProcSource::new("cpu", "disk", "sda").with_proc_root("/definitely/not/here");
        assert!(source.sample().is_empty());
    }

    #[test]
    fn perf_source_reports_the_low_level_utilization() {
        use crate::perf::{CounterSample, EventEnergyModel};
        use crate::units::Seconds;
        // A synthetic counter stream: heavy for the first sample, idle
        // afterwards.
        let mut first = true;
        let mut source =
            PerfSource::new("cpu", EventEnergyModel::pentium4(), 12.0, 55.0, move || {
                let sample = if first {
                    CounterSample::new(Seconds(1.0))
                        .with_count("uops_retired", 2_000_000_000)
                        .with_count("l2_cache_miss", 40_000_000)
                } else {
                    CounterSample::new(Seconds(1.0))
                };
                first = false;
                sample
            });
        let busy = source.sample();
        assert_eq!(busy[0].0, "cpu");
        assert!(busy[0].1 > 0.1, "busy sample reported {}", busy[0].1);
        let idle = source.sample();
        assert_eq!(idle[0].1, 0.0, "idle sample should map to P_base");
    }

    #[test]
    fn perf_source_feeds_a_live_solver() {
        use crate::perf::{CounterSample, EventEnergyModel};
        use crate::units::Seconds;
        let service =
            SolverService::spawn_machine(&presets::validation_machine(), ServiceConfig::fast())
                .unwrap();
        let source = PerfSource::new("cpu", EventEnergyModel::pentium4(), 7.0, 31.0, || {
            CounterSample::new(Seconds(1.0))
                .with_count("uops_retired", 3_000_000_000)
                .with_count("bus_transaction", 50_000_000)
        });
        let daemon =
            Monitord::spawn("", source, service.local_addr(), Duration::from_millis(5)).unwrap();
        std::thread::sleep(Duration::from_millis(200));
        let util = service.with_system(|sys| match sys {
            crate::net::service::EmulatedSystem::Single(s) => s.utilization("cpu").unwrap(),
            _ => unreachable!(),
        });
        assert!(util.fraction() > 0.3, "counter-driven utilization {util}");
        daemon.shutdown();
        service.shutdown();
    }

    #[test]
    fn monitord_drives_a_cluster_machine_by_name() {
        let cluster = presets::validation_cluster(2);
        let service = SolverService::spawn_cluster(&cluster, ServiceConfig::fast()).unwrap();
        let daemon = Monitord::spawn(
            "machine2",
            FnSource(|| vec![("cpu".to_string(), 0.8)]),
            service.local_addr(),
            Duration::from_millis(5),
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(200));
        let util = service.with_system(|sys| match sys {
            crate::net::service::EmulatedSystem::Cluster(c) => {
                c.machine("machine2").unwrap().utilization("cpu").unwrap()
            }
            _ => unreachable!(),
        });
        assert!((util.fraction() - 0.8).abs() < 1e-6);
        daemon.shutdown();
        service.shutdown();
    }
}
