//! The networked Mercury suite (§2.3, Figure 2).
//!
//! The paper runs Mercury as four cooperating pieces: the **solver** on a
//! separate machine, **monitoring daemons** on each emulated server
//! shipping 128-byte UDP utilization updates, a **sensor library** that
//! applications call as if probing a local thermal sensor, and the
//! **fiddle** tool injecting emergencies. This module implements all four
//! over UDP:
//!
//! * [`service::SolverService`] — binds a UDP socket, advances the solver
//!   at a configurable wall-clock pace, and answers sensor reads, fiddle
//!   commands, and utilization updates;
//! * [`sensor::Sensor`] — the `opensensor`/`readsensor`/`closesensor`
//!   client (Figure 3);
//! * [`monitord::Monitord`] — samples a [`monitord::UtilizationSource`]
//!   (a replayed trace, a closure, or Linux `/proc`) and streams updates;
//! * [`send_fiddle`] — one-shot fiddle delivery.
//!
//! The wire format lives in [`proto`]; it is a tiny length-prefixed binary
//! encoding designed to keep a typical utilization update under the
//! paper's 128 bytes.
//!
//! Every piece meters itself through always-on [`telemetry`] handles
//! ([`metrics::NetMetrics`] server-side, [`metrics::MonitordStats`]
//! client-side), and the service exposes its whole registry — solver,
//! net, and anything callers add — as a Prometheus text exposition via
//! [`proto::Request::Scrape`].

pub mod metrics;
pub mod monitord;
pub mod proto;
pub mod sensor;
pub mod service;

pub use metrics::{MonitordStats, NetMetrics};
pub use monitord::{FnSource, Monitord, PerfSource, ProcSource, TraceSource, UtilizationSource};
pub use sensor::Sensor;
pub use service::{ServiceConfig, SolverService};

use crate::error::Error;
use crate::fiddle::FiddleCommand;
use std::net::{ToSocketAddrs, UdpSocket};
use std::time::Duration;

/// Sends a single fiddle command to a running solver service and waits
/// for its acknowledgement.
///
/// # Errors
///
/// Returns [`Error::Io`] for socket failures, [`Error::Timeout`] when the
/// service does not answer within a second, and [`Error::Remote`] when the
/// service rejects the command (e.g. unknown machine or node).
pub fn send_fiddle(addr: impl ToSocketAddrs, command: &FiddleCommand) -> Result<(), Error> {
    let socket = UdpSocket::bind(("127.0.0.1", 0))?;
    socket.connect(addr)?;
    socket.set_read_timeout(Some(Duration::from_secs(1)))?;
    let msg = proto::Request::Fiddle {
        command: command.clone(),
    };
    socket.send(&proto::encode_request(&msg))?;
    let mut buf = [0u8; proto::MAX_DATAGRAM];
    let n = match socket.recv(&mut buf) {
        Ok(n) => n,
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            return Err(Error::Timeout)
        }
        Err(e) => return Err(e.into()),
    };
    match proto::decode_reply(&buf[..n])? {
        proto::Reply::Ack => Ok(()),
        proto::Reply::Error { message } => Err(Error::Remote { reason: message }),
        other => Err(Error::protocol(format!(
            "unexpected reply {other:?} to a fiddle command"
        ))),
    }
}
