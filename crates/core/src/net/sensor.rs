//! The sensor library: `opensensor` / `readsensor` / `closesensor`
//! (§2.3, Figure 3).
//!
//! Applications and systems software treat Mercury as a regular, local
//! sensor device. The paper's C interface
//!
//! ```c
//! int sd;
//! float temp;
//! sd = opensensor("solvermachine", 8367, "disk");
//! temp = readsensor(sd);
//! closesensor(sd);
//! ```
//!
//! maps onto [`Sensor::open`], [`Sensor::read`], and [`Sensor::close`]:
//!
//! ```no_run
//! use mercury::net::Sensor;
//!
//! # fn main() -> Result<(), mercury::Error> {
//! let sensor = Sensor::open(("solvermachine", 8367), "", "disk_shell")?;
//! let temp = sensor.read()?;
//! sensor.close();
//! # Ok(())
//! # }
//! ```

use super::proto::{self, Reply, Request};
use crate::error::Error;
use crate::units::Celsius;
use std::net::{ToSocketAddrs, UdpSocket};
use std::time::Duration;

/// Default number of times a read is retried on timeout before giving up.
/// UDP may drop datagrams even on loopback under load; a couple of
/// retries make reads reliable without hiding a dead solver for long.
const READ_RETRIES: u32 = 3;

/// An open emulated thermal sensor: one `(machine, node)` pair on one
/// solver service.
///
/// Opening validates the node against the service, so a typo fails at
/// [`Sensor::open`] rather than on every read — the same behaviour as
/// opening a missing device file.
#[derive(Debug)]
pub struct Sensor {
    socket: UdpSocket,
    machine: String,
    node: String,
    timeout: Duration,
}

impl Sensor {
    /// Opens a sensor for `node` on `machine` (empty machine name means
    /// "the only machine" — convenient for single-server solvers, like the
    /// paper's `opensensor("solvermachine", 8367, "disk")`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] for socket failures, [`Error::Timeout`] when
    /// the service does not answer, and [`Error::Remote`] when the machine
    /// or node does not exist on the service.
    pub fn open(
        addr: impl ToSocketAddrs,
        machine: impl Into<String>,
        node: impl Into<String>,
    ) -> Result<Self, Error> {
        let machine = machine.into();
        let node = node.into();
        let socket = UdpSocket::bind(("0.0.0.0", 0))?;
        socket.connect(addr)?;
        let timeout = Duration::from_millis(500);
        socket.set_read_timeout(Some(timeout))?;
        let sensor = Sensor {
            socket,
            machine,
            node,
            timeout,
        };
        // Validate eagerly: one read proves machine+node exist.
        sensor.read()?;
        Ok(sensor)
    }

    /// The machine this sensor is attached to (may be empty for "the only
    /// machine").
    pub fn machine(&self) -> &str {
        &self.machine
    }

    /// The node this sensor reports.
    pub fn node(&self) -> &str {
        &self.node
    }

    /// Changes the per-read timeout (default 500 ms — comfortably above
    /// the ~300 µs reads measured in the paper, but short enough to notice
    /// a dead solver quickly).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the socket rejects the timeout.
    pub fn set_timeout(&mut self, timeout: Duration) -> Result<(), Error> {
        self.timeout = timeout;
        self.socket.set_read_timeout(Some(timeout))?;
        Ok(())
    }

    /// Reads the current emulated temperature — the paper's
    /// `readsensor()`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Timeout`] after exhausting retries,
    /// [`Error::Remote`] when the service rejects the query, and
    /// [`Error::Io`]/[`Error::Protocol`] for transport problems.
    pub fn read(&self) -> Result<Celsius, Error> {
        Ok(self.read_with_time()?.0)
    }

    /// Reads the temperature together with the solver's emulated
    /// timestamp, for callers correlating readings across sensors.
    ///
    /// # Errors
    ///
    /// As [`Sensor::read`].
    pub fn read_with_time(&self) -> Result<(Celsius, f64), Error> {
        let request = Request::ReadTemperature {
            machine: self.machine.clone(),
            node: self.node.clone(),
        };
        let encoded = proto::encode_request(&request);
        let mut buf = [0u8; proto::MAX_DATAGRAM];
        for _attempt in 0..READ_RETRIES {
            self.socket.send(&encoded)?;
            match self.socket.recv(&mut buf) {
                Ok(n) => match proto::decode_reply(&buf[..n])? {
                    Reply::Temperature { celsius, time } => return Ok((Celsius(celsius), time)),
                    Reply::Error { message } => return Err(Error::Remote { reason: message }),
                    other => {
                        return Err(Error::protocol(format!(
                            "unexpected reply {other:?} to a sensor read"
                        )))
                    }
                },
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(e) => return Err(e.into()),
            }
        }
        Err(Error::Timeout)
    }

    /// Closes the sensor — the paper's `closesensor()`. Dropping the
    /// sensor has the same effect; the explicit method exists so call
    /// sites can mirror the paper's three-call pattern.
    pub fn close(self) {
        drop(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::service::{ServiceConfig, SolverService};
    use crate::presets;

    #[test]
    fn figure_3_pattern_open_read_close() {
        let service =
            SolverService::spawn_machine(&presets::validation_machine(), ServiceConfig::fast())
                .unwrap();
        let sensor = Sensor::open(service.local_addr(), "", "disk_shell").unwrap();
        assert_eq!(sensor.node(), "disk_shell");
        assert_eq!(sensor.machine(), "");
        let temp = sensor.read().unwrap();
        assert!(temp.0 > 0.0 && temp.0 < 100.0);
        sensor.close();
        service.shutdown();
    }

    #[test]
    fn open_validates_the_node_eagerly() {
        let service =
            SolverService::spawn_machine(&presets::validation_machine(), ServiceConfig::fast())
                .unwrap();
        let err = Sensor::open(service.local_addr(), "", "gpu").unwrap_err();
        assert!(matches!(err, Error::Remote { .. }), "got {err}");
        let err = Sensor::open(service.local_addr(), "machine9", "cpu").unwrap_err();
        assert!(matches!(err, Error::Remote { .. }), "got {err}");
        service.shutdown();
    }

    #[test]
    fn read_reports_advancing_time() {
        let service =
            SolverService::spawn_machine(&presets::validation_machine(), ServiceConfig::fast())
                .unwrap();
        let sensor = Sensor::open(service.local_addr(), "", "cpu").unwrap();
        let (_, t1) = sensor.read_with_time().unwrap();
        std::thread::sleep(Duration::from_millis(100));
        let (_, t2) = sensor.read_with_time().unwrap();
        assert!(t2 > t1, "time went {t1} -> {t2}");
        service.shutdown();
    }

    #[test]
    fn read_times_out_against_a_dead_address() {
        // Bind a socket that never answers.
        let dead = UdpSocket::bind("127.0.0.1:0").unwrap();
        match Sensor::open(dead.local_addr().unwrap(), "", "cpu") {
            Err(Error::Timeout) => {}
            Err(other) => panic!("expected timeout, got {other}"),
            Ok(_) => panic!("open should not succeed against a silent peer"),
        }
    }

    #[test]
    fn per_machine_sensors_on_a_cluster() {
        let cluster = presets::validation_cluster(2);
        let service = SolverService::spawn_cluster(&cluster, ServiceConfig::fast()).unwrap();
        let s1 = Sensor::open(service.local_addr(), "machine1", "cpu").unwrap();
        let s2 = Sensor::open(service.local_addr(), "machine2", "disk_shell").unwrap();
        assert!(s1.read().is_ok());
        assert!(s2.read().is_ok());
        s1.close();
        s2.close();
        service.shutdown();
    }
}
