//! `mercury-ckpt-v1`: full solver-state checkpoints.
//!
//! A checkpoint captures everything that distinguishes a running
//! [`ClusterSolver`] from a freshly constructed one — node temperatures,
//! utilizations, fiddle state (forced nodes and inlets, fan speeds,
//! retuned heat/air edges), divergence flags, junction and supply
//! temperatures, and the emulated clock — as a compact little-endian
//! blob:
//!
//! ```text
//! magic    8  b"MCCKPT1\0"             (mercury-ckpt-v1)
//! version  u32 = 1
//! time     f64 (bit pattern preserved)
//! supplies u32, then f64 each
//! junctions u32, then f64 each
//! machines u32, then per machine:
//!   forced inlet     u8 flag + f64
//!   name             u16 len + UTF-8
//!   time             f64
//!   ticks_stepped    u64
//!   generated        f64 (J)
//!   fan              f64 (m³/s)
//!   inlet            f64 (°C)
//!   diverged         u8
//!   nodes            u32, then per node: temp f64, utilization f64,
//!                    forced u8 flag + f64
//!   heat edges       u32, then k f64 each   (construction order)
//!   air edges        u32, then fraction f64 each
//! ```
//!
//! Restore targets a solver built from the **same model and config**:
//! structural data (names, edges, kernels, batch plans) is rebuilt
//! deterministically from the model, so the blob only carries mutable
//! state. Every count and name is validated against the target; a
//! mismatch is a hard error, never a silent partial restore.
//!
//! The contract — proven by proptest in `tests/trace_pipeline.rs` — is
//! *bitwise* continuation: stepping a restored solver produces exactly
//! the trajectory the checkpointed solver would have produced, at any
//! thread count, with batching on or off. That is what makes cutting a
//! long replay into parallel time segments sound (kernel double buffers
//! and chunk matrices need no serialization: both are scattered back to
//! solver state at every tick/span boundary, and a restored solver
//! re-gathers them on its next tick).

use crate::error::Error;
use crate::solver::ClusterSolver;

/// File magic, "mercury-ckpt-v1".
pub const MAGIC: [u8; 8] = *b"MCCKPT1\0";
/// Current checkpoint version.
pub const VERSION: u32 = 1;

/// Serializes the full mutable state of `cluster` to a
/// `mercury-ckpt-v1` blob.
#[must_use]
pub fn save(cluster: &ClusterSolver) -> Vec<u8> {
    let mut w = CkptWriter::new();
    w.bytes(&MAGIC);
    w.u32(VERSION);
    cluster.write_ckpt(&mut w);
    w.into_bytes()
}

/// Restores a blob produced by [`save`] into `cluster`, which must have
/// been built from the same model and configuration.
///
/// # Errors
///
/// Returns [`Error::InvalidInput`] when the blob is malformed, version-
/// incompatible, or shaped for a different cluster. The target solver
/// is left unusable-but-memory-safe on error; callers should discard it.
pub fn restore(cluster: &mut ClusterSolver, blob: &[u8]) -> Result<(), Error> {
    let mut r = CkptReader::new(blob);
    let magic = r.bytes(8, "magic")?;
    if magic != MAGIC {
        return Err(Error::invalid_input("not a mercury-ckpt blob (bad magic)"));
    }
    let version = r.u32("version")?;
    if version != VERSION {
        return Err(Error::invalid_input(format!(
            "unsupported mercury-ckpt version {version} (expected {VERSION})"
        )));
    }
    cluster.read_ckpt(&mut r)?;
    r.finish()
}

/// Little-endian checkpoint field writer.
#[derive(Debug, Default)]
pub(crate) struct CkptWriter {
    out: Vec<u8>,
}

impl CkptWriter {
    fn new() -> Self {
        Self::default()
    }

    fn into_bytes(self) -> Vec<u8> {
        self.out
    }

    pub(crate) fn bytes(&mut self, b: &[u8]) {
        self.out.extend_from_slice(b);
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes the exact bit pattern — checkpoints must round-trip NaNs
    /// and signed zeros untouched for the bitwise-continuation contract.
    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub(crate) fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.f64(x);
            }
            None => {
                self.u8(0);
                self.f64(0.0);
            }
        }
    }

    pub(crate) fn name(&mut self, s: &str) {
        let b = s.as_bytes();
        debug_assert!(b.len() <= usize::from(u16::MAX));
        self.out
            .extend_from_slice(&(b.len().min(usize::from(u16::MAX)) as u16).to_le_bytes());
        self.out
            .extend_from_slice(&b[..b.len().min(usize::from(u16::MAX))]);
    }
}

/// Bounds-checked checkpoint field reader.
#[derive(Debug)]
pub(crate) struct CkptReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> CkptReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        CkptReader { bytes, pos: 0 }
    }

    fn finish(self) -> Result<(), Error> {
        if self.pos != self.bytes.len() {
            return Err(Error::invalid_input(format!(
                "checkpoint has {} trailing bytes",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }

    pub(crate) fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], Error> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(Error::invalid_input(format!(
                "truncated checkpoint: {what} at byte {}",
                self.pos
            ))),
        }
    }

    pub(crate) fn u8(&mut self, what: &str) -> Result<u8, Error> {
        Ok(self.bytes(1, what)?[0])
    }

    pub(crate) fn u32(&mut self, what: &str) -> Result<u32, Error> {
        let b = self.bytes(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self, what: &str) -> Result<u64, Error> {
        let b = self.bytes(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn f64(&mut self, what: &str) -> Result<f64, Error> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    pub(crate) fn opt_f64(&mut self, what: &str) -> Result<Option<f64>, Error> {
        let flag = self.u8(what)?;
        let value = self.f64(what)?;
        match flag {
            0 => Ok(None),
            1 => Ok(Some(value)),
            other => Err(Error::invalid_input(format!(
                "checkpoint flag for {what} is {other}, not 0/1"
            ))),
        }
    }

    pub(crate) fn name(&mut self, what: &str) -> Result<String, Error> {
        let len = usize::from(u16::from_le_bytes({
            let b = self.bytes(2, what)?;
            [b[0], b[1]]
        }));
        let raw = self.bytes(len, what)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| Error::invalid_input(format!("checkpoint {what} name is not UTF-8")))
    }

    /// Reads a count and validates it against the target's expectation —
    /// the guard that keeps a blob from a different model from silently
    /// half-applying.
    pub(crate) fn count(&mut self, what: &str, expected: usize) -> Result<usize, Error> {
        let got = self.u32(what)? as usize;
        if got != expected {
            return Err(Error::invalid_input(format!(
                "checkpoint {what} count {got} does not match the target solver's {expected}"
            )));
        }
        Ok(got)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::solver::SolverConfig;

    fn cluster(n: usize) -> ClusterSolver {
        ClusterSolver::new(&presets::validation_cluster(n), SolverConfig::default()).unwrap()
    }

    fn temps(c: &ClusterSolver) -> Vec<u64> {
        (0..c.len())
            .flat_map(|i| {
                c.machine_at(i)
                    .temperatures()
                    .into_iter()
                    .map(|(_, t)| t.0.to_bits())
            })
            .collect()
    }

    #[test]
    fn checkpoint_round_trips_bitwise() {
        let mut a = cluster(3);
        a.machine_at_mut(0).set_utilization("cpu", 0.9).unwrap();
        a.machine_at_mut(1).set_fan_cfm(20.0).unwrap();
        a.force_inlet("machine3", crate::units::Celsius(30.0))
            .unwrap();
        a.step_for(50);
        let blob = save(&a);
        let mut b = cluster(3);
        restore(&mut b, &blob).unwrap();
        assert_eq!(temps(&a), temps(&b));
        assert_eq!(a.time(), b.time());
        // Continuations stay bit-identical.
        a.step_for(25);
        b.step_for(25);
        assert_eq!(temps(&a), temps(&b));
        // And a second checkpoint of the continuation matches too.
        assert_eq!(save(&a), save(&b));
    }

    #[test]
    fn restore_rejects_mismatched_targets() {
        let a = cluster(2);
        let blob = save(&a);
        let mut wrong_size = cluster(3);
        assert!(restore(&mut wrong_size, &blob).is_err());
        // Corruption: magic, version, truncation, trailing bytes.
        let mut bad = blob.clone();
        bad[0] ^= 0xff;
        assert!(restore(&mut cluster(2), &bad).is_err());
        let mut bad = blob.clone();
        bad[8] = 42;
        assert!(restore(&mut cluster(2), &bad).is_err());
        assert!(restore(&mut cluster(2), &blob[..blob.len() - 3]).is_err());
        let mut bad = blob.clone();
        bad.push(0);
        assert!(restore(&mut cluster(2), &bad).is_err());
    }
}
