//! Out-of-core replay of `.events` traces.
//!
//! [`EventsStream`] reads a `mercury-events-v1` file either through a
//! read-only memory map (the default on Unix) or through buffered
//! streaming (`MERCURY_REPLAY_MMAP=off`, non-Unix platforms, or
//! [`EventsStream::open_buffered`]). Either way the resident working set
//! is a few frame-sized buffers — flat regardless of trace length, and
//! accounted exactly by [`EventsStream::memory_bytes`] the same way
//! `telemetry::Tsdb` accounts its ring memory.
//!
//! Replay feeds [`ClusterSolver::step_for`] directly from decoded
//! frames with **zero per-tick allocation**: each HOLD run in the file
//! becomes one fused multi-tick span, and between spans only the cells
//! that actually changed are pushed into the solvers (so machines whose
//! inputs held keep their warm batch lanes).
//!
//! # Safety
//!
//! The memory map is the crate's fourth sanctioned `unsafe` region (see
//! `lib.rs`): two foreign calls (`mmap`/`munmap`) plus one
//! `slice::from_raw_parts` over the mapping, all confined to [`Mmap`].
//! The mapping is `PROT_READ`/`MAP_PRIVATE` over a regular file we never
//! write; like every mmap consumer, we treat trace files as immutable
//! inputs — truncating one mid-replay is undefined at the OS level
//! (SIGBUS), which the buffered fallback avoids entirely.

use super::events::{self, EventsHeader, Record, RecordCursor, TAG_DELTA, TAG_FULL, TAG_HOLD};
use crate::error::Error;
use crate::solver::ClusterSolver;
use crate::units::Utilization;
use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;
use telemetry::{Counter, Gauge, Registry};

/// Replay telemetry bundle, mirroring the `SolverMetrics` pattern:
/// detached relaxed-atomic handles, exported only once someone calls
/// [`ReplayMetrics::register`].
#[derive(Debug, Clone, Default)]
pub struct ReplayMetrics {
    /// `mercury_replay_frames_decoded_total` — FULL/DELTA frames decoded.
    pub frames_decoded: Counter,
    /// `mercury_replay_spans_total` — fused spans fed to `step_for`.
    pub spans: Counter,
    /// `mercury_replay_ticks_total` — trace ticks replayed.
    pub ticks: Counter,
    /// `mercury_replay_mapped_bytes_total` — bytes memory-mapped over
    /// the stream's lifetime (0 when streaming buffered).
    pub mapped_bytes: Counter,
    /// `mercury_replay_peak_rss_bytes` — the process's peak resident set
    /// (`VmHWM`), refreshed at the end of every replay call; the gauge
    /// behind the flat-memory assertion.
    pub peak_rss: Gauge,
}

impl ReplayMetrics {
    /// Fresh, detached handles (all zero).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the `mercury_replay_*` families on `registry`.
    pub fn register(&self, registry: &Registry) {
        registry.register_counter(
            "mercury_replay_frames_decoded_total",
            "FULL/DELTA frames decoded from .events streams",
            &[],
            &self.frames_decoded,
        );
        registry.register_counter(
            "mercury_replay_spans_total",
            "Fused input-stable spans fed to step_for during replay",
            &[],
            &self.spans,
        );
        registry.register_counter(
            "mercury_replay_ticks_total",
            "Trace ticks replayed from .events streams",
            &[],
            &self.ticks,
        );
        registry.register_counter(
            "mercury_replay_mapped_bytes_total",
            "Bytes of .events data memory-mapped for replay",
            &[],
            &self.mapped_bytes,
        );
        registry.register_gauge(
            "mercury_replay_peak_rss_bytes",
            "Peak resident set size (VmHWM) observed after replay",
            &[],
            &self.peak_rss,
        );
    }
}

/// The process's peak resident set size in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where procfs is unavailable.
#[must_use]
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kib: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kib * 1024);
        }
    }
    None
}

// --- the sanctioned mmap region ---------------------------------------

#[cfg(unix)]
mod mapped {
    //! Read-only file mapping. This module is one of the crate's
    //! sanctioned `unsafe` exceptions (see `lib.rs`): the raw syscalls
    //! are declared here directly so the zero-dependency build needs no
    //! libc crate — the symbols resolve from the C runtime Rust already
    //! links on Unix.

    use std::ffi::{c_int, c_void};
    use std::fs::File;
    use std::io;
    use std::os::fd::AsRawFd;

    const PROT_READ: c_int = 0x1;
    const MAP_PRIVATE: c_int = 0x02;

    #[allow(unsafe_code)]
    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    /// An immutable, page-aligned view of a whole file.
    #[derive(Debug)]
    pub(super) struct Mmap {
        ptr: *const u8,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ and never handed out mutably, so
    // concurrent reads from any thread are data-race free; the pointer
    // is owned (munmapped exactly once, on drop).
    #[allow(unsafe_code)]
    unsafe impl Send for Mmap {}
    #[allow(unsafe_code)]
    unsafe impl Sync for Mmap {}

    impl Mmap {
        /// Maps `file` read-only in full.
        pub(super) fn map(file: &File, len: usize) -> io::Result<Mmap> {
            if len == 0 {
                // mmap(2) rejects zero-length mappings; an empty file is
                // never a valid .events file anyway.
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "cannot map an empty file",
                ));
            }
            // SAFETY: a fresh anonymous-address PROT_READ/MAP_PRIVATE
            // mapping of an fd we own; `len` equals the file length
            // measured by the caller. The return value is checked
            // against MAP_FAILED before use.
            #[allow(unsafe_code)]
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Mmap {
                ptr: ptr as *const u8,
                len,
            })
        }

        /// The mapped bytes.
        pub(super) fn as_slice(&self) -> &[u8] {
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes (established in `map`, released only in `drop`), and
            // no mutable view of it ever exists.
            #[allow(unsafe_code)]
            unsafe {
                std::slice::from_raw_parts(self.ptr, self.len)
            }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            // SAFETY: exactly the pointer/length pair returned by mmap,
            // unmapped exactly once. Failure is ignored: the only way
            // munmap fails on a valid mapping is address-space
            // corruption, and there is nothing useful to do in drop.
            #[allow(unsafe_code)]
            unsafe {
                munmap(self.ptr as *mut c_void, self.len);
            }
        }
    }
}

// --- the stream itself -------------------------------------------------

enum Source {
    /// The whole file, memory-mapped. `pos` indexes the record stream
    /// (relative to the end of the header).
    #[cfg(unix)]
    Mapped {
        map: mapped::Mmap,
        header_len: usize,
        pos: usize,
        started: bool,
    },
    /// Buffered incremental reads; `scratch` is the one reusable record
    /// payload buffer (sized to a FULL frame, allocated once).
    Buffered {
        reader: BufReader<File>,
        scratch: Vec<u8>,
        pending_tag: Option<u8>,
        started: bool,
    },
}

/// A sequential, out-of-core reader over one `.events` file.
pub struct EventsStream {
    header: EventsHeader,
    source: Source,
    /// Quantized cells currently in effect.
    cur: Vec<u16>,
    /// Cells as last pushed into a cluster, for changed-cell application.
    applied: Vec<u16>,
    applied_valid: bool,
    /// Ticks whose values are already in `cur` but not yet replayed
    /// (a span crossing a `replay_ticks` boundary leaves a remainder).
    span_left: u64,
    /// Ticks consumed from the record stream (replayed or sought past).
    ticks_done: u64,
    metrics: ReplayMetrics,
}

impl std::fmt::Debug for EventsStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventsStream")
            .field("machines", &self.header.machines.len())
            .field("components", &self.header.components.len())
            .field("ticks", &self.header.ticks)
            .field("ticks_done", &self.ticks_done)
            .field("mapped", &matches!(&self.source, Source::Mapped { .. }))
            .finish()
    }
}

impl EventsStream {
    /// Opens a `.events` file, memory-mapping it when the platform
    /// allows and `MERCURY_REPLAY_MMAP` is not `off`/`0`, falling back
    /// to buffered streaming otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] for filesystem failures and
    /// [`Error::InvalidInput`] for malformed headers.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, Error> {
        let want_mmap = !matches!(
            std::env::var("MERCURY_REPLAY_MMAP").as_deref(),
            Ok("off") | Ok("0") | Ok("false")
        );
        #[cfg(unix)]
        if want_mmap {
            return Self::open_mapped(path);
        }
        let _ = want_mmap;
        Self::open_buffered(path)
    }

    /// Opens a `.events` file through a read-only memory map.
    ///
    /// # Errors
    ///
    /// As [`EventsStream::open`].
    #[cfg(unix)]
    pub fn open_mapped(path: impl AsRef<Path>) -> Result<Self, Error> {
        let file = File::open(path)?;
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| Error::invalid_input("events file is too large to map"))?;
        let map = mapped::Mmap::map(&file, len)?;
        let (header, header_len) = EventsHeader::parse(map.as_slice())?;
        let metrics = ReplayMetrics::new();
        metrics.mapped_bytes.add(len as u64);
        Ok(Self::with_source(
            header,
            Source::Mapped {
                map,
                header_len,
                pos: 0,
                started: false,
            },
            metrics,
        ))
    }

    /// Opens a `.events` file through buffered streaming reads — the
    /// portable fallback, immune to concurrent-truncation SIGBUS.
    ///
    /// # Errors
    ///
    /// As [`EventsStream::open`].
    pub fn open_buffered(path: impl AsRef<Path>) -> Result<Self, Error> {
        let mut reader = BufReader::new(File::open(path)?);
        // The header is bounded but variable-length (name tables); read
        // it through a growing prefix buffer, then seek the file to the
        // first record. `parse_prefix` distinguishes "need more bytes"
        // from "provably malformed", so a bad magic fails immediately
        // without scanning the file.
        let mut prefix = Vec::with_capacity(4096);
        let (header, header_len) = loop {
            match EventsHeader::parse_prefix(&prefix)? {
                Some(parsed) => break parsed,
                None => {
                    let before = prefix.len();
                    prefix.resize(before + 4096, 0);
                    let n = read_up_to(&mut reader, &mut prefix[before..])?;
                    prefix.truncate(before + n);
                    if n == 0 {
                        return Err(Error::invalid_input(
                            "truncated events data: incomplete header",
                        ));
                    }
                }
            }
        };
        // Anything after the header in the prefix belongs to the record
        // stream; re-position the underlying file there.
        let mut file = reader.into_inner();
        use std::io::Seek;
        file.seek(std::io::SeekFrom::Start(header_len as u64))?;
        let reader = BufReader::new(file);
        let cells = header.cells();
        Ok(Self::with_source(
            header,
            Source::Buffered {
                reader,
                scratch: Vec::with_capacity(2 * cells),
                pending_tag: None,
                started: false,
            },
            ReplayMetrics::new(),
        ))
    }

    fn with_source(header: EventsHeader, source: Source, metrics: ReplayMetrics) -> Self {
        let cells = header.cells();
        EventsStream {
            header,
            source,
            cur: vec![0; cells],
            applied: vec![0; cells],
            applied_valid: false,
            span_left: 0,
            ticks_done: 0,
            metrics,
        }
    }

    /// The parsed header (machine/component tables, interval, ticks).
    pub fn header(&self) -> &EventsHeader {
        &self.header
    }

    /// Whether this stream reads through a memory map.
    pub fn is_mapped(&self) -> bool {
        match &self.source {
            #[cfg(unix)]
            Source::Mapped { .. } => true,
            _ => false,
        }
    }

    /// Replaces the metric bundle (register it on a
    /// [`telemetry::Registry`] to export the `mercury_replay_*`
    /// families). Mapped-bytes for an already-open map are re-counted
    /// onto the new bundle.
    pub fn set_metrics(&mut self, metrics: ReplayMetrics) {
        #[cfg(unix)]
        if let Source::Mapped { map, .. } = &self.source {
            metrics.mapped_bytes.add(map.as_slice().len() as u64);
        }
        self.metrics = metrics;
    }

    /// Ticks consumed so far (replayed or sought past).
    pub fn position(&self) -> u64 {
        self.ticks_done.saturating_sub(self.span_left)
    }

    /// Exact resident bytes of this stream's decode state — the frame
    /// buffers and the buffered-mode scratch. Deliberately excludes the
    /// memory map (clean, read-only pages the OS reclaims under
    /// pressure; reported via `mercury_replay_mapped_bytes_total`
    /// instead) and the `BufReader`'s fixed 8 KiB block. This is the
    /// quantity the flat-memory tests assert stays constant while a
    /// replay runs, exactly like `Tsdb::memory_bytes`.
    pub fn memory_bytes(&self) -> usize {
        let scratch = match &self.source {
            Source::Buffered { scratch, .. } => scratch.capacity(),
            #[cfg(unix)]
            Source::Mapped { .. } => 0,
        };
        2 * self.cur.capacity() + 2 * self.applied.capacity() + scratch
    }

    /// Decodes the next input-stable span into `cur`. Returns the span
    /// length in ticks, or `None` at a clean end of trace.
    fn next_span(&mut self) -> Result<Option<u64>, Error> {
        let cells = self.cur.len();
        let (span, frames) = match &mut self.source {
            #[cfg(unix)]
            Source::Mapped {
                map,
                header_len,
                pos,
                started,
            } => {
                let records = &map.as_slice()[*header_len..];
                let mut cursor = RecordCursor::resume(records, cells, *pos, !*started);
                let mut frames = 0u64;
                // First record of the span: new values (or EOF).
                let mut span = match cursor.next()? {
                    None => {
                        if self.ticks_done != self.header.ticks {
                            return Err(Error::invalid_input(format!(
                                "events records cover {} ticks but the header declares {}",
                                self.ticks_done, self.header.ticks
                            )));
                        }
                        return Ok(None);
                    }
                    Some(Record::Full(payload)) => {
                        events::apply_full(payload, &mut self.cur)?;
                        frames += 1;
                        1u64
                    }
                    Some(Record::Delta(payload)) => {
                        events::apply_delta(payload, &mut self.cur)?;
                        frames += 1;
                        1u64
                    }
                    // Non-canonical but well-formed: a hold not merged
                    // with its predecessor is its own unchanged-values
                    // span.
                    Some(Record::Hold(n)) => u64::from(n),
                };
                // Extend the span over any immediately following HOLD
                // records by peeking (position only advances when the
                // peeked record really is a HOLD).
                loop {
                    let peek_pos = cursor.pos();
                    match cursor.next()? {
                        Some(Record::Hold(n)) => span += u64::from(n),
                        _ => {
                            cursor.rewind_to(peek_pos);
                            break;
                        }
                    }
                }
                *pos = cursor.pos();
                *started = true;
                (span, frames)
            }
            Source::Buffered {
                reader,
                scratch,
                pending_tag,
                started,
            } => {
                let tag = match pending_tag.take() {
                    Some(t) => Some(t),
                    None => read_tag(reader)?,
                };
                let Some(tag) = tag else {
                    if self.ticks_done != self.header.ticks {
                        return Err(Error::invalid_input(format!(
                            "events records cover {} ticks but the header declares {}",
                            self.ticks_done, self.header.ticks
                        )));
                    }
                    return Ok(None);
                };
                let mut frames = 0u64;
                let mut span;
                match tag {
                    TAG_FULL => {
                        read_exactly(reader, scratch, 2 * cells)?;
                        events::apply_full(scratch, &mut self.cur)?;
                        frames += 1;
                        span = 1;
                    }
                    TAG_DELTA => {
                        if !*started {
                            return Err(Error::invalid_input(
                                "events stream must start with a FULL frame",
                            ));
                        }
                        read_exactly(reader, scratch, 4)?;
                        let n = u32::from_le_bytes([scratch[0], scratch[1], scratch[2], scratch[3]])
                            as usize;
                        if n == 0 {
                            return Err(Error::invalid_input("empty DELTA record"));
                        }
                        read_exactly(reader, scratch, 6 * n)?;
                        events::apply_delta(scratch, &mut self.cur)?;
                        frames += 1;
                        span = 1;
                    }
                    TAG_HOLD => {
                        if !*started {
                            return Err(Error::invalid_input(
                                "events stream must start with a FULL frame",
                            ));
                        }
                        read_exactly(reader, scratch, 4)?;
                        let n =
                            u32::from_le_bytes([scratch[0], scratch[1], scratch[2], scratch[3]]);
                        if n == 0 {
                            return Err(Error::invalid_input("empty HOLD record"));
                        }
                        span = u64::from(n);
                    }
                    other => {
                        return Err(Error::invalid_input(format!(
                            "unknown events record tag {other:#04x}"
                        )))
                    }
                }
                *started = true;
                // Merge immediately following HOLDs into this span; a
                // non-HOLD tag is remembered for the next call.
                while let Some(next) = read_tag(reader)? {
                    if next == TAG_HOLD {
                        read_exactly(reader, scratch, 4)?;
                        let n =
                            u32::from_le_bytes([scratch[0], scratch[1], scratch[2], scratch[3]]);
                        if n == 0 {
                            return Err(Error::invalid_input("empty HOLD record"));
                        }
                        span += u64::from(n);
                    } else {
                        *pending_tag = Some(next);
                        break;
                    }
                }
                (span, frames)
            }
        };
        if self.ticks_done + span > self.header.ticks {
            return Err(Error::invalid_input(format!(
                "events records cover {}+ ticks but the header declares {}",
                self.ticks_done + span,
                self.header.ticks
            )));
        }
        self.ticks_done += span;
        self.metrics.frames_decoded.add(frames);
        Ok(Some(span))
    }

    /// Fast-forwards decoding (without stepping any solver) so the next
    /// replayed tick is `tick` — how a time-segment worker positions
    /// itself at a checkpoint cut. After seeking, `cur` holds exactly
    /// the inputs in effect at `tick`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] when `tick` lies before the
    /// current position or past the end of the trace.
    pub fn seek(&mut self, tick: u64) -> Result<(), Error> {
        if tick > self.header.ticks {
            return Err(Error::invalid_input(format!(
                "seek target {tick} is past the end of the {}-tick trace",
                self.header.ticks
            )));
        }
        if tick < self.position() {
            return Err(Error::invalid_input(format!(
                "cannot seek backwards (at tick {}, asked for {tick})",
                self.position()
            )));
        }
        while self.position() < tick {
            let remaining = tick - self.position();
            if self.span_left == 0 {
                let Some(span) = self.next_span()? else {
                    unreachable!("position < ticks implies another span");
                };
                self.span_left = span;
                // Values changed under the solver's feet (or were never
                // applied): the next apply must push every cell.
                self.applied_valid = false;
            }
            let consumed = self.span_left.min(remaining);
            self.span_left -= consumed;
        }
        Ok(())
    }

    /// Pushes the cells of `cur` that differ from the last application
    /// into the bound cluster machines. On the first application (or
    /// after a seek) every cell is pushed.
    fn apply_current(&mut self, binding: &ClusterBinding, cluster: &mut ClusterSolver) {
        let width = self.header.components.len();
        for (m, &machine_index) in binding.machines.iter().enumerate() {
            let solver = cluster.machine_at_mut(machine_index);
            for c in 0..width {
                let cell = m * width + c;
                if self.applied_valid && self.applied[cell] == self.cur[cell] {
                    continue;
                }
                let u = Utilization::new(events::dequantize(self.cur[cell]));
                solver
                    .set_utilization_at(binding.nodes[cell], u)
                    .expect("binding validated the node is a monitored component");
            }
        }
        self.applied.copy_from_slice(&self.cur);
        self.applied_valid = true;
    }

    /// Replays up to `max_ticks` ticks into `cluster`, fusing each
    /// input-stable span into one [`ClusterSolver::step_for`] call.
    /// Returns the per-call statistics; `ticks` is less than `max_ticks`
    /// only when the trace ended.
    ///
    /// # Errors
    ///
    /// Propagates decode errors; [`Error::InvalidInput`] when `binding`
    /// was built for a different stream shape.
    pub fn replay_ticks(
        &mut self,
        binding: &ClusterBinding,
        cluster: &mut ClusterSolver,
        max_ticks: u64,
    ) -> Result<ReplayStats, Error> {
        if binding.nodes.len() != self.cur.len() {
            return Err(Error::invalid_input(
                "cluster binding does not match this stream's frame shape",
            ));
        }
        let mut stats = ReplayStats::default();
        while stats.ticks < max_ticks {
            if self.span_left == 0 {
                let Some(span) = self.next_span()? else {
                    break;
                };
                self.span_left = span;
                self.apply_current(binding, cluster);
            } else if !self.applied_valid {
                // Resuming a split span (e.g. right after a seek): the
                // values for the remainder still need to reach the
                // solvers.
                self.apply_current(binding, cluster);
            }
            let chunk = self.span_left.min(max_ticks - stats.ticks);
            cluster.step_for(chunk as usize);
            self.span_left -= chunk;
            stats.ticks += chunk;
            stats.spans += 1;
        }
        self.metrics.ticks.add(stats.ticks);
        self.metrics.spans.add(stats.spans);
        if let Some(rss) = peak_rss_bytes() {
            self.metrics.peak_rss.set(rss as f64);
        }
        Ok(stats)
    }

    /// Replays the remainder of the trace into `cluster`.
    ///
    /// # Errors
    ///
    /// As [`EventsStream::replay_ticks`].
    pub fn replay(
        &mut self,
        binding: &ClusterBinding,
        cluster: &mut ClusterSolver,
    ) -> Result<ReplayStats, Error> {
        self.replay_ticks(binding, cluster, u64::MAX)
    }
}

/// What one replay call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayStats {
    /// Ticks stepped.
    pub ticks: u64,
    /// `step_for` spans issued (1 span may cover many ticks).
    pub spans: u64,
}

/// Precomputed name-free routing from `.events` cells to cluster solver
/// inputs: one dense node index per `(machine, component)` cell, so the
/// replay hot path never hashes a string.
#[derive(Debug, Clone)]
pub struct ClusterBinding {
    /// Cluster machine index per stream machine row.
    machines: Vec<usize>,
    /// Node index per cell (`machine-major`, same layout as frames).
    nodes: Vec<usize>,
}

impl ClusterBinding {
    /// Resolves every stream machine and component against `cluster`,
    /// validating up front that each component is a monitored component
    /// of its machine and that the stream interval matches the solver
    /// tick (`dt`) bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownMachine`] / [`Error::UnknownNode`] for
    /// names missing from the cluster and [`Error::InvalidInput`] for
    /// interval mismatches or non-monitored components.
    pub fn new(header: &EventsHeader, cluster: &ClusterSolver) -> Result<Self, Error> {
        if cluster.is_empty() {
            return Err(Error::invalid_input("cannot bind to an empty cluster"));
        }
        let dt = cluster.machine_at(0).dt().0;
        if dt.to_bits() != header.interval_s.to_bits() {
            return Err(Error::invalid_input(format!(
                "events interval {} s does not match the solver tick {} s",
                header.interval_s, dt
            )));
        }
        let names = cluster.machine_names();
        let mut machines = Vec::with_capacity(header.machines.len());
        let mut nodes = Vec::with_capacity(header.machines.len() * header.components.len());
        for name in &header.machines {
            let index = names
                .iter()
                .position(|n| *n == name.as_str())
                .ok_or_else(|| Error::UnknownMachine { name: name.clone() })?;
            let solver = cluster.machine_at(index);
            machines.push(index);
            for component in &header.components {
                let node = solver
                    .node_index(component)
                    .ok_or_else(|| Error::unknown_node(component))?;
                if !solver.monitored_components().contains(&component.as_str()) {
                    return Err(Error::invalid_input(format!(
                        "`{component}` on `{name}` is not a monitored component"
                    )));
                }
                nodes.push(node);
            }
        }
        Ok(ClusterBinding { machines, nodes })
    }
}

fn read_tag<R: Read>(reader: &mut R) -> Result<Option<u8>, Error> {
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => return Ok(None),
            Ok(_) => return Ok(Some(byte[0])),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
}

fn read_exactly<R: Read>(reader: &mut R, scratch: &mut Vec<u8>, n: usize) -> Result<(), Error> {
    scratch.clear();
    scratch.resize(n, 0);
    reader.read_exact(scratch).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            Error::invalid_input("truncated events data: record payload")
        } else {
            Error::from(e)
        }
    })
}

fn read_up_to<R: Read>(reader: &mut R, buf: &mut [u8]) -> Result<usize, Error> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(filled)
}
