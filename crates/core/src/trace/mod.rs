//! Utilization traces and offline (trace-driven) emulation.
//!
//! Mercury can compute temperatures from component-utilization traces
//! without running any system software — the paper uses this to fine-tune
//! parameters and, by *replicating* traces, to emulate cluster
//! installations larger than the user's real system (§1, §2.3).
//!
//! [`UtilizationTrace`] is a fixed-interval, column-per-component recording
//! of utilizations. [`run_offline`] replays a trace through a solver and
//! produces a [`TemperatureLog`]; [`run_offline_cluster`] does the same for
//! a whole room.
//!
//! For fleet-scale replay the in-RAM CSV path does not cut it: the
//! [`events`] submodule defines `mercury-events-v1`, a compact binary
//! trace format, [`stream`] replays `.events` files out of core
//! (memory-mapped or buffered) with flat memory, and [`checkpoint`]
//! serializes full solver state to `mercury-ckpt-v1` blobs so long
//! replays can be cut at tick boundaries and resumed — or run in
//! parallel across time segments — bit-identically.

pub mod checkpoint;
pub mod events;
pub mod stream;

use crate::error::Error;
use crate::fiddle::FiddleScript;
use crate::model::{ClusterModel, MachineModel};
use crate::solver::{ClusterSolver, Solver, SolverConfig};
use crate::units::{Celsius, Seconds, Utilization};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};
use std::sync::Arc;

/// A fixed-interval recording of component utilizations for one machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilizationTrace {
    machine: String,
    interval: Seconds,
    /// Shared, immutable column metadata: replicas made with
    /// [`UtilizationTrace::replicate_for`] (and plain clones) all point
    /// at one allocation, so a 1024-replica offline run does not carry
    /// 1024 copies of identical component names.
    components: Arc<[String]>,
    /// `samples[row][col]` is the utilization of `components[col]` during
    /// the `row`-th interval.
    samples: Vec<Vec<Utilization>>,
}

impl UtilizationTrace {
    /// Creates an empty trace sampling the given components every
    /// `interval_s` seconds.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] for a non-positive interval or an
    /// empty component list.
    pub fn new(
        machine: impl Into<String>,
        interval_s: f64,
        components: Vec<String>,
    ) -> Result<Self, Error> {
        if !interval_s.is_finite() || interval_s <= 0.0 {
            return Err(Error::invalid_input(format!(
                "trace interval {interval_s} must be positive"
            )));
        }
        if components.is_empty() {
            return Err(Error::invalid_input("trace has no components"));
        }
        Ok(UtilizationTrace {
            machine: machine.into(),
            interval: Seconds(interval_s),
            components: components.into(),
            samples: Vec::new(),
        })
    }

    /// The machine this trace was recorded on.
    pub fn machine(&self) -> &str {
        &self.machine
    }

    /// Sampling interval.
    pub fn interval(&self) -> Seconds {
        self.interval
    }

    /// Component names, in column order.
    pub fn components(&self) -> &[String] {
        &self.components
    }

    /// Number of sample rows.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total covered duration.
    pub fn duration(&self) -> Seconds {
        Seconds(self.samples.len() as f64 * self.interval.0)
    }

    /// Appends one row of utilizations (one value per component, in
    /// column order).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] when the row width does not match
    /// the component count.
    pub fn push_row(&mut self, row: &[f64]) -> Result<(), Error> {
        if row.len() != self.components.len() {
            return Err(Error::invalid_input(format!(
                "row has {} values but the trace has {} components",
                row.len(),
                self.components.len()
            )));
        }
        self.samples
            .push(row.iter().map(|&v| Utilization::new(v)).collect());
        Ok(())
    }

    /// Builds a trace by evaluating `f(time_s, component_index)` for
    /// `rows` rows.
    ///
    /// # Errors
    ///
    /// Propagates [`UtilizationTrace::new`] errors.
    pub fn from_fn(
        machine: impl Into<String>,
        interval_s: f64,
        components: Vec<String>,
        rows: usize,
        mut f: impl FnMut(f64, usize) -> f64,
    ) -> Result<Self, Error> {
        let mut trace = UtilizationTrace::new(machine, interval_s, components)?;
        let width = trace.components.len();
        for row in 0..rows {
            let t = row as f64 * interval_s;
            let values: Vec<f64> = (0..width).map(|c| f(t, c)).collect();
            trace.push_row(&values)?;
        }
        Ok(trace)
    }

    /// The utilizations in effect at emulated time `t` (step function:
    /// the most recent row at or before `t`, clamped to the last row).
    pub fn at(&self, t: Seconds) -> Option<&[Utilization]> {
        if self.samples.is_empty() {
            return None;
        }
        let idx = ((t.0 / self.interval.0).floor().max(0.0) as usize).min(self.samples.len() - 1);
        Some(&self.samples[idx])
    }

    /// The full series for one component.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNode`] for unknown component names.
    pub fn component_series(&self, component: &str) -> Result<Vec<Utilization>, Error> {
        let col = self
            .components
            .iter()
            .position(|c| c == component)
            .ok_or_else(|| Error::unknown_node(component))?;
        Ok(self.samples.iter().map(|row| row[col]).collect())
    }

    /// Clones this trace under a different machine name — the paper's
    /// trace-replication trick for emulating large clusters from a single
    /// measured machine. The component-name metadata is shared with the
    /// original (`Arc`), not deep-cloned per replica.
    pub fn replicate_for(&self, machine: impl Into<String>) -> UtilizationTrace {
        let mut copy = self.clone();
        copy.machine = machine.into();
        copy
    }

    /// Whether `other` shares this trace's component-name storage (true
    /// for replicas and clones; diagnostic for memory tests).
    pub fn shares_components_with(&self, other: &UtilizationTrace) -> bool {
        Arc::ptr_eq(&self.components, &other.components)
    }

    /// Writes the trace as CSV: a `time` column followed by one column
    /// per component (utilization fractions). The machine name and
    /// interval travel in a `#` header comment so the file is
    /// self-describing.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_csv<W: Write>(&self, mut w: W) -> Result<(), Error> {
        writeln!(
            w,
            "# machine={} interval_s={}",
            self.machine, self.interval.0
        )?;
        write!(w, "time")?;
        for c in self.components.iter() {
            write!(w, ",{c}")?;
        }
        writeln!(w)?;
        for (row_index, row) in self.samples.iter().enumerate() {
            write!(w, "{}", row_index as f64 * self.interval.0)?;
            for u in row {
                write!(w, ",{}", u.fraction())?;
            }
            writeln!(w)?;
        }
        Ok(())
    }

    /// Reads a trace back from the CSV format produced by
    /// [`UtilizationTrace::write_csv`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] for malformed headers, rows of the
    /// wrong width, or non-numeric utilizations.
    #[deprecated(
        since = "0.1.0",
        note = "holds the whole file in RAM; use `read_csv_from` with a `BufRead` instead"
    )]
    pub fn read_csv(text: &str) -> Result<UtilizationTrace, Error> {
        Self::read_csv_from(text.as_bytes())
    }

    /// Reads a trace from any [`BufRead`] source producing the CSV format
    /// of [`UtilizationTrace::write_csv`], line by line — the raw text is
    /// never held in memory, only the parsed samples. This is the reader
    /// `mercury-traceconv` uses so a multi-gigabyte CSV streams straight
    /// into the (much smaller) parsed representation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] for malformed headers, rows of the
    /// wrong width, or non-numeric utilizations, and [`Error::Io`] for
    /// reader failures.
    pub fn read_csv_from<R: BufRead>(mut reader: R) -> Result<UtilizationTrace, Error> {
        let mut line = String::new();
        let mut read_line = |line: &mut String| -> Result<bool, Error> {
            line.clear();
            let n = reader.read_line(line)?;
            while line.ends_with('\n') || line.ends_with('\r') {
                line.pop();
            }
            Ok(n > 0)
        };
        if !read_line(&mut line)? {
            return Err(Error::invalid_input("empty trace file"));
        }
        let header = line
            .strip_prefix('#')
            .ok_or_else(|| Error::invalid_input("trace file is missing its `#` header"))?;
        let mut machine = String::new();
        let mut interval = 1.0_f64;
        for field in header.split_whitespace() {
            if let Some(v) = field.strip_prefix("machine=") {
                machine = v.to_string();
            } else if let Some(v) = field.strip_prefix("interval_s=") {
                interval = v
                    .parse()
                    .map_err(|_| Error::invalid_input(format!("bad interval `{v}`")))?;
            }
        }
        if !read_line(&mut line)? {
            return Err(Error::invalid_input("trace file is missing its column row"));
        }
        let components: Vec<String> = line.split(',').skip(1).map(str::to_string).collect();
        let mut trace = UtilizationTrace::new(machine, interval, components)?;
        let mut row = Vec::with_capacity(trace.components.len());
        let mut number = 0usize;
        while read_line(&mut line)? {
            number += 1;
            if line.trim().is_empty() {
                continue;
            }
            row.clear();
            for v in line.split(',').skip(1) {
                row.push(v.parse::<f64>().map_err(|_| {
                    Error::invalid_input(format!("row {}: `{v}` is not a utilization", number + 2))
                })?);
            }
            trace.push_row(&row)?;
        }
        Ok(trace)
    }
}

/// A recorded time series of node temperatures, one column per
/// `machine:node` pair.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TemperatureLog {
    columns: Vec<String>,
    times: Vec<f64>,
    rows: Vec<Vec<f64>>,
}

impl TemperatureLog {
    /// Creates an empty log with the given column names.
    pub fn new(columns: Vec<String>) -> Self {
        TemperatureLog {
            columns,
            times: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Recorded timestamps, seconds.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of recorded rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row of temperatures at time `t`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] when the row width mismatches the
    /// column count.
    pub fn push(&mut self, t: Seconds, temps: &[Celsius]) -> Result<(), Error> {
        if temps.len() != self.columns.len() {
            return Err(Error::invalid_input(format!(
                "row has {} temperatures but the log has {} columns",
                temps.len(),
                self.columns.len()
            )));
        }
        self.times.push(t.0);
        self.rows.push(temps.iter().map(|t| t.0).collect());
        Ok(())
    }

    /// The series recorded for one column.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNode`] for unknown columns.
    pub fn series(&self, column: &str) -> Result<Vec<f64>, Error> {
        let col = self
            .columns
            .iter()
            .position(|c| c == column)
            .ok_or_else(|| Error::unknown_node(column))?;
        Ok(self.rows.iter().map(|row| row[col]).collect())
    }

    /// Largest value in a column.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNode`] for unknown columns.
    pub fn max(&self, column: &str) -> Result<f64, Error> {
        Ok(self
            .series(column)?
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max))
    }

    /// Largest absolute pointwise difference between one column of this
    /// log and one of `other`, over the overlapping prefix.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNode`] for unknown columns.
    pub fn max_abs_difference(
        &self,
        column: &str,
        other: &TemperatureLog,
        other_column: &str,
    ) -> Result<f64, Error> {
        let a = self.series(column)?;
        let b = other.series(other_column)?;
        Ok(a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max))
    }

    /// Writes the log as CSV (`time` column first).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_csv<W: Write>(&self, mut w: W) -> Result<(), Error> {
        write!(w, "time")?;
        for c in &self.columns {
            write!(w, ",{c}")?;
        }
        writeln!(w)?;
        for (t, row) in self.times.iter().zip(&self.rows) {
            write!(w, "{t}")?;
            for v in row {
                write!(w, ",{v}")?;
            }
            writeln!(w)?;
        }
        Ok(())
    }
}

/// Replays a trace through a fresh solver for the trace's duration,
/// applying `script` events as they fall due, and logs every node's
/// temperature each tick.
///
/// # Errors
///
/// Propagates solver construction and fiddle application errors. Unknown
/// trace components are an error — a trace for a different machine model
/// should fail loudly, not silently drive nothing.
pub fn run_offline(
    model: &MachineModel,
    trace: &UtilizationTrace,
    cfg: SolverConfig,
    script: Option<&FiddleScript>,
) -> Result<TemperatureLog, Error> {
    let mut solver = Solver::new(model, cfg)?;
    let columns: Vec<String> = solver.node_names().map(str::to_string).collect();
    let mut log = TemperatureLog::new(columns);
    let mut runner = script.map(FiddleScript::runner);
    let ticks = (trace.duration().0 / solver.dt().0).round() as usize;
    for _ in 0..ticks {
        let now = solver.time();
        if let Some(r) = runner.as_mut() {
            r.apply_due_to_solver(now, &mut solver)?;
        }
        if let Some(row) = trace.at(now) {
            let row = row.to_vec();
            for (component, u) in trace.components().iter().zip(row) {
                solver.set_utilization(component, u)?;
            }
        }
        solver.step();
        let temps: Vec<Celsius> = solver.temperatures().into_iter().map(|(_, t)| t).collect();
        log.push(solver.time(), &temps)?;
    }
    Ok(log)
}

/// Replays one trace per machine through a cluster solver. Columns are
/// named `machine:node`.
///
/// # Errors
///
/// Returns [`Error::InvalidInput`] when the trace count differs from the
/// machine count; otherwise as [`run_offline`].
pub fn run_offline_cluster(
    model: &ClusterModel,
    traces: &[UtilizationTrace],
    cfg: SolverConfig,
    script: Option<&FiddleScript>,
) -> Result<TemperatureLog, Error> {
    if traces.len() != model.machines().len() {
        return Err(Error::invalid_input(format!(
            "{} traces supplied for {} machines",
            traces.len(),
            model.machines().len()
        )));
    }
    let mut cluster = ClusterSolver::new(model, cfg)?;
    let mut columns = Vec::new();
    for m in model.machines() {
        for node in m.nodes() {
            columns.push(format!("{}:{}", m.name(), node.name()));
        }
    }
    let mut log = TemperatureLog::new(columns);
    let mut runner = script.map(FiddleScript::runner);
    let max_duration = traces.iter().map(|t| t.duration().0).fold(0.0, f64::max);
    let dt = cluster.machine_at(0).dt().0;
    let ticks = (max_duration / dt).round() as usize;
    for _ in 0..ticks {
        let now = cluster.time();
        if let Some(r) = runner.as_mut() {
            r.apply_due_to_cluster(now, &mut cluster)?;
        }
        for (i, trace) in traces.iter().enumerate() {
            if let Some(row) = trace.at(now) {
                let row = row.to_vec();
                let machine = cluster.machine_at_mut(i);
                for (component, u) in trace.components().iter().zip(row) {
                    machine.set_utilization(component, u)?;
                }
            }
        }
        cluster.step();
        let mut temps = Vec::new();
        for i in 0..cluster.len() {
            for (_, t) in cluster.machine_at(i).temperatures() {
                temps.push(t);
            }
        }
        log.push(cluster.time(), &temps)?;
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{self, nodes};

    fn staircase_trace(machine: &str) -> UtilizationTrace {
        UtilizationTrace::from_fn(
            machine,
            1.0,
            vec![nodes::CPU.to_string(), nodes::DISK_PLATTERS.to_string()],
            600,
            |t, c| {
                if c == 0 {
                    if t < 300.0 {
                        1.0
                    } else {
                        0.0
                    }
                } else {
                    0.2
                }
            },
        )
        .unwrap()
    }

    #[test]
    fn trace_construction_and_queries() {
        let trace = staircase_trace("server");
        assert_eq!(trace.machine(), "server");
        assert_eq!(trace.len(), 600);
        assert!(!trace.is_empty());
        assert_eq!(trace.duration(), Seconds(600.0));
        assert_eq!(trace.at(Seconds(0.0)).unwrap()[0].fraction(), 1.0);
        assert_eq!(trace.at(Seconds(299.0)).unwrap()[0].fraction(), 1.0);
        assert_eq!(trace.at(Seconds(300.0)).unwrap()[0].fraction(), 0.0);
        // Clamped past the end.
        assert_eq!(trace.at(Seconds(10_000.0)).unwrap()[0].fraction(), 0.0);
        let series = trace.component_series(nodes::CPU).unwrap();
        assert_eq!(series.len(), 600);
        assert!(trace.component_series("nic").is_err());
    }

    #[test]
    fn trace_validation() {
        assert!(UtilizationTrace::new("m", 0.0, vec!["cpu".into()]).is_err());
        assert!(UtilizationTrace::new("m", 1.0, vec![]).is_err());
        let mut t = UtilizationTrace::new("m", 1.0, vec!["cpu".into()]).unwrap();
        assert!(t.push_row(&[0.5, 0.5]).is_err());
        assert!(t.push_row(&[0.5]).is_ok());
        assert!(t.at(Seconds(0.0)).is_some());
        let empty = UtilizationTrace::new("m", 1.0, vec!["cpu".into()]).unwrap();
        assert!(empty.at(Seconds(0.0)).is_none());
    }

    #[test]
    fn replication_renames_only() {
        let trace = staircase_trace("server");
        let copy = trace.replicate_for("machine2");
        assert_eq!(copy.machine(), "machine2");
        assert_eq!(copy.len(), trace.len());
        assert_eq!(
            copy.component_series(nodes::CPU).unwrap(),
            trace.component_series(nodes::CPU).unwrap()
        );
    }

    #[test]
    fn replication_shares_component_storage() {
        let trace = staircase_trace("server");
        let copy = trace.replicate_for("machine2");
        assert!(trace.shares_components_with(&copy));
        // An independently built trace holds its own storage...
        let other = staircase_trace("server");
        assert!(!trace.shares_components_with(&other));
        // ...and so does a CSV round-trip, with equal content.
        let mut buf = Vec::new();
        trace.write_csv(&mut buf).unwrap();
        let back = UtilizationTrace::read_csv_from(&buf[..]).unwrap();
        assert!(!trace.shares_components_with(&back));
        assert_eq!(back.components(), trace.components());
    }

    #[test]
    fn offline_run_produces_a_full_log() {
        let model = presets::validation_machine();
        let trace = staircase_trace("server");
        let log = run_offline(&model, &trace, Default::default(), None).unwrap();
        assert_eq!(log.len(), 600);
        assert_eq!(log.columns().len(), model.nodes().len());
        // CPU heats while busy, cools after the load drops.
        let cpu = log.series(nodes::CPU).unwrap();
        assert!(
            cpu[299] > cpu[0] + 5.0,
            "cpu did not heat: {} -> {}",
            cpu[0],
            cpu[299]
        );
        assert!(cpu[599] < cpu[299], "cpu did not cool after idle");
    }

    #[test]
    fn offline_run_rejects_unknown_components() {
        let model = presets::validation_machine();
        let trace =
            UtilizationTrace::from_fn("server", 1.0, vec!["gpu".into()], 10, |_, _| 0.5).unwrap();
        assert!(run_offline(&model, &trace, Default::default(), None).is_err());
    }

    #[test]
    fn offline_run_applies_fiddle_scripts() {
        let model = presets::validation_machine_named("machine1");
        let trace = staircase_trace("machine1");
        let script =
            FiddleScript::parse("sleep 100\nfiddle machine1 temperature inlet 38.6\n").unwrap();
        let log = run_offline(&model, &trace, Default::default(), Some(&script)).unwrap();
        let inlet = log.series(nodes::INLET).unwrap();
        assert!((inlet[50] - 21.6).abs() < 1e-9);
        assert!((inlet[150] - 38.6).abs() < 1e-9);
    }

    #[test]
    fn offline_cluster_run_with_replicated_traces() {
        let cluster = presets::validation_cluster(2);
        let base = staircase_trace("machine1");
        let traces = vec![base.clone(), base.replicate_for("machine2")];
        let log = run_offline_cluster(&cluster, &traces, Default::default(), None).unwrap();
        assert_eq!(log.len(), 600);
        let c1 = log.series("machine1:cpu").unwrap();
        let c2 = log.series("machine2:cpu").unwrap();
        // Identical traces on identical machines give identical curves.
        for (a, b) in c1.iter().zip(&c2) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn offline_cluster_requires_matching_trace_count() {
        let cluster = presets::validation_cluster(2);
        let base = staircase_trace("machine1");
        assert!(run_offline_cluster(&cluster, &[base], Default::default(), None).is_err());
    }

    #[test]
    fn utilization_trace_csv_round_trips() {
        let trace = staircase_trace("server");
        let mut buffer = Vec::new();
        trace.write_csv(&mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert!(text.starts_with("# machine=server interval_s=1"));
        let back = UtilizationTrace::read_csv_from(text.as_bytes()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_str_reader_delegates_to_the_streaming_one() {
        let trace = staircase_trace("server");
        let mut buffer = Vec::new();
        trace.write_csv(&mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        let old = UtilizationTrace::read_csv(&text).unwrap();
        let new = UtilizationTrace::read_csv_from(text.as_bytes()).unwrap();
        assert_eq!(old, new);
    }

    #[test]
    fn utilization_trace_csv_rejects_garbage() {
        let read = |text: &str| UtilizationTrace::read_csv_from(text.as_bytes());
        assert!(read("").is_err());
        assert!(read("time,cpu\n0,0.5\n").is_err()); // no header
        assert!(read("# machine=m interval_s=zero\ntime,cpu\n").is_err());
        let bad_row = "# machine=m interval_s=1\ntime,cpu\n0,not_a_number\n";
        assert!(read(bad_row).is_err());
        let wrong_width = "# machine=m interval_s=1\ntime,cpu\n0,0.5,0.9\n";
        assert!(read(wrong_width).is_err());
    }

    #[test]
    fn temperature_log_csv_and_stats() {
        let mut log = TemperatureLog::new(vec!["a".into(), "b".into()]);
        log.push(Seconds(1.0), &[Celsius(20.0), Celsius(30.0)])
            .unwrap();
        log.push(Seconds(2.0), &[Celsius(25.0), Celsius(28.0)])
            .unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log.max("a").unwrap(), 25.0);
        assert!(log.push(Seconds(3.0), &[Celsius(1.0)]).is_err());
        assert!(log.series("zzz").is_err());

        let mut csv = Vec::new();
        log.write_csv(&mut csv).unwrap();
        let text = String::from_utf8(csv).unwrap();
        assert_eq!(text.lines().next().unwrap(), "time,a,b");
        assert!(text.contains("1,20,30"));

        let mut other = TemperatureLog::new(vec!["a".into()]);
        other.push(Seconds(1.0), &[Celsius(21.0)]).unwrap();
        other.push(Seconds(2.0), &[Celsius(24.0)]).unwrap();
        let d = log.max_abs_difference("a", &other, "a").unwrap();
        assert!((d - 1.0).abs() < 1e-12);
    }
}
