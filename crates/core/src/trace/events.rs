//! `mercury-events-v1`: a compact little-endian binary trace format.
//!
//! CSV traces are convenient but cap replay at what fits in RAM and
//! spend the hot loop parsing text. Following the preprocessing approach
//! of *Caching with Delayed Hits* (everything converted once into a
//! little-endian `.events` stream, then streamed), this module defines a
//! binary on-disk format for fleet utilization traces:
//!
//! ```text
//! header:
//!   magic      8  b"MCEVENT1"           (mercury-events-v1)
//!   version    u32  = 1
//!   interval   f64  tick interval, seconds (bit pattern preserved)
//!   machines   u32  machine count
//!   components u32  component count (columns, shared by all machines)
//!   ticks      u64  total ticks covered by the record stream
//!   machine table:   machines   x (u16 len, UTF-8 bytes)
//!   component table: components x (u16 len, UTF-8 bytes)
//! records (cover exactly `ticks` ticks, then end of file):
//!   0x01 FULL   machines*components u16 cells, machine-major;  1 tick
//!   0x02 DELTA  u32 n (>0), n x (u32 cell, u16 value)
//!               cells strictly increasing;                     1 tick
//!   0x03 HOLD   u32 n (>0): previous cells hold for n more ticks
//! ```
//!
//! Utilizations are quantized to 16-bit fixed point (`round(u * 65535)`),
//! so one decode step never strays more than [`QUANT_BOUND`] from the
//! source fraction, and re-encoding a decoded trace is byte-identical
//! (the quantized grid round-trips exactly through `f64`).
//!
//! The encoder is canonical: the first record is FULL, an unchanged tick
//! extends a HOLD run, and a changed tick is a DELTA when that is
//! strictly smaller than a FULL frame. HOLD runs are what make
//! `ClusterSolver::step_for` fusion opportunities explicit — the replay
//! layer turns each run into one fused multi-tick span.
//!
//! The decoder is strict: bad magic, version, counts, tags, non-canonical
//! deltas, tick-count mismatches, and trailing bytes are all hard errors.

use crate::error::Error;
use crate::trace::UtilizationTrace;
use std::io::Write;

/// File magic, "mercury-events-v1".
pub const MAGIC: [u8; 8] = *b"MCEVENT1";
/// Current format version.
pub const VERSION: u32 = 1;
/// Record tags.
pub(crate) const TAG_FULL: u8 = 0x01;
pub(crate) const TAG_DELTA: u8 = 0x02;
pub(crate) const TAG_HOLD: u8 = 0x03;

/// Largest representable quantized value (`u16::MAX`).
const QUANT_MAX: f64 = 65535.0;
/// Worst-case absolute error of one quantize/dequantize round trip:
/// half a quantization step.
pub const QUANT_BOUND: f64 = 0.5 / QUANT_MAX;

/// Quantizes a utilization fraction in `[0, 1]` to 16-bit fixed point.
pub fn quantize(fraction: f64) -> u16 {
    (fraction.clamp(0.0, 1.0) * QUANT_MAX).round() as u16
}

/// The utilization fraction a quantized cell decodes to.
pub fn dequantize(q: u16) -> f64 {
    f64::from(q) / QUANT_MAX
}

/// Parsed `.events` header: the machine/component tables and trace shape.
#[derive(Debug, Clone, PartialEq)]
pub struct EventsHeader {
    /// Tick interval in seconds (bit pattern preserved end to end).
    pub interval_s: f64,
    /// Machine names, in frame row order.
    pub machines: Vec<String>,
    /// Component names, in frame column order (shared by all machines).
    pub components: Vec<String>,
    /// Total ticks covered by the record stream.
    pub ticks: u64,
}

impl EventsHeader {
    /// Cells per frame (`machines * components`).
    pub fn cells(&self) -> usize {
        self.machines.len() * self.components.len()
    }

    /// Parses a header from the start of `bytes`, returning it together
    /// with the offset of the first record.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] for truncated or malformed headers.
    pub fn parse(bytes: &[u8]) -> Result<(EventsHeader, usize), Error> {
        match Self::parse_prefix(bytes)? {
            Some(parsed) => Ok(parsed),
            None => Err(Error::invalid_input(
                "truncated events data: incomplete header",
            )),
        }
    }

    /// Parses a header from a file *prefix*: returns `Ok(None)` when the
    /// prefix is well-formed so far but incomplete (the streaming opener
    /// should read more bytes), an error as soon as the prefix is
    /// provably invalid.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] for malformed headers.
    pub(crate) fn parse_prefix(bytes: &[u8]) -> Result<Option<(EventsHeader, usize)>, Error> {
        match Self::parse_inner(bytes) {
            Ok(parsed) => Ok(Some(parsed)),
            Err(ReadFail::Eof) => Ok(None),
            Err(ReadFail::Bad(e)) => Err(e),
        }
    }

    fn parse_inner(bytes: &[u8]) -> Result<(EventsHeader, usize), ReadFail> {
        let mut r = Reader::new(bytes);
        let magic = r.bytes(8)?;
        if magic != MAGIC {
            return Err(ReadFail::bad("not a mercury-events file (bad magic)"));
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(ReadFail::bad(format!(
                "unsupported mercury-events version {version} (expected {VERSION})"
            )));
        }
        let interval_s = f64::from_bits(r.u64()?);
        if !interval_s.is_finite() || interval_s <= 0.0 {
            return Err(ReadFail::bad(format!(
                "events interval {interval_s} must be positive"
            )));
        }
        let machines = r.u32()? as usize;
        let components = r.u32()? as usize;
        if machines == 0 || components == 0 {
            return Err(ReadFail::bad(
                "events file declares zero machines or components",
            ));
        }
        // Bound the frame size before multiplying so a hostile header
        // cannot overflow the cell count or provoke huge allocations.
        if machines > 1 << 24 || components > 1 << 16 || machines * components > 1 << 28 {
            return Err(ReadFail::bad(format!(
                "events frame shape {machines}x{components} is implausibly large"
            )));
        }
        let ticks = r.u64()?;
        let mut machine_names = Vec::with_capacity(machines);
        for _ in 0..machines {
            machine_names.push(r.name()?);
        }
        let mut component_names = Vec::with_capacity(components);
        for _ in 0..components {
            component_names.push(r.name()?);
        }
        Ok((
            EventsHeader {
                interval_s,
                machines: machine_names,
                components: component_names,
                ticks,
            },
            r.pos,
        ))
    }

    fn write<W: Write>(&self, w: &mut W) -> Result<(), Error> {
        w.write_all(&MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&self.interval_s.to_bits().to_le_bytes())?;
        w.write_all(&(self.machines.len() as u32).to_le_bytes())?;
        w.write_all(&(self.components.len() as u32).to_le_bytes())?;
        w.write_all(&self.ticks.to_le_bytes())?;
        for name in self.machines.iter().chain(&self.components) {
            let bytes = name.as_bytes();
            if bytes.len() > usize::from(u16::MAX) {
                return Err(Error::invalid_input(format!(
                    "name `{}...` is too long for the events name table",
                    &name[..32.min(name.len())]
                )));
            }
            w.write_all(&(bytes.len() as u16).to_le_bytes())?;
            w.write_all(bytes)?;
        }
        Ok(())
    }
}

/// What the encoder produced, for logs and compression diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EncodeStats {
    /// Ticks covered.
    pub ticks: u64,
    /// FULL frames written.
    pub full_frames: u64,
    /// DELTA frames written.
    pub delta_frames: u64,
    /// HOLD records written (each covers ≥1 tick).
    pub hold_records: u64,
    /// Ticks covered by HOLD records — each one is a `step_for` fusion
    /// opportunity the replay layer exploits.
    pub held_ticks: u64,
    /// Total bytes written, header included.
    pub bytes: u64,
}

/// Encodes one trace per machine into a `mercury-events-v1` stream.
///
/// All traces must share the tick interval (bit-equal), the component
/// list, and the row count; machine names must be unique. This mirrors
/// the paper's trace-replication usage — a fleet is one measured trace
/// replicated (or several aligned recordings), never a ragged bundle.
///
/// # Errors
///
/// Returns [`Error::InvalidInput`] for ragged or inconsistent trace
/// bundles and propagates writer I/O errors.
pub fn encode<W: Write>(traces: &[UtilizationTrace], w: &mut W) -> Result<EncodeStats, Error> {
    let first = traces
        .first()
        .ok_or_else(|| Error::invalid_input("no traces to encode"))?;
    let components: Vec<String> = first.components().to_vec();
    let ticks = first.len();
    let mut machines = Vec::with_capacity(traces.len());
    for t in traces {
        if t.interval().0.to_bits() != first.interval().0.to_bits() {
            return Err(Error::invalid_input(format!(
                "trace `{}` interval {} differs from `{}` interval {}",
                t.machine(),
                t.interval().0,
                first.machine(),
                first.interval().0
            )));
        }
        if t.components() != &components[..] {
            return Err(Error::invalid_input(format!(
                "trace `{}` has a different component list",
                t.machine()
            )));
        }
        if t.len() != ticks {
            return Err(Error::invalid_input(format!(
                "trace `{}` has {} rows but `{}` has {ticks}",
                t.machine(),
                t.len(),
                first.machine()
            )));
        }
        if machines.iter().any(|m| m == t.machine()) {
            return Err(Error::invalid_input(format!(
                "duplicate machine name `{}` in trace bundle",
                t.machine()
            )));
        }
        machines.push(t.machine().to_string());
    }
    let header = EventsHeader {
        interval_s: first.interval().0,
        machines,
        components,
        ticks: ticks as u64,
    };
    let mut counted = CountingWriter { inner: w, bytes: 0 };
    header.write(&mut counted)?;
    let cells = header.cells();
    let width = header.components.len();
    let mut stats = EncodeStats {
        ticks: ticks as u64,
        bytes: 0,
        ..Default::default()
    };
    let mut cur = vec![0u16; cells];
    let mut next = vec![0u16; cells];
    let mut hold_run = 0u32;
    for tick in 0..ticks {
        let t = crate::units::Seconds(tick as f64 * header.interval_s);
        for (m, trace) in traces.iter().enumerate() {
            let row = trace.at(t).expect("tick < len implies a row");
            for (c, u) in row.iter().enumerate() {
                next[m * width + c] = quantize(u.fraction());
            }
        }
        if tick == 0 {
            write_full(&mut counted, &next)?;
            stats.full_frames += 1;
        } else if next == cur {
            hold_run += 1;
            std::mem::swap(&mut cur, &mut next);
            continue;
        } else {
            flush_hold(&mut counted, &mut hold_run, &mut stats)?;
            let changes = next.iter().zip(&cur).filter(|(a, b)| a != b).count();
            // A DELTA costs 5 + 6*changes bytes against 1 + 2*cells for
            // a FULL frame; pick whichever is strictly smaller.
            if 5 + 6 * changes < 1 + 2 * cells {
                counted.write_all(&[TAG_DELTA])?;
                counted.write_all(&(changes as u32).to_le_bytes())?;
                for (i, (a, _)) in next
                    .iter()
                    .zip(&cur)
                    .enumerate()
                    .filter(|(_, (a, b))| a != b)
                {
                    counted.write_all(&(i as u32).to_le_bytes())?;
                    counted.write_all(&a.to_le_bytes())?;
                }
                stats.delta_frames += 1;
            } else {
                write_full(&mut counted, &next)?;
                stats.full_frames += 1;
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    flush_hold(&mut counted, &mut hold_run, &mut stats)?;
    stats.bytes = counted.bytes;
    Ok(stats)
}

/// [`encode`] into a fresh byte vector.
///
/// # Errors
///
/// As [`encode`].
pub fn encode_to_vec(traces: &[UtilizationTrace]) -> Result<(Vec<u8>, EncodeStats), Error> {
    let mut out = Vec::new();
    let stats = encode(traces, &mut out)?;
    Ok((out, stats))
}

fn write_full<W: Write>(w: &mut W, frame: &[u16]) -> Result<(), Error> {
    w.write_all(&[TAG_FULL])?;
    for q in frame {
        w.write_all(&q.to_le_bytes())?;
    }
    Ok(())
}

fn flush_hold<W: Write>(w: &mut W, run: &mut u32, stats: &mut EncodeStats) -> Result<(), Error> {
    if *run > 0 {
        w.write_all(&[TAG_HOLD])?;
        w.write_all(&run.to_le_bytes())?;
        stats.hold_records += 1;
        stats.held_ticks += u64::from(*run);
        *run = 0;
    }
    Ok(())
}

struct CountingWriter<'a, W: Write> {
    inner: &'a mut W,
    bytes: u64,
}

impl<W: Write> Write for CountingWriter<'_, W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.bytes += n as u64;
        Ok(n)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// One decoded record: either new cell values now in effect for one
/// tick, or a hold extending the previous values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Record<'a> {
    /// A complete frame payload (`2 * cells` bytes, LE u16 cells).
    Full(&'a [u8]),
    /// A sparse update payload (`6 * n` bytes of `(u32 cell, u16 value)`).
    Delta(&'a [u8]),
    /// The previous frame holds for this many additional ticks.
    Hold(u32),
}

/// Sequential record cursor over an in-memory `.events` record stream
/// (everything after the header) — the walker shared by the one-shot
/// [`decode`] path and the memory-mapped replay stream.
pub(crate) struct RecordCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    cells: usize,
    first: bool,
}

impl<'a> RecordCursor<'a> {
    pub(crate) fn new(records: &'a [u8], cells: usize) -> Self {
        Self::resume(records, cells, 0, true)
    }

    /// Rebuilds a cursor mid-stream — how the memory-mapped replay
    /// stream resumes from a saved byte offset without holding a
    /// self-referential borrow.
    pub(crate) fn resume(records: &'a [u8], cells: usize, pos: usize, first: bool) -> Self {
        RecordCursor {
            bytes: records,
            pos,
            cells,
            first,
        }
    }

    /// Byte offset of the next unread record, relative to the record
    /// stream start.
    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    /// Un-reads back to a previously observed position (peek support).
    pub(crate) fn rewind_to(&mut self, pos: usize) {
        debug_assert!(pos <= self.pos);
        self.pos = pos;
    }

    /// Decodes the next record, or `None` at a clean end of stream.
    pub(crate) fn next(&mut self) -> Result<Option<Record<'a>>, Error> {
        if self.pos == self.bytes.len() {
            return Ok(None);
        }
        let truncated = |what: &str| Error::invalid_input(format!("truncated events data: {what}"));
        let mut r = Reader {
            bytes: self.bytes,
            pos: self.pos,
        };
        let tag = r.bytes(1).map_err(|_| truncated("record tag"))?[0];
        let record = match tag {
            TAG_FULL => Record::Full(
                r.bytes(2 * self.cells)
                    .map_err(|_| truncated("full frame"))?,
            ),
            TAG_DELTA => {
                if self.first {
                    return Err(Error::invalid_input(
                        "events stream must start with a FULL frame",
                    ));
                }
                let n = r.u32().map_err(|_| truncated("delta count"))? as usize;
                if n == 0 {
                    return Err(Error::invalid_input("empty DELTA record"));
                }
                Record::Delta(r.bytes(6 * n).map_err(|_| truncated("delta payload"))?)
            }
            TAG_HOLD => {
                if self.first {
                    return Err(Error::invalid_input(
                        "events stream must start with a FULL frame",
                    ));
                }
                let n = r.u32().map_err(|_| truncated("hold count"))?;
                if n == 0 {
                    return Err(Error::invalid_input("empty HOLD record"));
                }
                Record::Hold(n)
            }
            other => {
                return Err(Error::invalid_input(format!(
                    "unknown events record tag {other:#04x} at byte {}",
                    self.pos
                )))
            }
        };
        self.first = false;
        self.pos = r.pos;
        Ok(Some(record))
    }
}

/// Applies a FULL payload to the current frame.
pub(crate) fn apply_full(payload: &[u8], cur: &mut [u16]) -> Result<(), Error> {
    if payload.len() != 2 * cur.len() {
        return Err(Error::invalid_input("full frame payload length mismatch"));
    }
    for (cell, chunk) in cur.iter_mut().zip(payload.chunks_exact(2)) {
        *cell = u16::from_le_bytes([chunk[0], chunk[1]]);
    }
    Ok(())
}

/// Applies a DELTA payload to the current frame, enforcing the canonical
/// strictly-increasing cell order and cell bounds.
pub(crate) fn apply_delta(payload: &[u8], cur: &mut [u16]) -> Result<(), Error> {
    let mut last: Option<usize> = None;
    for entry in payload.chunks_exact(6) {
        let cell = u32::from_le_bytes([entry[0], entry[1], entry[2], entry[3]]) as usize;
        let value = u16::from_le_bytes([entry[4], entry[5]]);
        if cell >= cur.len() {
            return Err(Error::invalid_input(format!(
                "delta cell {cell} out of range (frame has {} cells)",
                cur.len()
            )));
        }
        if last.is_some_and(|l| cell <= l) {
            return Err(Error::invalid_input(
                "delta cells are not strictly increasing",
            ));
        }
        last = Some(cell);
        cur[cell] = value;
    }
    Ok(())
}

/// Decodes a complete in-memory `.events` image back into one
/// [`UtilizationTrace`] per machine — the `mercury-traceconv decode`
/// direction. Strictly validating: every malformation is an error.
///
/// # Errors
///
/// Returns [`Error::InvalidInput`] for any header or record defect,
/// including a tick-count mismatch or trailing bytes.
pub fn decode(bytes: &[u8]) -> Result<Vec<UtilizationTrace>, Error> {
    let (header, offset) = EventsHeader::parse(bytes)?;
    let cells = header.cells();
    let width = header.components.len();
    let mut cursor = RecordCursor::new(&bytes[offset..], cells);
    let mut cur = vec![0u16; cells];
    let mut traces: Vec<UtilizationTrace> = header
        .machines
        .iter()
        .map(|m| UtilizationTrace::new(m.clone(), header.interval_s, header.components.clone()))
        .collect::<Result<_, _>>()?;
    let mut ticks = 0u64;
    let mut row = vec![0.0f64; width];
    let push_current =
        |traces: &mut Vec<UtilizationTrace>, cur: &[u16], row: &mut [f64]| -> Result<(), Error> {
            for (m, trace) in traces.iter_mut().enumerate() {
                for (c, v) in row.iter_mut().enumerate() {
                    *v = dequantize(cur[m * width + c]);
                }
                trace.push_row(row)?;
            }
            Ok(())
        };
    while let Some(record) = cursor.next()? {
        match record {
            Record::Full(payload) => {
                apply_full(payload, &mut cur)?;
                push_current(&mut traces, &cur, &mut row)?;
                ticks += 1;
            }
            Record::Delta(payload) => {
                apply_delta(payload, &mut cur)?;
                push_current(&mut traces, &cur, &mut row)?;
                ticks += 1;
            }
            Record::Hold(n) => {
                for _ in 0..n {
                    push_current(&mut traces, &cur, &mut row)?;
                }
                ticks += u64::from(n);
            }
        }
        if ticks > header.ticks {
            return Err(Error::invalid_input(format!(
                "events records cover {ticks}+ ticks but the header declares {}",
                header.ticks
            )));
        }
    }
    if ticks != header.ticks {
        return Err(Error::invalid_input(format!(
            "events records cover {ticks} ticks but the header declares {}",
            header.ticks
        )));
    }
    Ok(traces)
}

/// How a bounded read can fail: the slice ran out (which a prefix
/// parser treats as "need more bytes" and a record parser treats as
/// truncation), or the data is provably invalid.
enum ReadFail {
    Eof,
    Bad(Error),
}

impl ReadFail {
    fn bad(reason: impl Into<String>) -> Self {
        ReadFail::Bad(Error::invalid_input(reason))
    }
}

/// Bounds-checked little-endian primitive reader over a byte slice.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ReadFail> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(ReadFail::Eof),
        }
    }

    fn u32(&mut self) -> Result<u32, ReadFail> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ReadFail> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn name(&mut self) -> Result<String, ReadFail> {
        let len = usize::from(u16::from_le_bytes({
            let b = self.bytes(2)?;
            [b[0], b[1]]
        }));
        let raw = self.bytes(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| ReadFail::bad("table name is not UTF-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(machine: &str, rows: usize) -> UtilizationTrace {
        UtilizationTrace::from_fn(
            machine,
            1.0,
            vec!["cpu".into(), "disk".into()],
            rows,
            |t, c| {
                if c == 0 {
                    if (t as usize / 10).is_multiple_of(2) {
                        0.9
                    } else {
                        0.1
                    }
                } else {
                    0.25
                }
            },
        )
        .unwrap()
    }

    #[test]
    fn quantization_bound_holds_on_the_grid() {
        for q in [0u16, 1, 7, 32768, 65534, 65535] {
            assert_eq!(quantize(dequantize(q)), q);
        }
        for u in [0.0, 0.123456, 0.5, 0.999999, 1.0] {
            assert!((dequantize(quantize(u)) - u).abs() <= QUANT_BOUND);
        }
    }

    #[test]
    fn encode_decode_round_trips_canonically() {
        let traces = vec![trace("m1", 50), trace("m1", 50).replicate_for("m2")];
        let (bytes, stats) = encode_to_vec(&traces).unwrap();
        assert_eq!(stats.ticks, 50);
        assert!(stats.held_ticks > 0, "staircase trace should RLE-compress");
        let back = decode(&bytes).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].machine(), "m1");
        assert_eq!(back[1].machine(), "m2");
        let (bytes2, _) = encode_to_vec(&back).unwrap();
        assert_eq!(
            bytes, bytes2,
            "re-encode of a decode must be byte-identical"
        );
    }

    #[test]
    fn encoder_rejects_ragged_bundles() {
        assert!(encode_to_vec(&[]).is_err());
        let a = trace("m1", 10);
        let mut bad_len = vec![a.clone(), trace("m2", 11)];
        assert!(encode_to_vec(&bad_len).is_err());
        bad_len.pop();
        bad_len.push(a.replicate_for("m1"));
        assert!(encode_to_vec(&bad_len).is_err(), "duplicate machine name");
        let other_components =
            UtilizationTrace::from_fn("m2", 1.0, vec!["gpu".into()], 10, |_, _| 0.5).unwrap();
        assert!(encode_to_vec(&[a.clone(), other_components]).is_err());
        let other_interval =
            UtilizationTrace::from_fn("m2", 2.0, vec!["cpu".into(), "disk".into()], 10, |_, _| 0.5)
                .unwrap();
        assert!(encode_to_vec(&[a, other_interval]).is_err());
    }

    #[test]
    fn decoder_rejects_corruption() {
        let (bytes, _) = encode_to_vec(&[trace("m1", 30)]).unwrap();
        // Truncation anywhere in the file must fail, not wrap around.
        for cut in [0, 4, 8, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "truncated at {cut}");
        }
        // Bad magic and version.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(decode(&bad).is_err());
        let mut bad = bytes.clone();
        bad[8] = 99;
        assert!(decode(&bad).is_err());
        // Trailing garbage.
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(decode(&bad).is_err());
        // Tick-count mismatch.
        let mut bad = bytes.clone();
        bad[24] ^= 0x01; // low byte of the u64 tick count
        assert!(decode(&bad).is_err());
    }

    #[test]
    fn empty_trace_encodes_to_header_only() {
        let t = UtilizationTrace::new("m", 1.0, vec!["cpu".into()]).unwrap();
        let (bytes, stats) = encode_to_vec(&[t]).unwrap();
        assert_eq!(stats.ticks, 0);
        let back = decode(&bytes).unwrap();
        assert!(back[0].is_empty());
    }
}
