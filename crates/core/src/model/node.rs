//! Node types of the intra-machine graphs: hardware components and air
//! regions.

use crate::physics::PowerModel;
use crate::units::{JoulesPerKelvin, JoulesPerKgKelvin, Kilograms, AIR_SPECIFIC_HEAT};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default effective mass of air held by one air region, in kilograms.
///
/// The steady-state temperature rise across an air region is
/// `P / (ṁ·c)` — *independent* of this mass (see `physics`); the region
/// mass only shapes how quickly transients settle. 6 g corresponds to
/// roughly five litres of air, a reasonable region size inside a 1U–4U
/// server case. Override per node with [`AirSpec::mass_kg`] when modelling
/// notably larger or smaller regions.
pub const DEFAULT_AIR_REGION_MASS_KG: f64 = 0.006;

/// Identifies a node within a single [`super::MachineModel`].
///
/// Ids are dense indices assigned in insertion order by the builder; they
/// are only meaningful for the model that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The role an air region plays in the air-flow graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AirKind {
    /// A boundary region whose temperature is imposed from outside: the
    /// machine inlet. In a cluster, the inter-machine graph drives it; in a
    /// single-machine run it stays at the configured inlet temperature
    /// unless `fiddle` changes it.
    Inlet,
    /// An interior air region (e.g. "CPU air", "void space air").
    Internal,
    /// A terminal region where air leaves the machine. Its temperature is
    /// what the inter-machine graph observes as the machine's exhaust.
    Exhaust,
}

impl fmt::Display for AirKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AirKind::Inlet => "inlet",
            AirKind::Internal => "internal",
            AirKind::Exhaust => "exhaust",
        };
        f.write_str(s)
    }
}

/// A hardware component: a vertex of the heat-flow graph that produces
/// heat (Equation 3) and stores it in its thermal mass (Equation 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentSpec {
    /// Unique (per machine) component name, e.g. `"cpu"`.
    pub name: String,
    /// Mass of the component in kilograms (Table 1 weighs the CPU together
    /// with its heat sink).
    pub mass: Kilograms,
    /// Specific heat capacity in J/(kg·K) — Table 1 uses aluminium
    /// (896) for the disk and CPU/heat-sink and FR4 (1245) for the
    /// motherboard.
    pub specific_heat: JoulesPerKgKelvin,
    /// How utilization translates to dissipated power.
    pub power: PowerModel,
    /// Whether `monitord` reports a utilization for this component (true
    /// for CPUs, disks, NICs; false for the power supply or motherboard,
    /// which draw constant power in the paper's model).
    pub monitored: bool,
}

impl ComponentSpec {
    /// Heat capacity `m · c` of the component.
    pub fn capacity(&self) -> JoulesPerKelvin {
        self.mass * self.specific_heat
    }

    /// Validates mass, specific heat, and the power model.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("component name is empty".to_string());
        }
        if !self.mass.is_finite() || self.mass.0 <= 0.0 {
            return Err(format!(
                "component `{}` has non-positive mass {}",
                self.name, self.mass
            ));
        }
        if !self.specific_heat.is_finite() || self.specific_heat.0 <= 0.0 {
            return Err(format!(
                "component `{}` has non-positive specific heat {}",
                self.name, self.specific_heat
            ));
        }
        self.power
            .validate()
            .map_err(|e| format!("component `{}`: {e}", self.name))
    }
}

/// An air region: a vertex of the air-flow graph (and possibly of the
/// heat-flow graph, when components dump heat into it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AirSpec {
    /// Unique (per machine) region name, e.g. `"cpu_air"`.
    pub name: String,
    /// The region's role in the air-flow graph.
    pub kind: AirKind,
    /// Effective mass of air held by the region, kg. Shapes transient
    /// response only; see [`DEFAULT_AIR_REGION_MASS_KG`].
    pub mass_kg: f64,
}

impl AirSpec {
    /// Heat capacity of the air held by this region.
    pub fn capacity(&self) -> JoulesPerKelvin {
        Kilograms(self.mass_kg) * AIR_SPECIFIC_HEAT
    }

    /// Validates the region's name and mass.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("air region name is empty".to_string());
        }
        if !self.mass_kg.is_finite() || self.mass_kg <= 0.0 {
            return Err(format!(
                "air region `{}` has non-positive mass {}",
                self.name, self.mass_kg
            ));
        }
        Ok(())
    }
}

/// Any vertex of a machine model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodeSpec {
    /// A hardware component.
    Component(ComponentSpec),
    /// An air region.
    Air(AirSpec),
}

impl NodeSpec {
    /// The node's name.
    pub fn name(&self) -> &str {
        match self {
            NodeSpec::Component(c) => &c.name,
            NodeSpec::Air(a) => &a.name,
        }
    }

    /// The node's heat capacity `m · c`.
    pub fn capacity(&self) -> JoulesPerKelvin {
        match self {
            NodeSpec::Component(c) => c.capacity(),
            NodeSpec::Air(a) => a.capacity(),
        }
    }

    /// Returns the component spec if this node is a component.
    pub fn as_component(&self) -> Option<&ComponentSpec> {
        match self {
            NodeSpec::Component(c) => Some(c),
            NodeSpec::Air(_) => None,
        }
    }

    /// Returns the air spec if this node is an air region.
    pub fn as_air(&self) -> Option<&AirSpec> {
        match self {
            NodeSpec::Air(a) => Some(a),
            NodeSpec::Component(_) => None,
        }
    }

    /// Whether the node is an air region of the given kind.
    pub fn is_air_kind(&self, kind: AirKind) -> bool {
        matches!(self, NodeSpec::Air(a) if a.kind == kind)
    }

    /// Validates the underlying spec.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            NodeSpec::Component(c) => c.validate(),
            NodeSpec::Air(a) => a.validate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Watts;

    fn cpu() -> ComponentSpec {
        ComponentSpec {
            name: "cpu".to_string(),
            mass: Kilograms(0.151),
            specific_heat: JoulesPerKgKelvin(896.0),
            power: PowerModel::linear(7.0, 31.0),
            monitored: true,
        }
    }

    #[test]
    fn component_capacity_is_mass_times_specific_heat() {
        let cap = cpu().capacity();
        assert!((cap.0 - 135.296).abs() < 1e-9);
    }

    #[test]
    fn component_validation() {
        assert!(cpu().validate().is_ok());
        let mut bad = cpu();
        bad.mass = Kilograms(0.0);
        assert!(bad.validate().is_err());
        let mut bad = cpu();
        bad.specific_heat = JoulesPerKgKelvin(-1.0);
        assert!(bad.validate().is_err());
        let mut bad = cpu();
        bad.name.clear();
        assert!(bad.validate().is_err());
        let mut bad = cpu();
        bad.power = PowerModel::Constant(Watts(-3.0));
        assert!(bad.validate().is_err());
    }

    #[test]
    fn air_capacity_uses_air_specific_heat() {
        let air = AirSpec {
            name: "cpu_air".to_string(),
            kind: AirKind::Internal,
            mass_kg: DEFAULT_AIR_REGION_MASS_KG,
        };
        assert!((air.capacity().0 - 0.006 * 1005.0).abs() < 1e-9);
        assert!(air.validate().is_ok());
    }

    #[test]
    fn air_validation_rejects_bad_mass() {
        let air = AirSpec {
            name: "x".to_string(),
            kind: AirKind::Internal,
            mass_kg: 0.0,
        };
        assert!(air.validate().is_err());
        let air = AirSpec {
            name: "x".to_string(),
            kind: AirKind::Internal,
            mass_kg: f64::NAN,
        };
        assert!(air.validate().is_err());
    }

    #[test]
    fn node_spec_accessors() {
        let node = NodeSpec::Component(cpu());
        assert_eq!(node.name(), "cpu");
        assert!(node.as_component().is_some());
        assert!(node.as_air().is_none());
        assert!(!node.is_air_kind(AirKind::Inlet));

        let inlet = NodeSpec::Air(AirSpec {
            name: "inlet".to_string(),
            kind: AirKind::Inlet,
            mass_kg: 0.01,
        });
        assert!(inlet.is_air_kind(AirKind::Inlet));
        assert!(!inlet.is_air_kind(AirKind::Exhaust));
    }

    #[test]
    fn air_kind_display() {
        assert_eq!(AirKind::Inlet.to_string(), "inlet");
        assert_eq!(AirKind::Internal.to_string(), "internal");
        assert_eq!(AirKind::Exhaust.to_string(), "exhaust");
    }
}
