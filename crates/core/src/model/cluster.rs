//! The inter-machine air-flow graph (Figure 1c) and cluster model.
//!
//! A cluster is a set of machines plus a directed air graph among three
//! kinds of endpoints: **supplies** (air conditioners with a set output
//! temperature), machine **inlets**/**exhausts**, and **junctions** (room
//! air regions such as "cluster exhaust"). Each edge carries a fraction;
//! a machine inlet's temperature is the fraction-weighted average of its
//! incoming edges, which is the paper's "perfect mixing" assumption.
//! Recirculation (exhaust → inlet edges) and rack-layout effects are
//! modelled with additional edges, exactly as the paper suggests.

use super::machine::MachineModel;
use crate::error::Error;
use crate::units::Celsius;
use serde::{Deserialize, Serialize};
#[cfg(test)]
use std::collections::HashMap;
use std::collections::HashSet;

/// A cold-air source in the room: an air conditioner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SupplySpec {
    /// Unique endpoint name (e.g. `"ac"`).
    pub name: String,
    /// Temperature of the supplied air.
    pub temperature: Celsius,
}

/// One endpoint of the inter-machine air graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClusterEndpoint {
    /// An air-conditioner supply, by name.
    Supply(String),
    /// The inlet of machine `index` (into [`ClusterModel::machines`]).
    MachineInlet(usize),
    /// The exhaust of machine `index`.
    MachineExhaust(usize),
    /// A room air region, by name (e.g. `"cluster_exhaust"`).
    Junction(String),
}

impl std::fmt::Display for ClusterEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterEndpoint::Supply(n) => write!(f, "supply:{n}"),
            ClusterEndpoint::MachineInlet(i) => write!(f, "machine{i}:inlet"),
            ClusterEndpoint::MachineExhaust(i) => write!(f, "machine{i}:exhaust"),
            ClusterEndpoint::Junction(n) => write!(f, "junction:{n}"),
        }
    }
}

/// A directed inter-machine air edge carrying `fraction` of the source's
/// outflow to the destination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterEdge {
    /// Upstream endpoint.
    pub from: ClusterEndpoint,
    /// Downstream endpoint.
    pub to: ClusterEndpoint,
    /// Mixing weight in `(0, 1]`.
    pub fraction: f64,
}

/// A validated cluster model: machines plus the inter-machine air graph.
///
/// Build with [`ClusterModel::builder`]. The common ideal case of the
/// paper — an AC feeding N machines equally, all exhausting into a shared
/// "cluster exhaust", no recirculation — is available as
/// [`crate::presets::validation_cluster`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterModel {
    machines: Vec<MachineModel>,
    supplies: Vec<SupplySpec>,
    junctions: Vec<String>,
    edges: Vec<ClusterEdge>,
}

impl ClusterModel {
    /// Starts building a cluster model.
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::default()
    }

    /// The machines, in insertion order.
    pub fn machines(&self) -> &[MachineModel] {
        &self.machines
    }

    /// The air-conditioner supplies.
    pub fn supplies(&self) -> &[SupplySpec] {
        &self.supplies
    }

    /// Names of the room junctions.
    pub fn junctions(&self) -> &[String] {
        &self.junctions
    }

    /// The inter-machine air edges.
    pub fn edges(&self) -> &[ClusterEdge] {
        &self.edges
    }

    /// Index of the machine with the given name.
    pub fn machine_index(&self, name: &str) -> Option<usize> {
        self.machines.iter().position(|m| m.name() == name)
    }

    /// Index of the supply with the given name (into
    /// [`ClusterModel::supplies`]).
    pub fn supply_index(&self, name: &str) -> Option<usize> {
        self.supplies.iter().position(|s| s.name == name)
    }

    /// Index of the junction with the given name (into
    /// [`ClusterModel::junctions`]).
    pub fn junction_index(&self, name: &str) -> Option<usize> {
        self.junctions.iter().position(|j| j == name)
    }
}

/// Incremental builder for [`ClusterModel`].
#[derive(Debug, Default)]
pub struct ClusterBuilder {
    machines: Vec<MachineModel>,
    supplies: Vec<SupplySpec>,
    junctions: Vec<String>,
    edges: Vec<ClusterEdge>,
}

impl ClusterBuilder {
    /// Adds a machine; returns its index for use in endpoints.
    pub fn machine(&mut self, model: MachineModel) -> usize {
        self.machines.push(model);
        self.machines.len() - 1
    }

    /// Adds an air-conditioner supply at the given output temperature.
    pub fn supply(&mut self, name: impl Into<String>, temperature_c: f64) -> &mut Self {
        self.supplies.push(SupplySpec {
            name: name.into(),
            temperature: Celsius(temperature_c),
        });
        self
    }

    /// Adds a room air junction.
    pub fn junction(&mut self, name: impl Into<String>) -> &mut Self {
        self.junctions.push(name.into());
        self
    }

    /// Adds a directed air edge between two endpoints.
    pub fn edge(&mut self, from: ClusterEndpoint, to: ClusterEndpoint, fraction: f64) -> &mut Self {
        self.edges.push(ClusterEdge { from, to, fraction });
        self
    }

    /// Validates and produces the cluster model.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidModel`] when names collide, edges reference
    /// unknown endpoints, fractions are out of range, a supply or machine
    /// exhaust has incoming edges, a machine inlet or junction has no
    /// incoming edges while edges exist elsewhere, or machine names
    /// collide.
    pub fn build(&self) -> Result<ClusterModel, Error> {
        let mut machine_names = HashSet::new();
        for m in &self.machines {
            if !machine_names.insert(m.name().to_string()) {
                return Err(Error::invalid_model(format!(
                    "duplicate machine name `{}`",
                    m.name()
                )));
            }
        }
        let mut names = HashSet::new();
        for s in &self.supplies {
            if s.name.is_empty() {
                return Err(Error::invalid_model("supply name is empty"));
            }
            if !s.temperature.is_finite() {
                return Err(Error::invalid_model(format!(
                    "supply `{}` has non-finite temperature",
                    s.name
                )));
            }
            if !names.insert(("s", s.name.clone())) {
                return Err(Error::invalid_model(format!(
                    "duplicate supply name `{}`",
                    s.name
                )));
            }
        }
        for j in &self.junctions {
            if j.is_empty() {
                return Err(Error::invalid_model("junction name is empty"));
            }
            if !names.insert(("j", j.clone())) {
                return Err(Error::invalid_model(format!(
                    "duplicate junction name `{j}`"
                )));
            }
        }

        let mut seen_edges = HashSet::new();
        for e in &self.edges {
            if !(e.fraction > 0.0 && e.fraction <= 1.0) {
                return Err(Error::invalid_model(format!(
                    "cluster edge {} -> {} has fraction {} outside (0, 1]",
                    e.from, e.to, e.fraction
                )));
            }
            self.check_endpoint(&e.from)?;
            self.check_endpoint(&e.to)?;
            if matches!(e.to, ClusterEndpoint::Supply(_)) {
                return Err(Error::invalid_model(format!(
                    "cluster edge flows into supply {} — supplies are sources",
                    e.to
                )));
            }
            if matches!(e.to, ClusterEndpoint::MachineExhaust(_)) {
                return Err(Error::invalid_model(format!(
                    "cluster edge flows into {} — machine exhausts are sources",
                    e.to
                )));
            }
            if matches!(e.from, ClusterEndpoint::MachineInlet(_)) {
                return Err(Error::invalid_model(format!(
                    "cluster edge leaves {} — machine inlets are sinks",
                    e.from
                )));
            }
            if !seen_edges.insert((e.from.clone(), e.to.clone())) {
                return Err(Error::invalid_model(format!(
                    "duplicate cluster edge {} -> {}",
                    e.from, e.to
                )));
            }
        }

        // Every machine inlet should be fed by something if any edges exist.
        if !self.edges.is_empty() {
            for (i, m) in self.machines.iter().enumerate() {
                let fed = self
                    .edges
                    .iter()
                    .any(|e| e.to == ClusterEndpoint::MachineInlet(i));
                if !fed {
                    return Err(Error::invalid_model(format!(
                        "machine `{}` has no incoming cluster air edge",
                        m.name()
                    )));
                }
            }
        }

        Ok(ClusterModel {
            machines: self.machines.clone(),
            supplies: self.supplies.clone(),
            junctions: self.junctions.clone(),
            edges: self.edges.clone(),
        })
    }

    fn check_endpoint(&self, ep: &ClusterEndpoint) -> Result<(), Error> {
        match ep {
            ClusterEndpoint::Supply(n) => {
                if !self.supplies.iter().any(|s| &s.name == n) {
                    return Err(Error::invalid_model(format!("unknown supply `{n}`")));
                }
            }
            ClusterEndpoint::Junction(n) => {
                if !self.junctions.iter().any(|j| j == n) {
                    return Err(Error::invalid_model(format!("unknown junction `{n}`")));
                }
            }
            ClusterEndpoint::MachineInlet(i) | ClusterEndpoint::MachineExhaust(i) => {
                if *i >= self.machines.len() {
                    return Err(Error::invalid_model(format!(
                        "machine index {i} out of range"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Mixing reference: resolves the temperature of a sink endpoint as the
/// fraction-weighted average of its incoming edges.
///
/// `source_temp` maps each source endpoint to its current temperature.
/// Returns `None` when the endpoint has no incoming edges (the caller
/// keeps the previous value).
///
/// The cluster solver used to call this every tick; it now mixes through
/// the precompiled CSR plan in `solver::kernel::MixGraph`, and this
/// straightforward formulation survives as the test oracle the plan is
/// checked against.
#[cfg(test)]
pub(crate) fn mixed_inlet_temperature(
    edges: &[ClusterEdge],
    sink: &ClusterEndpoint,
    source_temp: &HashMap<ClusterEndpoint, Celsius>,
) -> Option<Celsius> {
    let mut weight = 0.0;
    let mut sum = 0.0;
    for e in edges.iter().filter(|e| &e.to == sink) {
        if let Some(t) = source_temp.get(&e.from) {
            weight += e.fraction;
            sum += e.fraction * t.0;
        }
    }
    if weight > 0.0 {
        Some(Celsius(sum / weight))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(name: &str) -> MachineModel {
        let mut b = MachineModel::builder(name);
        b.component("cpu")
            .mass_kg(0.1)
            .specific_heat(896.0)
            .power_range(7.0, 31.0);
        b.inlet("inlet");
        b.air("cpu_air");
        b.exhaust("exhaust");
        b.heat_edge("cpu", "cpu_air", 0.75).unwrap();
        b.air_edge("inlet", "cpu_air", 1.0).unwrap();
        b.air_edge("cpu_air", "exhaust", 1.0).unwrap();
        b.build().unwrap()
    }

    fn four_machine_builder() -> ClusterBuilder {
        let mut b = ClusterModel::builder();
        b.supply("ac", 18.0);
        b.junction("cluster_exhaust");
        for i in 0..4 {
            let idx = b.machine(machine(&format!("m{}", i + 1)));
            b.edge(
                ClusterEndpoint::Supply("ac".into()),
                ClusterEndpoint::MachineInlet(idx),
                0.25,
            );
            b.edge(
                ClusterEndpoint::MachineExhaust(idx),
                ClusterEndpoint::Junction("cluster_exhaust".into()),
                1.0,
            );
        }
        b
    }

    #[test]
    fn builds_the_figure_1c_cluster() {
        let cluster = four_machine_builder().build().unwrap();
        assert_eq!(cluster.machines().len(), 4);
        assert_eq!(cluster.supplies().len(), 1);
        assert_eq!(cluster.edges().len(), 8);
        assert_eq!(cluster.machine_index("m3"), Some(2));
        assert_eq!(cluster.machine_index("nope"), None);
    }

    #[test]
    fn rejects_duplicate_machine_names() {
        let mut b = ClusterModel::builder();
        b.machine(machine("m1"));
        b.machine(machine("m1"));
        assert!(b.build().is_err());
    }

    #[test]
    fn rejects_unknown_endpoints_and_bad_fractions() {
        let mut b = ClusterModel::builder();
        let idx = b.machine(machine("m1"));
        b.edge(
            ClusterEndpoint::Supply("ghost".into()),
            ClusterEndpoint::MachineInlet(idx),
            0.5,
        );
        assert!(b.build().is_err());

        let mut b = ClusterModel::builder();
        b.supply("ac", 18.0);
        let idx = b.machine(machine("m1"));
        b.edge(
            ClusterEndpoint::Supply("ac".into()),
            ClusterEndpoint::MachineInlet(idx),
            1.5,
        );
        assert!(b.build().is_err());
    }

    #[test]
    fn rejects_edges_with_wrong_direction() {
        // Into a supply.
        let mut b = ClusterModel::builder();
        b.supply("ac", 18.0);
        b.junction("j");
        b.edge(
            ClusterEndpoint::Junction("j".into()),
            ClusterEndpoint::Supply("ac".into()),
            0.5,
        );
        assert!(b.build().is_err());

        // Out of a machine inlet.
        let mut b = ClusterModel::builder();
        b.supply("ac", 18.0);
        b.junction("j");
        let idx = b.machine(machine("m1"));
        b.edge(
            ClusterEndpoint::Supply("ac".into()),
            ClusterEndpoint::MachineInlet(idx),
            1.0,
        );
        b.edge(
            ClusterEndpoint::MachineInlet(idx),
            ClusterEndpoint::Junction("j".into()),
            0.5,
        );
        assert!(b.build().is_err());
    }

    #[test]
    fn rejects_unfed_machines() {
        let mut b = ClusterModel::builder();
        b.supply("ac", 18.0);
        b.junction("j");
        let m1 = b.machine(machine("m1"));
        let _m2 = b.machine(machine("m2"));
        b.edge(
            ClusterEndpoint::Supply("ac".into()),
            ClusterEndpoint::MachineInlet(m1),
            1.0,
        );
        let err = b.build().unwrap_err();
        assert!(err.to_string().contains("m2"), "{err}");
    }

    #[test]
    fn mixed_inlet_temperature_weights_by_fraction() {
        let edges = vec![
            ClusterEdge {
                from: ClusterEndpoint::Supply("ac".into()),
                to: ClusterEndpoint::MachineInlet(0),
                fraction: 0.75,
            },
            ClusterEdge {
                from: ClusterEndpoint::MachineExhaust(1),
                to: ClusterEndpoint::MachineInlet(0),
                fraction: 0.25,
            },
        ];
        let mut temps = HashMap::new();
        temps.insert(ClusterEndpoint::Supply("ac".into()), Celsius(18.0));
        temps.insert(ClusterEndpoint::MachineExhaust(1), Celsius(38.0));
        let t = mixed_inlet_temperature(&edges, &ClusterEndpoint::MachineInlet(0), &temps).unwrap();
        assert!((t.0 - 23.0).abs() < 1e-12);

        assert!(
            mixed_inlet_temperature(&edges, &ClusterEndpoint::MachineInlet(9), &temps).is_none()
        );
    }
}
