//! The per-machine model: heat-flow and air-flow graphs plus constants.

use super::node::{AirKind, AirSpec, ComponentSpec, NodeId, NodeSpec, DEFAULT_AIR_REGION_MASS_KG};
use crate::error::Error;
use crate::physics::PowerModel;
use crate::units::{Celsius, CubicMetersPerSecond, JoulesPerKgKelvin, Kilograms, WattsPerKelvin};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An undirected heat-flow edge (Figure 1a): heat moves between `a` and
/// `b` in proportion to their temperature difference, at `k` W/K.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeatEdge {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Heat-transfer coefficient × surface area, W/K.
    pub k: WattsPerKelvin,
}

/// A directed air-flow edge (Figure 1b): `fraction` of the air leaving
/// `from` enters `to`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AirEdge {
    /// Upstream air region.
    pub from: NodeId,
    /// Downstream air region.
    pub to: NodeId,
    /// Fraction of the upstream region's outflow carried by this edge, in
    /// `(0, 1]`. The fractions leaving one region may sum to less than 1
    /// (leakage out of the case) but never more.
    pub fraction: f64,
}

/// A complete, validated single-machine thermal model.
///
/// Build one with [`MachineModel::builder`]; see [`crate::presets`] for the
/// paper's Table 1 server. The model is immutable — runtime changes
/// (emergencies, fan-speed changes) are applied to a
/// [`crate::solver::Solver`], which copies these constants at construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineModel {
    name: String,
    nodes: Vec<NodeSpec>,
    heat_edges: Vec<HeatEdge>,
    air_edges: Vec<AirEdge>,
    fan: CubicMetersPerSecond,
    inlet_temperature: Celsius,
    /// Air nodes in a topological order of the air-flow graph.
    topo_order: Vec<NodeId>,
}

impl MachineModel {
    /// Starts building a machine model with the given name.
    pub fn builder(name: impl Into<String>) -> MachineBuilder {
        MachineBuilder::new(name)
    }

    /// The machine's name (e.g. `"machine1"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All nodes, indexable by [`NodeId::index`].
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// The undirected heat-flow edges.
    pub fn heat_edges(&self) -> &[HeatEdge] {
        &self.heat_edges
    }

    /// The directed air-flow edges.
    pub fn air_edges(&self) -> &[AirEdge] {
        &self.air_edges
    }

    /// The fan's volumetric flow.
    pub fn fan(&self) -> CubicMetersPerSecond {
        self.fan
    }

    /// The default inlet-air boundary temperature.
    pub fn inlet_temperature(&self) -> Celsius {
        self.inlet_temperature
    }

    /// Air nodes in topological (upstream-to-downstream) order.
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo_order
    }

    /// Looks a node up by name.
    pub fn node_id(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name() == name)
            .map(|i| NodeId(i as u32))
    }

    /// The spec of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this model.
    pub fn node(&self, id: NodeId) -> &NodeSpec {
        &self.nodes[id.index()]
    }

    /// Names of all monitored components (the ones `monitord` reports
    /// utilizations for), in insertion order.
    pub fn monitored_components(&self) -> Vec<&str> {
        self.nodes
            .iter()
            .filter_map(|n| n.as_component())
            .filter(|c| c.monitored)
            .map(|c| c.name.as_str())
            .collect()
    }

    /// Ids of all inlet air nodes.
    pub fn inlets(&self) -> Vec<NodeId> {
        self.air_ids(AirKind::Inlet)
    }

    /// Ids of all exhaust air nodes.
    pub fn exhausts(&self) -> Vec<NodeId> {
        self.air_ids(AirKind::Exhaust)
    }

    fn air_ids(&self, kind: AirKind) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_air_kind(kind))
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Returns a copy of this model under a different machine name —
    /// useful for replicating one calibrated server into a cluster (§2:
    /// "replicating these traces allows Mercury to emulate large cluster
    /// installations").
    pub fn renamed(&self, name: impl Into<String>) -> MachineModel {
        let mut copy = self.clone();
        copy.name = name.into();
        copy
    }

    /// A hash of everything the step kernel's constants derive from:
    /// node kinds and heat capacities, air-region kinds and masses, both
    /// edge lists (indices and rate constants), the air topological
    /// order, and the fan's mass flow.
    ///
    /// Two machines with equal fingerprints compile to identical kernels
    /// and can be stepped together by the batched cluster kernel. Names,
    /// power models, and the inlet boundary temperature are deliberately
    /// excluded: they are per-machine *inputs* (utilization-driven heat
    /// and boundary data), not stepping structure, so trace-replicated
    /// machines batch even when each replica runs a different workload.
    pub fn structural_fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.nodes.len().hash(&mut h);
        for node in &self.nodes {
            match node {
                NodeSpec::Component(c) => {
                    0u8.hash(&mut h);
                    c.capacity().0.to_bits().hash(&mut h);
                }
                NodeSpec::Air(a) => {
                    1u8.hash(&mut h);
                    (a.kind as u8).hash(&mut h);
                    a.mass_kg.to_bits().hash(&mut h);
                }
            }
        }
        self.heat_edges.len().hash(&mut h);
        for e in &self.heat_edges {
            e.a.0.hash(&mut h);
            e.b.0.hash(&mut h);
            e.k.0.to_bits().hash(&mut h);
        }
        self.air_edges.len().hash(&mut h);
        for e in &self.air_edges {
            e.from.0.hash(&mut h);
            e.to.0.hash(&mut h);
            e.fraction.to_bits().hash(&mut h);
        }
        for id in &self.topo_order {
            id.0.hash(&mut h);
        }
        self.fan.mass_flow().0.to_bits().hash(&mut h);
        h.finish()
    }
}

/// Handle returned by [`MachineBuilder::component`] for fluent per-component
/// configuration.
#[derive(Debug)]
pub struct ComponentHandle<'a> {
    builder: &'a mut MachineBuilder,
    index: usize,
}

impl ComponentHandle<'_> {
    fn spec(&mut self) -> &mut ComponentSpec {
        match &mut self.builder.nodes[self.index] {
            NodeSpec::Component(c) => c,
            NodeSpec::Air(_) => unreachable!("component handle points at an air node"),
        }
    }

    /// Sets the component's mass in kilograms.
    pub fn mass_kg(&mut self, kg: f64) -> &mut Self {
        self.spec().mass = Kilograms(kg);
        self
    }

    /// Sets the specific heat capacity in J/(kg·K).
    pub fn specific_heat(&mut self, c: f64) -> &mut Self {
        self.spec().specific_heat = JoulesPerKgKelvin(c);
        self
    }

    /// Uses the linear power model `P(u) = base + u·(max−base)` (Equation 4).
    pub fn power_range(&mut self, base_w: f64, max_w: f64) -> &mut Self {
        self.spec().power = PowerModel::linear(base_w, max_w);
        self
    }

    /// Uses a constant power draw and marks the component unmonitored
    /// (e.g. the power supply and motherboard in Table 1).
    pub fn constant_power(&mut self, watts: f64) -> &mut Self {
        let spec = self.spec();
        spec.power = PowerModel::Constant(crate::units::Watts(watts));
        spec.monitored = false;
        self
    }

    /// Replaces the power model wholesale.
    pub fn power_model(&mut self, model: PowerModel) -> &mut Self {
        self.spec().power = model;
        self
    }

    /// Marks whether `monitord` reports a utilization for this component.
    pub fn monitored(&mut self, yes: bool) -> &mut Self {
        self.spec().monitored = yes;
        self
    }
}

/// Incremental builder for [`MachineModel`].
///
/// ```
/// use mercury::model::MachineModel;
///
/// # fn main() -> Result<(), mercury::Error> {
/// let mut b = MachineModel::builder("demo");
/// b.component("cpu").mass_kg(0.151).specific_heat(896.0).power_range(7.0, 31.0);
/// b.inlet("inlet");
/// b.air("cpu_air");
/// b.exhaust("exhaust");
/// b.heat_edge("cpu", "cpu_air", 0.75)?;
/// b.air_edge("inlet", "cpu_air", 1.0)?;
/// b.air_edge("cpu_air", "exhaust", 1.0)?;
/// b.fan_cfm(38.6).inlet_temperature_c(21.6);
/// let model = b.build()?;
/// assert_eq!(model.nodes().len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MachineBuilder {
    name: String,
    nodes: Vec<NodeSpec>,
    heat_edges: Vec<(String, String, WattsPerKelvin)>,
    air_edges: Vec<(String, String, f64)>,
    fan: CubicMetersPerSecond,
    inlet_temperature: Celsius,
}

impl MachineBuilder {
    /// Creates a builder for a machine with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        MachineBuilder {
            name: name.into(),
            nodes: Vec::new(),
            heat_edges: Vec::new(),
            air_edges: Vec::new(),
            fan: CubicMetersPerSecond::from_cfm(38.6),
            inlet_temperature: Celsius(21.6),
        }
    }

    /// Adds a hardware component with placeholder constants (1 kg of
    /// aluminium, no power draw) and returns a handle to configure it.
    pub fn component(&mut self, name: impl Into<String>) -> ComponentHandle<'_> {
        self.nodes.push(NodeSpec::Component(ComponentSpec {
            name: name.into(),
            mass: Kilograms(1.0),
            specific_heat: JoulesPerKgKelvin(896.0),
            power: PowerModel::Constant(crate::units::Watts(0.0)),
            monitored: true,
        }));
        let index = self.nodes.len() - 1;
        ComponentHandle {
            builder: self,
            index,
        }
    }

    /// Adds an interior air region with the default effective mass.
    pub fn air(&mut self, name: impl Into<String>) -> &mut Self {
        self.air_with_mass(name, DEFAULT_AIR_REGION_MASS_KG, AirKind::Internal)
    }

    /// Adds an inlet air region (temperature boundary).
    pub fn inlet(&mut self, name: impl Into<String>) -> &mut Self {
        self.air_with_mass(name, DEFAULT_AIR_REGION_MASS_KG, AirKind::Inlet)
    }

    /// Adds an exhaust air region (terminal).
    pub fn exhaust(&mut self, name: impl Into<String>) -> &mut Self {
        self.air_with_mass(name, DEFAULT_AIR_REGION_MASS_KG, AirKind::Exhaust)
    }

    /// Adds an air region with an explicit effective mass and kind.
    pub fn air_with_mass(
        &mut self,
        name: impl Into<String>,
        mass_kg: f64,
        kind: AirKind,
    ) -> &mut Self {
        self.nodes.push(NodeSpec::Air(AirSpec {
            name: name.into(),
            kind,
            mass_kg,
        }));
        self
    }

    /// Connects two nodes with an undirected heat-flow edge at `k` W/K.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNode`] if either endpoint has not been added
    /// yet, and [`Error::InvalidInput`] for a non-positive `k` or a
    /// self-loop.
    pub fn heat_edge(&mut self, a: &str, b: &str, k: f64) -> Result<&mut Self, Error> {
        if a == b {
            return Err(Error::invalid_input(format!(
                "heat edge `{a}` -- `{b}` is a self-loop"
            )));
        }
        if !k.is_finite() || k <= 0.0 {
            return Err(Error::invalid_input(format!(
                "heat edge `{a}` -- `{b}` has non-positive k {k}"
            )));
        }
        self.require_node(a)?;
        self.require_node(b)?;
        self.heat_edges
            .push((a.to_string(), b.to_string(), WattsPerKelvin(k)));
        Ok(self)
    }

    /// Connects two air regions with a directed air-flow edge carrying
    /// `fraction` of the upstream outflow.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNode`] for missing endpoints and
    /// [`Error::InvalidInput`] for fractions outside `(0, 1]`, self-loops,
    /// or endpoints that are not air regions.
    pub fn air_edge(&mut self, from: &str, to: &str, fraction: f64) -> Result<&mut Self, Error> {
        if from == to {
            return Err(Error::invalid_input(format!(
                "air edge `{from}` -> `{to}` is a self-loop"
            )));
        }
        if !(fraction > 0.0 && fraction <= 1.0) {
            return Err(Error::invalid_input(format!(
                "air edge `{from}` -> `{to}` has fraction {fraction} outside (0, 1]"
            )));
        }
        for name in [from, to] {
            let node = self.require_node(name)?;
            if node.as_air().is_none() {
                return Err(Error::invalid_input(format!(
                    "air edge endpoint `{name}` is a component, not an air region"
                )));
            }
        }
        self.air_edges
            .push((from.to_string(), to.to_string(), fraction));
        Ok(self)
    }

    /// Sets the fan's volumetric flow in ft³/min (Table 1 uses 38.6).
    pub fn fan_cfm(&mut self, cfm: f64) -> &mut Self {
        self.fan = CubicMetersPerSecond::from_cfm(cfm);
        self
    }

    /// Sets the default inlet-air temperature in °C.
    pub fn inlet_temperature_c(&mut self, celsius: f64) -> &mut Self {
        self.inlet_temperature = Celsius(celsius);
        self
    }

    fn require_node(&self, name: &str) -> Result<&NodeSpec, Error> {
        self.nodes
            .iter()
            .find(|n| n.name() == name)
            .ok_or_else(|| Error::unknown_node(name))
    }

    /// Validates every invariant and produces the immutable model.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidModel`] when:
    /// - the machine name or any node spec is invalid,
    /// - node names collide,
    /// - a heat edge is duplicated,
    /// - the air-flow fractions leaving any region sum to more than 1,
    /// - an inlet has incoming air edges, or an exhaust has outgoing ones,
    /// - the air-flow graph contains a cycle,
    /// - the fan flow is non-positive while air edges exist.
    pub fn build(&self) -> Result<MachineModel, Error> {
        if self.name.is_empty() {
            return Err(Error::invalid_model("machine name is empty"));
        }
        let mut by_name: HashMap<&str, NodeId> = HashMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            node.validate().map_err(Error::invalid_model)?;
            if by_name.insert(node.name(), NodeId(i as u32)).is_some() {
                return Err(Error::invalid_model(format!(
                    "duplicate node name `{}`",
                    node.name()
                )));
            }
        }

        let mut heat_edges = Vec::with_capacity(self.heat_edges.len());
        let mut seen_pairs = std::collections::HashSet::new();
        for (a, b, k) in &self.heat_edges {
            let ia = by_name[a.as_str()];
            let ib = by_name[b.as_str()];
            let key = (ia.min(ib), ia.max(ib));
            if !seen_pairs.insert(key) {
                return Err(Error::invalid_model(format!(
                    "duplicate heat edge `{a}` -- `{b}`"
                )));
            }
            heat_edges.push(HeatEdge {
                a: ia,
                b: ib,
                k: *k,
            });
        }

        let mut air_edges = Vec::with_capacity(self.air_edges.len());
        let mut outgoing: HashMap<NodeId, f64> = HashMap::new();
        let mut seen_air = std::collections::HashSet::new();
        for (from, to, fraction) in &self.air_edges {
            let ifrom = by_name[from.as_str()];
            let ito = by_name[to.as_str()];
            if !seen_air.insert((ifrom, ito)) {
                return Err(Error::invalid_model(format!(
                    "duplicate air edge `{from}` -> `{to}`"
                )));
            }
            if self.nodes[ito.index()].is_air_kind(AirKind::Inlet) {
                return Err(Error::invalid_model(format!(
                    "air edge `{from}` -> `{to}` flows into an inlet; inlets are boundaries"
                )));
            }
            if self.nodes[ifrom.index()].is_air_kind(AirKind::Exhaust) {
                return Err(Error::invalid_model(format!(
                    "air edge `{from}` -> `{to}` leaves an exhaust; exhausts are terminal"
                )));
            }
            *outgoing.entry(ifrom).or_insert(0.0) += fraction;
            air_edges.push(AirEdge {
                from: ifrom,
                to: ito,
                fraction: *fraction,
            });
        }
        for (id, total) in &outgoing {
            if *total > 1.0 + 1e-9 {
                return Err(Error::invalid_model(format!(
                    "air fractions leaving `{}` sum to {total:.4} > 1",
                    self.nodes[id.index()].name()
                )));
            }
        }
        if !air_edges.is_empty() && (self.fan.0.is_nan() || self.fan.0 <= 0.0) {
            return Err(Error::invalid_model(
                "air edges exist but fan flow is non-positive",
            ));
        }

        let topo_order = topo_sort_air(&self.nodes, &air_edges)?;

        Ok(MachineModel {
            name: self.name.clone(),
            nodes: self.nodes.clone(),
            heat_edges,
            air_edges,
            fan: self.fan,
            inlet_temperature: self.inlet_temperature,
            topo_order,
        })
    }
}

/// Kahn's algorithm over the air nodes; errors on a cycle.
fn topo_sort_air(nodes: &[NodeSpec], edges: &[AirEdge]) -> Result<Vec<NodeId>, Error> {
    let n = nodes.len();
    let mut indegree = vec![0usize; n];
    let mut is_air = vec![false; n];
    for (i, node) in nodes.iter().enumerate() {
        is_air[i] = node.as_air().is_some();
    }
    for e in edges {
        indegree[e.to.index()] += 1;
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| is_air[i] && indegree[i] == 0).collect();
    // Deterministic order: process lowest index first.
    queue.sort_unstable();
    let mut order = Vec::new();
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        order.push(NodeId(u as u32));
        let mut newly_ready: Vec<usize> = Vec::new();
        for e in edges.iter().filter(|e| e.from.index() == u) {
            let v = e.to.index();
            indegree[v] -= 1;
            if indegree[v] == 0 {
                newly_ready.push(v);
            }
        }
        newly_ready.sort_unstable();
        queue.extend(newly_ready);
    }
    let air_count = is_air.iter().filter(|&&b| b).count();
    if order.len() != air_count {
        return Err(Error::invalid_model("air-flow graph contains a cycle"));
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_builder() -> MachineBuilder {
        let mut b = MachineModel::builder("m");
        b.component("cpu")
            .mass_kg(0.151)
            .specific_heat(896.0)
            .power_range(7.0, 31.0);
        b.inlet("inlet");
        b.air("cpu_air");
        b.exhaust("exhaust");
        b.heat_edge("cpu", "cpu_air", 0.75).unwrap();
        b.air_edge("inlet", "cpu_air", 1.0).unwrap();
        b.air_edge("cpu_air", "exhaust", 1.0).unwrap();
        b
    }

    #[test]
    fn builds_a_minimal_machine() {
        let model = tiny_builder().build().unwrap();
        assert_eq!(model.name(), "m");
        assert_eq!(model.nodes().len(), 4);
        assert_eq!(model.heat_edges().len(), 1);
        assert_eq!(model.air_edges().len(), 2);
        assert_eq!(model.monitored_components(), vec!["cpu"]);
        assert_eq!(model.inlets().len(), 1);
        assert_eq!(model.exhausts().len(), 1);
    }

    #[test]
    fn node_lookup_by_name() {
        let model = tiny_builder().build().unwrap();
        let id = model.node_id("cpu_air").unwrap();
        assert_eq!(model.node(id).name(), "cpu_air");
        assert!(model.node_id("nope").is_none());
    }

    #[test]
    fn topo_order_is_upstream_first() {
        let model = tiny_builder().build().unwrap();
        let order: Vec<&str> = model
            .topo_order()
            .iter()
            .map(|id| model.node(*id).name())
            .collect();
        let inlet_pos = order.iter().position(|n| *n == "inlet").unwrap();
        let cpu_air_pos = order.iter().position(|n| *n == "cpu_air").unwrap();
        let exhaust_pos = order.iter().position(|n| *n == "exhaust").unwrap();
        assert!(inlet_pos < cpu_air_pos && cpu_air_pos < exhaust_pos);
    }

    #[test]
    fn rejects_duplicate_node_names() {
        let mut b = MachineModel::builder("m");
        b.component("cpu");
        b.air("cpu");
        assert!(matches!(b.build(), Err(Error::InvalidModel { .. })));
    }

    #[test]
    fn rejects_duplicate_heat_edges_even_reversed() {
        let mut b = tiny_builder();
        b.heat_edge("cpu_air", "cpu", 0.5).unwrap();
        assert!(matches!(b.build(), Err(Error::InvalidModel { .. })));
    }

    #[test]
    fn rejects_overcommitted_air_fractions() {
        let mut b = tiny_builder();
        b.air("extra");
        b.air_edge("inlet", "extra", 0.5).unwrap();
        // inlet now emits 1.0 + 0.5.
        let err = b.build().unwrap_err();
        assert!(err.to_string().contains("sum to"), "{err}");
    }

    #[test]
    fn rejects_flow_into_inlet_and_out_of_exhaust() {
        // Endpoint roles are validated at build time, not add time.
        let mut b = tiny_builder();
        b.air("side");
        b.air_edge("side", "inlet", 1.0).unwrap();
        assert!(b.build().is_err());

        let mut b = tiny_builder();
        b.air("side");
        b.air_edge("exhaust", "side", 1.0).unwrap();
        assert!(b.build().is_err());
    }

    #[test]
    fn rejects_air_cycles() {
        let mut b = MachineModel::builder("m");
        b.inlet("inlet");
        b.air("a");
        b.air("b");
        b.air_edge("inlet", "a", 0.5).unwrap();
        b.air_edge("a", "b", 1.0).unwrap();
        b.air_edge("b", "a", 1.0).unwrap();
        let err = b.build().unwrap_err();
        assert!(err.to_string().contains("cycle"), "{err}");
    }

    #[test]
    fn rejects_bad_edge_inputs() {
        let mut b = tiny_builder();
        assert!(b.heat_edge("cpu", "cpu", 1.0).is_err());
        assert!(b.heat_edge("cpu", "cpu_air", 0.0).is_err());
        assert!(b.heat_edge("cpu", "ghost", 1.0).is_err());
        assert!(b.air_edge("inlet", "inlet", 0.5).is_err());
        assert!(b.air_edge("inlet", "cpu", 0.5).is_err());
        assert!(b.air_edge("inlet", "cpu_air", 0.0).is_err());
        assert!(b.air_edge("inlet", "cpu_air", 1.5).is_err());
    }

    #[test]
    fn rejects_zero_fan_with_air_edges() {
        let mut b = tiny_builder();
        b.fan_cfm(0.0);
        assert!(b.build().is_err());
    }

    #[test]
    fn renamed_copies_everything_but_the_name() {
        let model = tiny_builder().build().unwrap();
        let copy = model.renamed("m2");
        assert_eq!(copy.name(), "m2");
        assert_eq!(copy.nodes(), model.nodes());
        assert_eq!(copy.heat_edges(), model.heat_edges());
    }

    #[test]
    fn component_handle_configures_spec() {
        let mut b = MachineModel::builder("m");
        b.component("psu")
            .mass_kg(1.643)
            .specific_heat(896.0)
            .constant_power(40.0);
        b.component("nic").monitored(false);
        let model = b.build().unwrap();
        let psu = model
            .node(model.node_id("psu").unwrap())
            .as_component()
            .unwrap()
            .clone();
        assert!(!psu.monitored);
        assert_eq!(psu.power, PowerModel::Constant(crate::units::Watts(40.0)));
        assert!(model.monitored_components().is_empty());
    }
}
