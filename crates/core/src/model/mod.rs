//! Machine and cluster descriptions: the graphs and constants of §2.2.
//!
//! A [`MachineModel`] holds the two intra-machine input graphs of the paper
//! (Figure 1a/1b):
//!
//! * the **heat-flow graph** — undirected edges labelled with a
//!   heat-transfer coefficient `k` (W/K) between hardware components and
//!   the air regions around them, and
//! * the **air-flow graph** — directed edges labelled with the *fraction*
//!   of the upstream region's air that flows into the downstream region.
//!
//! A [`ClusterModel`] composes several machines with the inter-machine
//! air-flow graph of Figure 1c (air-conditioner supplies, machine inlets
//! and exhausts, and room junctions such as "cluster exhaust").
//!
//! Models are immutable once built; construction goes through
//! [`MachineBuilder`] / [`ClusterBuilder`], which validate every structural
//! and physical invariant up front so the solver can run without checks.

pub(crate) mod cluster;
mod machine;
mod node;

pub use cluster::{ClusterBuilder, ClusterEdge, ClusterEndpoint, ClusterModel, SupplySpec};
pub use machine::{AirEdge, HeatEdge, MachineBuilder, MachineModel};
pub use node::{AirKind, AirSpec, ComponentSpec, NodeId, NodeSpec, DEFAULT_AIR_REGION_MASS_KG};

pub use crate::physics::PowerModel;
