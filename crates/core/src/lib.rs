//! # Mercury — temperature emulation for server systems
//!
//! Mercury is a software suite that **emulates** component and air
//! temperatures in single-node or clustered server systems, reproducing the
//! system described in *"Mercury and Freon: Temperature Emulation and
//! Management for Server Systems"* (Heath et al., ASPLOS 2006).
//!
//! Instead of instrumenting real hardware with thermal sensors (slow,
//! noisy, unrepeatable) or running a computational-fluid-dynamics simulator
//! (hours per run, cannot execute software), Mercury computes temperatures
//! from three groups of inputs:
//!
//! 1. **Graphs** — an undirected *heat-flow* graph between hardware
//!    components and air regions, a directed *intra-machine air-flow*
//!    graph, and (for clusters) a directed *inter-machine air-flow* graph
//!    ([`model`]).
//! 2. **Constants** — masses, specific heat capacities, heat-transfer
//!    coefficients (`k`), air fractions, fan speeds, and idle/peak power
//!    consumptions ([`model::ComponentSpec`], [`presets`] for the paper's
//!    Table 1).
//! 3. **Dynamic component utilizations** — sampled online by a monitoring
//!    daemon ([`net::monitord`]) or replayed from a trace ([`trace`]).
//!
//! The [`solver`] advances the model in discrete time steps (1 s by
//! default, with automatic sub-stepping for numerical stability) and can be
//! queried like a bank of thermal sensors, either in-process
//! ([`solver::Solver::temperature`]) or over UDP with the paper's
//! `opensensor`/`readsensor`/`closesensor` interface ([`net::sensor`]).
//! Thermal emergencies — a failed air conditioner, a blocked inlet — are
//! injected at run time with [`fiddle`].
//!
//! ## Quick start
//!
//! ```
//! use mercury::presets;
//! use mercury::solver::{Solver, SolverConfig};
//!
//! # fn main() -> Result<(), mercury::Error> {
//! // The Pentium-III validation server from Table 1 of the paper.
//! let model = presets::validation_machine();
//! let mut solver = Solver::new(&model, SolverConfig::default())?;
//!
//! // Run one hour of emulated time at 80% CPU utilization.
//! solver.set_utilization("cpu", 0.8)?;
//! for _ in 0..3600 {
//!     solver.step();
//! }
//! let cpu_air = solver.temperature("cpu_air")?;
//! assert!(cpu_air.0 > 25.0 && cpu_air.0 < 45.0);
//! # Ok(())
//! # }
//! ```
//!
//! ## Crate layout
//!
//! | module | role |
//! |--------|------|
//! | [`units`] | typed physical quantities (°C, W, J, kg, …) |
//! | [`physics`] | the four governing equations of §2.1 of the paper |
//! | [`model`] | machine/cluster descriptions: nodes, edges, constants |
//! | [`solver`] | the coarse-grained finite-element solver (§2.2) |
//! | [`fiddle`] | thermal-emergency injection tool and script language (§2.3) |
//! | [`fan`] | variable-speed fan curves and controllers (§7 extension) |
//! | [`trace`] | utilization traces, `.events` binary replay, checkpoints |
//! | [`perf`] | performance-counter energy accounting (Pentium 4 mode, §2.3) |
//! | [`presets`] | ready-made models with the paper's Table 1 constants |
//! | [`net`] | UDP solver service, `monitord`, and the sensor client library |

// `deny`, not `forbid`: the sanctioned exceptions are (a) the scoped
// pointer hand-off inside `solver::pool`, which discharges the same
// obligation `std::thread::scope` does internally (the driver outlives
// every borrow it publishes), (b) the vector intrinsics behind
// `solver::simd` (dispatch is gated on runtime feature detection and
// every kernel is held bitwise-equal to the safe scalar sweep), and
// (c) the aligned chunk buffers in `solver::aligned` (a fixed-length
// `Vec<f64>` at cache-line alignment), and (d) the read-only `mmap`
// of `.events` trace files in `trace::stream` (a private mapping of
// an immutable file, unmapped on drop, with a buffered-read fallback
// on the same code path). Each site carries a SAFETY comment, is
// `#[allow]`ed individually, and is exercised under ThreadSanitizer
// in CI; everything else in the crate remains safe Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod build;
pub mod error;
pub mod fan;
pub mod fiddle;
pub mod model;
pub mod net;
pub mod perf;
pub mod physics;
pub mod presets;
pub mod solver;
pub mod trace;
pub mod units;

pub use error::Error;
pub use units::Celsius;

/// Convenient result alias for fallible Mercury operations.
pub type Result<T> = std::result::Result<T, Error>;
