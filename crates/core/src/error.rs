//! Error types for the Mercury suite.

use std::fmt;

/// The error type returned by every fallible operation in this crate.
///
/// The variants are deliberately coarse: callers generally either report
/// the error to the user or abort the experiment, so the priority is a
/// precise, human-readable message rather than machine-matchable detail.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A node name was referenced that does not exist in the model.
    UnknownNode {
        /// The name that failed to resolve.
        name: String,
    },
    /// A machine name was referenced that does not exist in the cluster.
    UnknownMachine {
        /// The name that failed to resolve.
        name: String,
    },
    /// The model failed a structural or physical validation check.
    InvalidModel {
        /// Explanation of the failed check.
        reason: String,
    },
    /// A numeric input was outside its legal range.
    InvalidInput {
        /// Explanation of the rejected value.
        reason: String,
    },
    /// A fiddle script or command failed to parse.
    FiddleParse {
        /// Line number (1-based) of the offending statement.
        line: usize,
        /// Explanation of the parse failure.
        reason: String,
    },
    /// A network datagram could not be encoded or decoded.
    Protocol {
        /// Explanation of the protocol violation.
        reason: String,
    },
    /// The remote solver reported an error for a sensor or fiddle request.
    Remote {
        /// Message relayed from the solver service.
        reason: String,
    },
    /// An underlying socket or file operation failed.
    Io(std::io::Error),
    /// A sensor read timed out waiting for the solver service.
    Timeout,
}

impl Error {
    /// Shorthand constructor for [`Error::InvalidModel`].
    pub fn invalid_model(reason: impl Into<String>) -> Self {
        Error::InvalidModel {
            reason: reason.into(),
        }
    }

    /// Shorthand constructor for [`Error::InvalidInput`].
    pub fn invalid_input(reason: impl Into<String>) -> Self {
        Error::InvalidInput {
            reason: reason.into(),
        }
    }

    /// Shorthand constructor for [`Error::UnknownNode`].
    pub fn unknown_node(name: impl Into<String>) -> Self {
        Error::UnknownNode { name: name.into() }
    }

    /// Shorthand constructor for [`Error::Protocol`].
    pub fn protocol(reason: impl Into<String>) -> Self {
        Error::Protocol {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownNode { name } => write!(f, "unknown node `{name}`"),
            Error::UnknownMachine { name } => write!(f, "unknown machine `{name}`"),
            Error::InvalidModel { reason } => write!(f, "invalid model: {reason}"),
            Error::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
            Error::FiddleParse { line, reason } => {
                write!(f, "fiddle script error at line {line}: {reason}")
            }
            Error::Protocol { reason } => write!(f, "protocol error: {reason}"),
            Error::Remote { reason } => write!(f, "remote solver error: {reason}"),
            Error::Io(err) => write!(f, "i/o error: {err}"),
            Error::Timeout => write!(f, "timed out waiting for the solver service"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(err: std::io::Error) -> Self {
        Error::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(Error, &str)> = vec![
            (Error::unknown_node("cpu"), "unknown node `cpu`"),
            (
                Error::UnknownMachine { name: "m9".into() },
                "unknown machine `m9`",
            ),
            (
                Error::invalid_model("air fractions exceed 1"),
                "invalid model: air fractions exceed 1",
            ),
            (Error::Timeout, "timed out waiting for the solver service"),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
        }
    }

    #[test]
    fn io_error_preserves_source() {
        use std::error::Error as _;
        let err = Error::from(std::io::Error::other("boom"));
        assert!(err.source().is_some());
        assert!(err.to_string().contains("boom"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<Error>();
    }
}
