//! `fiddle` — the thermal-emergency tool (§2.3, Figure 4).
//!
//! Fiddle forces the solver to change any constant or temperature on-line:
//! set a machine's inlet air to 30 °C to simulate a failed air
//! conditioner, drop the fan speed to emulate a dying fan, rewrite a power
//! range to emulate voltage/frequency scaling, and so on.
//!
//! Commands can be built programmatically ([`FiddleCommand`]) and applied
//! to a running [`Solver`]/[`ClusterSolver`], or parsed from the paper's
//! shell-script-like format:
//!
//! ```text
//! #!/bin/bash
//! sleep 100
//! fiddle machine1 temperature inlet 30
//! sleep 200
//! fiddle machine1 temperature inlet 21.6
//! ```
//!
//! [`FiddleScript::parse`] turns that text into timestamped commands and
//! [`ScriptRunner`] replays them against a solver as emulated time
//! advances.

use crate::error::Error;
use crate::model::PowerModel;
use crate::solver::{ClusterSolver, Solver};
use crate::units::{Celsius, Seconds};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single fiddle command, addressed to one machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FiddleCommand {
    /// Pin a node's temperature (persistently, until [`FiddleCommand::Release`]).
    /// On a machine inlet this emulates a cooling failure or a blocked
    /// duct; the paper's Figure 4 script is two of these.
    Temperature {
        /// Target machine.
        machine: String,
        /// Target node.
        node: String,
        /// Imposed temperature, °C.
        celsius: f64,
    },
    /// Release a pinned node so it evolves freely again.
    Release {
        /// Target machine.
        machine: String,
        /// Target node.
        node: String,
    },
    /// Change the machine's fan speed (multi-speed fans).
    FanSpeed {
        /// Target machine.
        machine: String,
        /// New volumetric flow, ft³/min.
        cfm: f64,
    },
    /// Replace a component's linear power range (emulating DVFS or clock
    /// throttling).
    Power {
        /// Target machine.
        machine: String,
        /// Target component.
        component: String,
        /// New idle power, W.
        base_w: f64,
        /// New peak power, W.
        max_w: f64,
    },
    /// Change a heat edge's transfer coefficient.
    HeatK {
        /// Target machine.
        machine: String,
        /// One endpoint of the heat edge.
        a: String,
        /// The other endpoint.
        b: String,
        /// New coefficient, W/K.
        k: f64,
    },
    /// Change an air edge's fraction (e.g. a partially blocked duct).
    AirFraction {
        /// Target machine.
        machine: String,
        /// Upstream air region.
        from: String,
        /// Downstream air region.
        to: String,
        /// New fraction in `(0, 1]`.
        fraction: f64,
    },
}

impl FiddleCommand {
    /// The machine this command addresses.
    pub fn machine(&self) -> &str {
        match self {
            FiddleCommand::Temperature { machine, .. }
            | FiddleCommand::Release { machine, .. }
            | FiddleCommand::FanSpeed { machine, .. }
            | FiddleCommand::Power { machine, .. }
            | FiddleCommand::HeatK { machine, .. }
            | FiddleCommand::AirFraction { machine, .. } => machine,
        }
    }

    /// Applies this command to a single-machine solver.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownMachine`] when the command addresses a
    /// different machine, plus whatever the underlying solver operation
    /// returns.
    pub fn apply(&self, solver: &mut Solver) -> Result<(), Error> {
        if solver.machine_name() != self.machine() {
            return Err(Error::UnknownMachine {
                name: self.machine().to_string(),
            });
        }
        match self {
            FiddleCommand::Temperature { node, celsius, .. } => {
                solver.force_temperature(node, Celsius(*celsius))
            }
            FiddleCommand::Release { node, .. } => solver.release_temperature(node),
            FiddleCommand::FanSpeed { cfm, .. } => solver.set_fan_cfm(*cfm),
            FiddleCommand::Power {
                component,
                base_w,
                max_w,
                ..
            } => solver.set_power_model(component, PowerModel::linear(*base_w, *max_w)),
            FiddleCommand::HeatK { a, b, k, .. } => solver.set_heat_k(a, b, *k),
            FiddleCommand::AirFraction {
                from, to, fraction, ..
            } => solver.set_air_fraction(from, to, *fraction),
        }
    }

    /// Applies this command to the right machine of a cluster solver.
    ///
    /// Pinning a machine's *inlet* routes through
    /// [`ClusterSolver::force_inlet`] so the inter-machine graph stops
    /// feeding it; anything else is forwarded to the machine solver.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownMachine`] for machines not in the cluster,
    /// plus whatever the underlying solver operation returns.
    pub fn apply_to_cluster(&self, cluster: &mut ClusterSolver) -> Result<(), Error> {
        match self {
            FiddleCommand::Temperature {
                machine,
                node,
                celsius,
            } => {
                let is_inlet = {
                    let m = cluster.machine(machine)?;
                    m.is_inlet(node)
                };
                if is_inlet {
                    cluster.force_inlet(machine, Celsius(*celsius))
                } else {
                    cluster
                        .machine_mut(machine)?
                        .force_temperature(node, Celsius(*celsius))
                }
            }
            FiddleCommand::Release { machine, node } => {
                let is_inlet = {
                    let m = cluster.machine(machine)?;
                    m.is_inlet(node)
                };
                if is_inlet {
                    cluster.release_inlet(machine)?;
                }
                cluster.machine_mut(machine)?.release_temperature(node)
            }
            other => {
                let machine = other.machine().to_string();
                other.apply(cluster.machine_mut(&machine)?)
            }
        }
    }
}

impl fmt::Display for FiddleCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FiddleCommand::Temperature {
                machine,
                node,
                celsius,
            } => {
                write!(f, "fiddle {machine} temperature {node} {celsius}")
            }
            FiddleCommand::Release { machine, node } => {
                write!(f, "fiddle {machine} release {node}")
            }
            FiddleCommand::FanSpeed { machine, cfm } => {
                write!(f, "fiddle {machine} fanspeed {cfm}")
            }
            FiddleCommand::Power {
                machine,
                component,
                base_w,
                max_w,
            } => {
                write!(f, "fiddle {machine} power {component} {base_w} {max_w}")
            }
            FiddleCommand::HeatK { machine, a, b, k } => {
                write!(f, "fiddle {machine} k {a} {b} {k}")
            }
            FiddleCommand::AirFraction {
                machine,
                from,
                to,
                fraction,
            } => {
                write!(f, "fiddle {machine} fraction {from} {to} {fraction}")
            }
        }
    }
}

/// A timestamped fiddle command inside a script.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FiddleEvent {
    /// Emulated time at which the command fires, seconds from script start.
    pub at: Seconds,
    /// The command.
    pub command: FiddleCommand,
}

/// A parsed fiddle script: a time-ordered list of commands.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FiddleScript {
    events: Vec<FiddleEvent>,
}

impl FiddleScript {
    /// Creates an empty script.
    pub fn new() -> Self {
        FiddleScript::default()
    }

    /// Adds a command firing `at` seconds into the run. Events may be
    /// added out of order; they are kept sorted by time.
    pub fn at(&mut self, seconds: f64, command: FiddleCommand) -> &mut Self {
        self.events.push(FiddleEvent {
            at: Seconds(seconds),
            command,
        });
        self.events.sort_by(|a, b| {
            a.at.0
                .partial_cmp(&b.at.0)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        self
    }

    /// The timestamped events, sorted by firing time.
    pub fn events(&self) -> &[FiddleEvent] {
        &self.events
    }

    /// Parses the paper's script format (Figure 4).
    ///
    /// Supported statements, one per line:
    ///
    /// - `sleep <seconds>` — advance the script clock,
    /// - `fiddle <machine> temperature <node> <°C>`,
    /// - `fiddle <machine> release <node>`,
    /// - `fiddle <machine> fanspeed <cfm>`,
    /// - `fiddle <machine> power <component> <base W> <max W>`,
    /// - `fiddle <machine> k <a> <b> <W/K>`,
    /// - `fiddle <machine> fraction <from> <to> <fraction>`,
    /// - blank lines and `#` comments (including the `#!/bin/bash`
    ///   shebang) are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`Error::FiddleParse`] with the 1-based line number of the
    /// first malformed statement.
    pub fn parse(text: &str) -> Result<Self, Error> {
        let mut script = FiddleScript::new();
        let mut clock = 0.0_f64;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = lineno + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let tokens: Vec<&str> = line.split_whitespace().collect();
            let err = |reason: String| Error::FiddleParse {
                line: lineno,
                reason,
            };
            match tokens[0] {
                "sleep" => {
                    if tokens.len() != 2 {
                        return Err(err("usage: sleep <seconds>".to_string()));
                    }
                    let secs = parse_f64(tokens[1]).map_err(&err)?;
                    if secs < 0.0 {
                        return Err(err(format!("cannot sleep a negative duration ({secs})")));
                    }
                    clock += secs;
                }
                "fiddle" => {
                    if tokens.len() < 3 {
                        return Err(err("usage: fiddle <machine> <verb> ...".to_string()));
                    }
                    let machine = tokens[1].to_string();
                    let command = match tokens[2] {
                        "temperature" => {
                            let [node, val] =
                                expect_args(&tokens[3..], lineno, "temperature <node> <celsius>")?;
                            FiddleCommand::Temperature {
                                machine,
                                node: node.to_string(),
                                celsius: parse_f64(val).map_err(&err)?,
                            }
                        }
                        "release" => {
                            let [node] = expect_args(&tokens[3..], lineno, "release <node>")?;
                            FiddleCommand::Release {
                                machine,
                                node: node.to_string(),
                            }
                        }
                        "fanspeed" => {
                            let [val] = expect_args(&tokens[3..], lineno, "fanspeed <cfm>")?;
                            FiddleCommand::FanSpeed {
                                machine,
                                cfm: parse_f64(val).map_err(&err)?,
                            }
                        }
                        "power" => {
                            let [comp, base, max] = expect_args(
                                &tokens[3..],
                                lineno,
                                "power <component> <base> <max>",
                            )?;
                            FiddleCommand::Power {
                                machine,
                                component: comp.to_string(),
                                base_w: parse_f64(base).map_err(&err)?,
                                max_w: parse_f64(max).map_err(&err)?,
                            }
                        }
                        "k" => {
                            let [a, b, k] = expect_args(&tokens[3..], lineno, "k <a> <b> <value>")?;
                            FiddleCommand::HeatK {
                                machine,
                                a: a.to_string(),
                                b: b.to_string(),
                                k: parse_f64(k).map_err(&err)?,
                            }
                        }
                        "fraction" => {
                            let [from, to, frac] =
                                expect_args(&tokens[3..], lineno, "fraction <from> <to> <value>")?;
                            FiddleCommand::AirFraction {
                                machine,
                                from: from.to_string(),
                                to: to.to_string(),
                                fraction: parse_f64(frac).map_err(&err)?,
                            }
                        }
                        verb => return Err(err(format!("unknown fiddle verb `{verb}`"))),
                    };
                    script.events.push(FiddleEvent {
                        at: Seconds(clock),
                        command,
                    });
                }
                word => return Err(err(format!("unknown statement `{word}`"))),
            }
        }
        Ok(script)
    }

    /// Creates a runner that replays this script against a solver.
    pub fn runner(&self) -> ScriptRunner {
        ScriptRunner {
            events: self.events.clone(),
            next: 0,
        }
    }
}

fn parse_f64(s: &str) -> Result<f64, String> {
    s.parse::<f64>()
        .map_err(|_| format!("`{s}` is not a number"))
}

fn expect_args<'a, const N: usize>(
    args: &[&'a str],
    line: usize,
    usage: &str,
) -> Result<[&'a str; N], Error> {
    if args.len() != N {
        return Err(Error::FiddleParse {
            line,
            reason: format!("usage: fiddle <machine> {usage}"),
        });
    }
    let mut out = [""; N];
    out.copy_from_slice(args);
    Ok(out)
}

/// Replays a [`FiddleScript`] against a solver as emulated time advances.
///
/// Call [`ScriptRunner::due`] once per tick with the current emulated
/// time; it yields every command whose firing time has been reached.
#[derive(Debug, Clone)]
pub struct ScriptRunner {
    events: Vec<FiddleEvent>,
    next: usize,
}

impl ScriptRunner {
    /// Commands that fire at or before `now`, in order. Each command is
    /// yielded exactly once across calls.
    pub fn due(&mut self, now: Seconds) -> Vec<FiddleCommand> {
        let mut out = Vec::new();
        while self.next < self.events.len() && self.events[self.next].at.0 <= now.0 {
            out.push(self.events[self.next].command.clone());
            self.next += 1;
        }
        out
    }

    /// Whether every event has fired.
    pub fn is_finished(&self) -> bool {
        self.next >= self.events.len()
    }

    /// Applies all due commands to a cluster solver, stopping at the first
    /// error.
    ///
    /// # Errors
    ///
    /// Propagates the first failing command's error; remaining due
    /// commands are *not* retried.
    pub fn apply_due_to_cluster(
        &mut self,
        now: Seconds,
        cluster: &mut ClusterSolver,
    ) -> Result<(), Error> {
        for cmd in self.due(now) {
            cmd.apply_to_cluster(cluster)?;
        }
        Ok(())
    }

    /// Applies all due commands to a single-machine solver, stopping at the
    /// first error.
    ///
    /// # Errors
    ///
    /// Propagates the first failing command's error.
    pub fn apply_due_to_solver(&mut self, now: Seconds, solver: &mut Solver) -> Result<(), Error> {
        for cmd in self.due(now) {
            cmd.apply(solver)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::solver::SolverConfig;

    const FIGURE_4: &str = "#!/bin/bash\n\
                            sleep 100\n\
                            fiddle machine1 temperature inlet 30\n\
                            sleep 200\n\
                            fiddle machine1 temperature inlet 21.6\n";

    #[test]
    fn parses_the_figure_4_script() {
        let script = FiddleScript::parse(FIGURE_4).unwrap();
        assert_eq!(script.events().len(), 2);
        assert_eq!(script.events()[0].at, Seconds(100.0));
        assert_eq!(
            script.events()[0].command,
            FiddleCommand::Temperature {
                machine: "machine1".into(),
                node: "inlet".into(),
                celsius: 30.0
            }
        );
        assert_eq!(script.events()[1].at, Seconds(300.0));
    }

    #[test]
    fn parses_every_verb() {
        let text = "fiddle m1 temperature cpu 55\n\
                    fiddle m1 release cpu\n\
                    fiddle m1 fanspeed 19.3\n\
                    fiddle m1 power cpu 7 31\n\
                    fiddle m1 k cpu cpu_air 0.9\n\
                    fiddle m1 fraction inlet disk_air 0.3\n";
        let script = FiddleScript::parse(text).unwrap();
        assert_eq!(script.events().len(), 6);
        // All fire at t=0 since there is no sleep.
        assert!(script.events().iter().all(|e| e.at == Seconds(0.0)));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = FiddleScript::parse("sleep 10\nfiddle m1 blowup 3\n").unwrap_err();
        match err {
            Error::FiddleParse { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("blowup"));
            }
            other => panic!("unexpected error {other}"),
        }
        assert!(FiddleScript::parse("sleep -5").is_err());
        assert!(FiddleScript::parse("sleep ten").is_err());
        assert!(FiddleScript::parse("jump 10").is_err());
        assert!(FiddleScript::parse("fiddle m1 temperature inlet").is_err());
        assert!(FiddleScript::parse("fiddle m1 temperature inlet warm").is_err());
        assert!(FiddleScript::parse("fiddle m1").is_err());
    }

    #[test]
    fn command_display_round_trips_through_parse() {
        let commands = vec![
            FiddleCommand::Temperature {
                machine: "m1".into(),
                node: "inlet".into(),
                celsius: 30.0,
            },
            FiddleCommand::Release {
                machine: "m1".into(),
                node: "inlet".into(),
            },
            FiddleCommand::FanSpeed {
                machine: "m1".into(),
                cfm: 19.3,
            },
            FiddleCommand::Power {
                machine: "m1".into(),
                component: "cpu".into(),
                base_w: 7.0,
                max_w: 31.0,
            },
            FiddleCommand::HeatK {
                machine: "m1".into(),
                a: "cpu".into(),
                b: "cpu_air".into(),
                k: 0.9,
            },
            FiddleCommand::AirFraction {
                machine: "m1".into(),
                from: "inlet".into(),
                to: "disk_air".into(),
                fraction: 0.3,
            },
        ];
        for cmd in commands {
            let text = cmd.to_string();
            let script = FiddleScript::parse(&text).unwrap();
            assert_eq!(
                script.events()[0].command,
                cmd,
                "round trip failed for `{text}`"
            );
        }
    }

    #[test]
    fn runner_fires_events_once_and_in_order() {
        let script = FiddleScript::parse(FIGURE_4).unwrap();
        let mut runner = script.runner();
        assert!(runner.due(Seconds(50.0)).is_empty());
        let at_100 = runner.due(Seconds(100.0));
        assert_eq!(at_100.len(), 1);
        assert!(
            runner.due(Seconds(100.0)).is_empty(),
            "events must fire once"
        );
        assert!(!runner.is_finished());
        let late = runner.due(Seconds(1000.0));
        assert_eq!(late.len(), 1);
        assert!(runner.is_finished());
    }

    #[test]
    fn figure_4_script_drives_a_real_solver() {
        let model = presets::validation_machine_named("machine1");
        let mut solver = Solver::new(&model, SolverConfig::default()).unwrap();
        let script = FiddleScript::parse(FIGURE_4).unwrap();
        let mut runner = script.runner();
        let mut inlet_at_150 = None;
        let mut inlet_at_400 = None;
        for t in 0..500 {
            runner
                .apply_due_to_solver(Seconds(t as f64), &mut solver)
                .unwrap();
            solver.step();
            if t == 150 {
                inlet_at_150 = Some(solver.temperature("inlet").unwrap());
            }
            if t == 400 {
                inlet_at_400 = Some(solver.temperature("inlet").unwrap());
            }
        }
        assert_eq!(inlet_at_150.unwrap(), Celsius(30.0));
        assert_eq!(inlet_at_400.unwrap(), Celsius(21.6));
    }

    #[test]
    fn apply_rejects_wrong_machine() {
        let model = presets::validation_machine_named("machine1");
        let mut solver = Solver::new(&model, SolverConfig::default()).unwrap();
        let cmd = FiddleCommand::FanSpeed {
            machine: "other".into(),
            cfm: 10.0,
        };
        assert!(matches!(
            cmd.apply(&mut solver),
            Err(Error::UnknownMachine { .. })
        ));
    }

    #[test]
    fn cluster_inlet_force_and_release() {
        let cluster = presets::validation_cluster(2);
        let mut cs = crate::solver::ClusterSolver::new(&cluster, SolverConfig::default()).unwrap();
        let force = FiddleCommand::Temperature {
            machine: "machine1".into(),
            node: "inlet".into(),
            celsius: 38.6,
        };
        force.apply_to_cluster(&mut cs).unwrap();
        cs.step_for(3);
        assert_eq!(
            cs.machine("machine1").unwrap().inlet_temperature(),
            Celsius(38.6)
        );
        let release = FiddleCommand::Release {
            machine: "machine1".into(),
            node: "inlet".into(),
        };
        release.apply_to_cluster(&mut cs).unwrap();
        cs.step_for(3);
        let t = cs.machine("machine1").unwrap().inlet_temperature();
        assert!((t.0 - 21.6).abs() < 0.5, "inlet stuck at {t}");
    }

    #[test]
    fn builder_api_keeps_events_sorted() {
        let mut script = FiddleScript::new();
        script.at(
            200.0,
            FiddleCommand::FanSpeed {
                machine: "m".into(),
                cfm: 10.0,
            },
        );
        script.at(
            100.0,
            FiddleCommand::FanSpeed {
                machine: "m".into(),
                cfm: 20.0,
            },
        );
        assert_eq!(script.events()[0].at, Seconds(100.0));
        assert_eq!(script.events()[1].at, Seconds(200.0));
    }
}
