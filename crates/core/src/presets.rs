//! Ready-made models using the constants of the paper's Table 1.
//!
//! The validation server is the Rutgers testbed machine: a single Pentium
//! III CPU (weighed with its heat sink), 512 MB of RAM, and a 15k-rpm SCSI
//! disk modelled as platters inside a shell, plus power supply and
//! motherboard. The graphs are exactly Figure 1(a) (heat flow) and
//! Figure 1(b) (intra-machine air flow); the constants — masses, specific
//! heat capacities, min/max powers, heat-transfer coefficients, air
//! fractions, inlet temperature and fan speed — are the values of Table 1.

use crate::model::{ClusterEndpoint, ClusterModel, MachineModel};

/// Node names used by the Table 1 models, so callers don't scatter string
/// literals.
pub mod nodes {
    /// Rotating platters inside the disk (heat source).
    pub const DISK_PLATTERS: &str = "disk_platters";
    /// Disk base + cover around the platters.
    pub const DISK_SHELL: &str = "disk_shell";
    /// CPU including its heat sink.
    pub const CPU: &str = "cpu";
    /// Power supply unit (constant 40 W draw).
    pub const POWER_SUPPLY: &str = "power_supply";
    /// Motherboard without removable components (constant 4 W draw).
    pub const MOTHERBOARD: &str = "motherboard";
    /// Machine inlet air (boundary).
    pub const INLET: &str = "inlet";
    /// Air flowing over the disk.
    pub const DISK_AIR: &str = "disk_air";
    /// Air just downstream of the disk.
    pub const DISK_AIR_DOWN: &str = "disk_air_down";
    /// Air flowing over the power supply.
    pub const PS_AIR: &str = "ps_air";
    /// Air just downstream of the power supply.
    pub const PS_AIR_DOWN: &str = "ps_air_down";
    /// Void-space air in the middle of the case.
    pub const VOID_AIR: &str = "void_air";
    /// Air flowing over the CPU heat sink.
    pub const CPU_AIR: &str = "cpu_air";
    /// Air just downstream of the CPU.
    pub const CPU_AIR_DOWN: &str = "cpu_air_down";
    /// Machine exhaust air (terminal).
    pub const EXHAUST: &str = "exhaust";
}

/// Table 1 inlet temperature, °C.
pub const INLET_TEMPERATURE_C: f64 = 21.6;
/// Table 1 fan speed, ft³/min.
pub const FAN_CFM: f64 = 38.6;

/// Builds the Table 1 validation server under the given machine name.
pub fn validation_machine_named(name: &str) -> MachineModel {
    machine_with_cpu_k(name, 0.75)
}

/// Builds the Freon-study server: Table 1 constants except a higher
/// CPU heat-transfer coefficient (1.0 W/K instead of 0.75).
///
/// The paper's §5 cluster uses thresholds `T_h^CPU = 67 °C`,
/// `T_l^CPU = 64 °C` and describes them as "the proper values for our
/// components" — i.e. a machine whose CPU sits *below* 67 °C at full load
/// under normal cooling, so that only a genuine emergency crosses the
/// threshold. With the validation server's k = 0.75 the die equilibrates
/// near 78 °C at 100% utilization, which would red-line even without an
/// emergency; a k of 1.0 (a better heat sink / airflow over the CPU)
/// lands full-load steady state at ≈ 64 °C, reproducing the paper's
/// operating envelope. See DESIGN.md.
pub fn freon_machine_named(name: &str) -> MachineModel {
    machine_with_cpu_k(name, 1.0)
}

/// The Freon-study server, named `"server"`.
pub fn freon_machine() -> MachineModel {
    freon_machine_named("server")
}

/// The §5 Freon cluster: `n` [`freon_machine_named`] servers wired like
/// [`validation_cluster`].
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn freon_cluster(n: usize) -> ClusterModel {
    build_cluster(n, freon_machine_named)
}

fn machine_with_cpu_k(name: &str, cpu_k: f64) -> MachineModel {
    let mut b = MachineModel::builder(name);

    // --- Components: masses, specific heats, (min, max) powers -----------
    b.component(nodes::DISK_PLATTERS)
        .mass_kg(0.336)
        .specific_heat(896.0)
        .power_range(9.0, 14.0);
    b.component(nodes::DISK_SHELL)
        .mass_kg(0.505)
        .specific_heat(896.0)
        .constant_power(0.0);
    b.component(nodes::CPU)
        .mass_kg(0.151)
        .specific_heat(896.0)
        .power_range(7.0, 31.0);
    b.component(nodes::POWER_SUPPLY)
        .mass_kg(1.643)
        .specific_heat(896.0)
        .constant_power(40.0);
    b.component(nodes::MOTHERBOARD)
        .mass_kg(0.718)
        .specific_heat(1245.0)
        .constant_power(4.0);

    // --- Air regions (Figure 1b) -----------------------------------------
    b.inlet(nodes::INLET);
    b.air(nodes::DISK_AIR);
    b.air(nodes::DISK_AIR_DOWN);
    b.air(nodes::PS_AIR);
    b.air(nodes::PS_AIR_DOWN);
    // The void space is most of the case volume; give it a larger
    // effective mass than the per-component channels.
    b.air_with_mass(nodes::VOID_AIR, 0.02, crate::model::AirKind::Internal);
    b.air(nodes::CPU_AIR);
    b.air(nodes::CPU_AIR_DOWN);
    b.exhaust(nodes::EXHAUST);

    // --- Heat-flow edges (Figure 1a, Table 1 k values) -------------------
    let heat_edges = [
        (nodes::DISK_PLATTERS, nodes::DISK_SHELL, 2.0),
        (nodes::DISK_SHELL, nodes::DISK_AIR, 1.9),
        (nodes::CPU, nodes::CPU_AIR, cpu_k),
        (nodes::POWER_SUPPLY, nodes::PS_AIR, 4.0),
        (nodes::MOTHERBOARD, nodes::VOID_AIR, 10.0),
        (nodes::MOTHERBOARD, nodes::CPU, 0.1),
    ];
    for (a, bn, k) in heat_edges {
        b.heat_edge(a, bn, k).expect("table 1 heat edge");
    }

    // --- Air-flow edges (Figure 1b, Table 1 fractions) -------------------
    let air_edges = [
        (nodes::INLET, nodes::DISK_AIR, 0.4),
        (nodes::INLET, nodes::PS_AIR, 0.5),
        (nodes::INLET, nodes::VOID_AIR, 0.1),
        (nodes::DISK_AIR, nodes::DISK_AIR_DOWN, 1.0),
        (nodes::DISK_AIR_DOWN, nodes::VOID_AIR, 1.0),
        (nodes::PS_AIR, nodes::PS_AIR_DOWN, 1.0),
        (nodes::PS_AIR_DOWN, nodes::VOID_AIR, 0.85),
        (nodes::PS_AIR_DOWN, nodes::CPU_AIR, 0.15),
        (nodes::VOID_AIR, nodes::CPU_AIR, 0.05),
        (nodes::VOID_AIR, nodes::EXHAUST, 0.95),
        (nodes::CPU_AIR, nodes::CPU_AIR_DOWN, 1.0),
        (nodes::CPU_AIR_DOWN, nodes::EXHAUST, 1.0),
    ];
    for (from, to, f) in air_edges {
        b.air_edge(from, to, f).expect("table 1 air edge");
    }

    b.fan_cfm(FAN_CFM).inlet_temperature_c(INLET_TEMPERATURE_C);
    b.build().expect("table 1 model validates")
}

/// The Table 1 validation server, named `"server"`.
pub fn validation_machine() -> MachineModel {
    validation_machine_named("server")
}

/// The Figure 1(c) cluster: `n` Table 1 servers named `machine1..machineN`,
/// an AC supply feeding each inlet an equal `1/n` fraction, and every
/// exhaust feeding a shared `cluster_exhaust` junction — the paper's ideal
/// no-recirculation layout.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn validation_cluster(n: usize) -> ClusterModel {
    build_cluster(n, validation_machine_named)
}

/// A Figure 1c room with *recirculation*: a fraction of the shared hot
/// exhaust is entrained back into every machine's inlet instead of
/// returning to the AC — the paper notes "recirculation and rack layout
/// effects can also be represented using more complex graphs".
///
/// Each machine inlet mixes `1 − recirculation` parts AC supply with
/// `recirculation` parts of the room's hot-aisle junction.
///
/// # Panics
///
/// Panics if `n` is zero or `recirculation` is outside `[0, 0.9]`.
pub fn recirculating_cluster(n: usize, recirculation: f64) -> ClusterModel {
    assert!(n > 0, "a cluster needs at least one machine");
    assert!(
        (0.0..=0.9).contains(&recirculation),
        "recirculation fraction must be in [0, 0.9]"
    );
    let mut b = ClusterModel::builder();
    b.supply("ac", INLET_TEMPERATURE_C);
    b.junction("hot_aisle");
    for i in 0..n {
        let idx = b.machine(validation_machine_named(&format!("machine{}", i + 1)));
        b.edge(
            ClusterEndpoint::Supply("ac".into()),
            ClusterEndpoint::MachineInlet(idx),
            (1.0 - recirculation).max(1e-6),
        );
        if recirculation > 0.0 {
            b.edge(
                ClusterEndpoint::Junction("hot_aisle".into()),
                ClusterEndpoint::MachineInlet(idx),
                recirculation,
            );
        }
        b.edge(
            ClusterEndpoint::MachineExhaust(idx),
            ClusterEndpoint::Junction("hot_aisle".into()),
            1.0,
        );
    }
    b.build().expect("recirculating cluster validates")
}

/// A deliberately heterogeneous room: `replicated` identical Table 1
/// servers (named `machine1..`) plus `unique` structural variants (named
/// `variant1..`, each with a different CPU heat-transfer coefficient, so
/// each has its own structural fingerprint). All are wired to one AC
/// supply and one shared exhaust junction like [`validation_cluster`].
///
/// This is the shape that exercises the cluster solver's batched path
/// next to its per-machine fallback: the replicas form one batch group,
/// the variants step individually.
///
/// # Panics
///
/// Panics if `replicated + unique` is zero.
pub fn mixed_cluster(replicated: usize, unique: usize) -> ClusterModel {
    let n = replicated + unique;
    assert!(n > 0, "a cluster needs at least one machine");
    let mut b = ClusterModel::builder();
    b.supply("ac", INLET_TEMPERATURE_C);
    b.junction("cluster_exhaust");
    let fraction = 1.0 / n as f64;
    let wire = |b: &mut crate::model::ClusterBuilder, m: MachineModel| {
        let idx = b.machine(m);
        b.edge(
            ClusterEndpoint::Supply("ac".into()),
            ClusterEndpoint::MachineInlet(idx),
            fraction,
        );
        b.edge(
            ClusterEndpoint::MachineExhaust(idx),
            ClusterEndpoint::Junction("cluster_exhaust".into()),
            1.0,
        );
    };
    for i in 0..replicated {
        wire(
            &mut b,
            validation_machine_named(&format!("machine{}", i + 1)),
        );
    }
    for i in 0..unique {
        // A per-variant CPU k gives every variant a distinct fingerprint.
        let k = 1.0 + 0.05 * (i + 1) as f64;
        wire(&mut b, machine_with_cpu_k(&format!("variant{}", i + 1), k));
    }
    b.build().expect("mixed cluster validates")
}

fn build_cluster(n: usize, machine: fn(&str) -> MachineModel) -> ClusterModel {
    assert!(n > 0, "a cluster needs at least one machine");
    let mut b = ClusterModel::builder();
    b.supply("ac", INLET_TEMPERATURE_C);
    b.junction("cluster_exhaust");
    let fraction = 1.0 / n as f64;
    for i in 0..n {
        let idx = b.machine(machine(&format!("machine{}", i + 1)));
        b.edge(
            ClusterEndpoint::Supply("ac".into()),
            ClusterEndpoint::MachineInlet(idx),
            fraction,
        );
        b.edge(
            ClusterEndpoint::MachineExhaust(idx),
            ClusterEndpoint::Junction("cluster_exhaust".into()),
            1.0,
        );
    }
    b.build().expect("figure 1c cluster validates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PowerModel;
    use crate::solver::{Solver, SolverConfig};
    use crate::units::Watts;

    #[test]
    fn table_1_constants_are_encoded_exactly() {
        let m = validation_machine();
        let comp = |name: &str| {
            m.node(m.node_id(name).unwrap())
                .as_component()
                .unwrap()
                .clone()
        };

        let platters = comp(nodes::DISK_PLATTERS);
        assert_eq!(platters.mass.0, 0.336);
        assert_eq!(platters.specific_heat.0, 896.0);
        assert_eq!(platters.power, PowerModel::linear(9.0, 14.0));

        let shell = comp(nodes::DISK_SHELL);
        assert_eq!(shell.mass.0, 0.505);
        assert_eq!(shell.specific_heat.0, 896.0);

        let cpu = comp(nodes::CPU);
        assert_eq!(cpu.mass.0, 0.151);
        assert_eq!(cpu.power, PowerModel::linear(7.0, 31.0));

        let psu = comp(nodes::POWER_SUPPLY);
        assert_eq!(psu.mass.0, 1.643);
        assert_eq!(psu.power, PowerModel::Constant(Watts(40.0)));
        assert!(!psu.monitored);

        let mobo = comp(nodes::MOTHERBOARD);
        assert_eq!(mobo.mass.0, 0.718);
        assert_eq!(mobo.specific_heat.0, 1245.0);
        assert_eq!(mobo.power, PowerModel::Constant(Watts(4.0)));

        assert!((m.fan().to_cfm() - 38.6).abs() < 1e-9);
        assert_eq!(m.inlet_temperature().0, 21.6);
        assert_eq!(m.heat_edges().len(), 6);
        assert_eq!(m.air_edges().len(), 12);
    }

    #[test]
    fn table_1_k_values_are_encoded() {
        let m = validation_machine();
        let k_of = |a: &str, b: &str| {
            let ia = m.node_id(a).unwrap();
            let ib = m.node_id(b).unwrap();
            m.heat_edges()
                .iter()
                .find(|e| (e.a == ia && e.b == ib) || (e.a == ib && e.b == ia))
                .map(|e| e.k.0)
                .unwrap()
        };
        assert_eq!(k_of(nodes::DISK_PLATTERS, nodes::DISK_SHELL), 2.0);
        assert_eq!(k_of(nodes::DISK_SHELL, nodes::DISK_AIR), 1.9);
        assert_eq!(k_of(nodes::CPU, nodes::CPU_AIR), 0.75);
        assert_eq!(k_of(nodes::POWER_SUPPLY, nodes::PS_AIR), 4.0);
        assert_eq!(k_of(nodes::MOTHERBOARD, nodes::VOID_AIR), 10.0);
        assert_eq!(k_of(nodes::MOTHERBOARD, nodes::CPU), 0.1);
    }

    #[test]
    fn monitored_components_are_cpu_and_platters() {
        let m = validation_machine();
        let mut monitored = m.monitored_components();
        monitored.sort_unstable();
        assert_eq!(monitored, vec![nodes::CPU, nodes::DISK_PLATTERS]);
    }

    #[test]
    fn validation_machine_reaches_plausible_temperatures() {
        // Sanity: at full CPU+disk load the CPU air should settle in the
        // mid-30s °C (Figures 5/7) and the disk shell near the high 30s
        // (Figures 6/8 show ~35-37 °C peaks).
        let m = validation_machine();
        let mut s = Solver::new(&m, SolverConfig::default()).unwrap();
        s.set_utilization(nodes::CPU, 1.0).unwrap();
        s.set_utilization(nodes::DISK_PLATTERS, 1.0).unwrap();
        let (_, converged) = s.run_to_steady_state(1e-7, 100_000);
        assert!(converged);
        let cpu_air = s.temperature(nodes::CPU_AIR).unwrap().0;
        assert!(
            (28.0..45.0).contains(&cpu_air),
            "cpu air settled at {cpu_air}"
        );
        let disk = s.temperature(nodes::DISK_SHELL).unwrap().0;
        assert!((26.0..45.0).contains(&disk), "disk shell settled at {disk}");
        // The CPU die runs much hotter than its air.
        let cpu = s.temperature(nodes::CPU).unwrap().0;
        assert!(cpu > cpu_air + 20.0, "cpu {cpu} vs air {cpu_air}");
    }

    #[test]
    fn cluster_preset_shapes() {
        let c = validation_cluster(4);
        assert_eq!(c.machines().len(), 4);
        assert_eq!(c.supplies().len(), 1);
        assert_eq!(c.junctions().len(), 1);
        assert_eq!(c.edges().len(), 8);
        assert_eq!(c.machines()[0].name(), "machine1");
        assert_eq!(c.machines()[3].name(), "machine4");
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn cluster_preset_rejects_zero() {
        let _ = validation_cluster(0);
    }

    #[test]
    fn recirculation_raises_inlet_and_component_temperatures() {
        use crate::solver::ClusterSolver;
        let run = |recirc: f64| {
            let cluster = recirculating_cluster(2, recirc);
            let mut s = ClusterSolver::new(&cluster, SolverConfig::default()).unwrap();
            for m in ["machine1", "machine2"] {
                s.set_utilization(m, nodes::CPU, 1.0).unwrap();
                s.set_utilization(m, nodes::DISK_PLATTERS, 0.5).unwrap();
            }
            s.step_for(4000);
            (
                s.machine("machine1").unwrap().inlet_temperature().0,
                s.temperature("machine1", nodes::CPU).unwrap().0,
            )
        };
        let (inlet_sealed, cpu_sealed) = run(0.0);
        let (inlet_leaky, cpu_leaky) = run(0.3);
        assert!(
            (inlet_sealed - 21.6).abs() < 0.2,
            "sealed inlet {inlet_sealed}"
        );
        assert!(
            inlet_leaky > inlet_sealed + 0.5,
            "recirculation invisible: {inlet_leaky}"
        );
        assert!(
            cpu_leaky > cpu_sealed + 0.5,
            "cpu {cpu_sealed} -> {cpu_leaky}"
        );
    }

    #[test]
    #[should_panic(expected = "recirculation fraction")]
    fn recirculation_fraction_is_bounded() {
        let _ = recirculating_cluster(2, 0.95);
    }

    #[test]
    fn freon_machine_runs_cooler_at_full_load() {
        // The Freon-study server must sit below T_h = 67 °C at 100% CPU
        // under normal cooling, so that only emergencies cross it.
        let m = freon_machine();
        let mut s = Solver::new(&m, SolverConfig::default()).unwrap();
        s.set_utilization(nodes::CPU, 1.0).unwrap();
        s.set_utilization(nodes::DISK_PLATTERS, 1.0).unwrap();
        s.run_to_steady_state(1e-7, 100_000);
        let cpu = s.temperature(nodes::CPU).unwrap().0;
        assert!(cpu < 67.0, "freon machine reaches {cpu} at full load");
        assert!(cpu > 55.0, "freon machine suspiciously cool: {cpu}");

        // The validation machine is hotter (k = 0.75).
        let mut v = Solver::new(&validation_machine(), SolverConfig::default()).unwrap();
        v.set_utilization(nodes::CPU, 1.0).unwrap();
        v.set_utilization(nodes::DISK_PLATTERS, 1.0).unwrap();
        v.run_to_steady_state(1e-7, 100_000);
        assert!(v.temperature(nodes::CPU).unwrap().0 > cpu + 5.0);
    }

    #[test]
    fn freon_cluster_uses_freon_machines() {
        let c = freon_cluster(4);
        assert_eq!(c.machines().len(), 4);
        let m = &c.machines()[0];
        let icpu = m.node_id(nodes::CPU).unwrap();
        let k = m
            .heat_edges()
            .iter()
            .find(|e| (e.a == icpu || e.b == icpu) && e.k.0 > 0.5)
            .map(|e| e.k.0)
            .unwrap();
        assert_eq!(k, 1.0);
    }
}
