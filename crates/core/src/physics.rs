//! The governing equations of the Mercury thermal model (paper §2.1).
//!
//! Mercury's key insight is that software-level thermal management research
//! does not need wall-roughness-accurate CFD: a handful of coarse equations
//! suffice. This module implements exactly those equations as pure, easily
//! testable functions:
//!
//! 1. **Conservation of energy** — `Q_gained = Q_transfer + Q_component`
//!    (realized by the solver summing the two terms below per node).
//! 2. **Newton's law of cooling** — [`heat_transfer`]:
//!    `Q = k · (T₁ − T₂) · Δt`.
//! 3. **Energy equivalent of work** — [`PowerModel::power`] +
//!    [`heat_generated`]: `Q = P(utilization) · Δt` with the default linear
//!    form `P(u) = P_base + u · (P_max − P_base)`.
//! 4. **Heat capacity** — [`temperature_delta`]: `ΔT = ΔQ / (m · c)`.
//!
//! Air mixing (the "perfect mixing" weighted average of §2.2) is
//! implemented by [`mix_temperatures`].

use crate::units::{
    Celsius, Joules, JoulesPerKelvin, Kelvin, KilogramsPerSecond, Seconds, Utilization, Watts,
    WattsPerKelvin,
};
use serde::{Deserialize, Serialize};

/// How a component converts utilization into dissipated power.
///
/// The paper's default is the linear form (Equation 4); §2.3 notes that it
/// "can be easily replaced by a more sophisticated one for components that
/// do not exhibit a linear relationship", which [`PowerModel::Table`]
/// provides. [`PowerModel::Constant`] models always-on components such as
/// the power supply (40 W) and the motherboard (4 W) in Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PowerModel {
    /// `P(u) = base + u · (max − base)` — Equation 4 of the paper.
    Linear {
        /// Idle power consumption, `P_base`.
        base: Watts,
        /// Fully-utilized power consumption, `P_max`.
        max: Watts,
    },
    /// Piecewise-linear interpolation over `(utilization, power)` points.
    ///
    /// Points must be sorted by utilization; queries outside the table are
    /// clamped to the first/last point.
    Table(Vec<(Utilization, Watts)>),
    /// A fixed draw regardless of utilization.
    Constant(Watts),
}

impl PowerModel {
    /// Creates the default linear model from idle and peak Watts.
    pub fn linear(base: f64, max: f64) -> Self {
        PowerModel::Linear {
            base: Watts(base),
            max: Watts(max),
        }
    }

    /// The power consumed at a given utilization.
    pub fn power(&self, utilization: Utilization) -> Watts {
        let u = utilization.fraction();
        match self {
            PowerModel::Linear { base, max } => Watts(base.0 + u * (max.0 - base.0)),
            PowerModel::Constant(w) => *w,
            PowerModel::Table(points) => interpolate_table(points, u),
        }
    }

    /// The idle (minimum-utilization) power of this model.
    pub fn base(&self) -> Watts {
        self.power(Utilization::IDLE)
    }

    /// The peak (full-utilization) power of this model.
    pub fn max(&self) -> Watts {
        self.power(Utilization::FULL)
    }

    /// Validates the model: powers must be finite and non-negative and
    /// table points sorted.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            PowerModel::Linear { base, max } => {
                if !base.is_finite() || !max.is_finite() || base.0 < 0.0 || max.0 < 0.0 {
                    return Err(format!(
                        "linear power range ({base}, {max}) must be finite and non-negative"
                    ));
                }
                if max.0 < base.0 {
                    return Err(format!("peak power {max} is below idle power {base}"));
                }
                Ok(())
            }
            PowerModel::Constant(w) => {
                if !w.is_finite() || w.0 < 0.0 {
                    return Err(format!(
                        "constant power {w} must be finite and non-negative"
                    ));
                }
                Ok(())
            }
            PowerModel::Table(points) => {
                if points.is_empty() {
                    return Err("power table is empty".to_string());
                }
                for window in points.windows(2) {
                    if window[1].0 < window[0].0 {
                        return Err("power table points are not sorted by utilization".to_string());
                    }
                }
                if points.iter().any(|(_, w)| !w.is_finite() || w.0 < 0.0) {
                    return Err("power table contains a negative or non-finite power".to_string());
                }
                Ok(())
            }
        }
    }
}

fn interpolate_table(points: &[(Utilization, Watts)], u: f64) -> Watts {
    debug_assert!(!points.is_empty());
    if u <= points[0].0.fraction() {
        return points[0].1;
    }
    if let Some(last) = points.last() {
        if u >= last.0.fraction() {
            return last.1;
        }
    }
    for window in points.windows(2) {
        let (u0, p0) = (window[0].0.fraction(), window[0].1 .0);
        let (u1, p1) = (window[1].0.fraction(), window[1].1 .0);
        if u >= u0 && u <= u1 {
            if (u1 - u0).abs() < f64::EPSILON {
                return Watts(p1);
            }
            let t = (u - u0) / (u1 - u0);
            return Watts(p0 + t * (p1 - p0));
        }
    }
    // Unreachable given the guards above, but stay total.
    points[points.len() - 1].1
}

/// Equation 2: the heat transferred from object 1 to object 2 over `dt`.
///
/// Positive when object 1 is hotter (heat flows 1 → 2).
pub fn heat_transfer(k: WattsPerKelvin, t1: Celsius, t2: Celsius, dt: Seconds) -> Joules {
    (k * (t1 - t2)) * dt
}

/// Equation 3: the heat produced by a component doing work over `dt`.
pub fn heat_generated(model: &PowerModel, utilization: Utilization, dt: Seconds) -> Joules {
    model.power(utilization) * dt
}

/// Equation 5: the temperature change caused by a heat gain/loss.
///
/// # Panics
///
/// Panics in debug builds if `capacity` is non-positive; the model builder
/// rejects such capacities, so release builds treat this as unreachable.
pub fn temperature_delta(q: Joules, capacity: JoulesPerKelvin) -> Kelvin {
    debug_assert!(capacity.0 > 0.0, "heat capacity must be positive");
    q / capacity
}

/// The "perfect mixing" weighted average of incoming air temperatures
/// (§2.2): each incoming stream contributes in proportion to its mass flow.
///
/// Returns `None` when the total incoming flow is zero (a stagnant region —
/// the caller keeps the previous temperature).
pub fn mix_temperatures(streams: &[(KilogramsPerSecond, Celsius)]) -> Option<Celsius> {
    let total: f64 = streams.iter().map(|(m, _)| m.0).sum();
    if total <= 0.0 {
        return None;
    }
    let weighted: f64 = streams.iter().map(|(m, t)| m.0 * t.0).sum();
    Some(Celsius(weighted / total))
}

/// The fraction of an air region's contents replaced by inflow during `dt`,
/// for a region holding `region_mass` kg of air. Capped at 1 (the region
/// cannot be more than fully flushed in one step).
pub fn replacement_fraction(inflow: KilogramsPerSecond, region_mass_kg: f64, dt: Seconds) -> f64 {
    if region_mass_kg <= 0.0 {
        return 1.0;
    }
    ((inflow.0 * dt.0) / region_mass_kg).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_power_matches_equation_4() {
        // The paper's Pentium III CPU: 7 W idle, 31 W peak.
        let cpu = PowerModel::linear(7.0, 31.0);
        assert_eq!(cpu.power(Utilization::IDLE), Watts(7.0));
        assert_eq!(cpu.power(Utilization::FULL), Watts(31.0));
        let half = cpu.power(Utilization::new(0.5));
        assert!((half.0 - 19.0).abs() < 1e-12);
        assert_eq!(cpu.base(), Watts(7.0));
        assert_eq!(cpu.max(), Watts(31.0));
    }

    #[test]
    fn constant_power_ignores_utilization() {
        let psu = PowerModel::Constant(Watts(40.0));
        assert_eq!(psu.power(Utilization::IDLE), Watts(40.0));
        assert_eq!(psu.power(Utilization::FULL), Watts(40.0));
    }

    #[test]
    fn table_power_interpolates_and_clamps() {
        let table = PowerModel::Table(vec![
            (Utilization::new(0.0), Watts(10.0)),
            (Utilization::new(0.5), Watts(20.0)),
            (Utilization::new(1.0), Watts(40.0)),
        ]);
        assert_eq!(table.power(Utilization::new(0.0)), Watts(10.0));
        assert!((table.power(Utilization::new(0.25)).0 - 15.0).abs() < 1e-12);
        assert!((table.power(Utilization::new(0.75)).0 - 30.0).abs() < 1e-12);
        assert_eq!(table.power(Utilization::new(1.0)), Watts(40.0));
    }

    #[test]
    fn power_model_validation_catches_bad_inputs() {
        assert!(PowerModel::linear(7.0, 31.0).validate().is_ok());
        assert!(PowerModel::linear(31.0, 7.0).validate().is_err());
        assert!(PowerModel::linear(-1.0, 5.0).validate().is_err());
        assert!(PowerModel::Constant(Watts(f64::NAN)).validate().is_err());
        assert!(PowerModel::Table(vec![]).validate().is_err());
        let unsorted = PowerModel::Table(vec![
            (Utilization::new(0.5), Watts(1.0)),
            (Utilization::new(0.1), Watts(2.0)),
        ]);
        assert!(unsorted.validate().is_err());
    }

    #[test]
    fn heat_transfer_sign_follows_temperature_difference() {
        let k = WattsPerKelvin(2.0);
        let q = heat_transfer(k, Celsius(30.0), Celsius(20.0), Seconds(1.0));
        assert_eq!(q, Joules(20.0));
        let q = heat_transfer(k, Celsius(20.0), Celsius(30.0), Seconds(1.0));
        assert_eq!(q, Joules(-20.0));
        let q = heat_transfer(k, Celsius(25.0), Celsius(25.0), Seconds(100.0));
        assert_eq!(q, Joules(0.0));
    }

    #[test]
    fn heat_transfer_scales_linearly_with_time() {
        let k = WattsPerKelvin(0.75);
        let q1 = heat_transfer(k, Celsius(60.0), Celsius(30.0), Seconds(1.0));
        let q10 = heat_transfer(k, Celsius(60.0), Celsius(30.0), Seconds(10.0));
        assert!((q10.0 - 10.0 * q1.0).abs() < 1e-12);
    }

    #[test]
    fn generated_heat_is_power_times_time() {
        let cpu = PowerModel::linear(7.0, 31.0);
        let q = heat_generated(&cpu, Utilization::FULL, Seconds(60.0));
        assert_eq!(q, Joules(31.0 * 60.0));
    }

    #[test]
    fn temperature_delta_matches_equation_5() {
        // CPU + heat sink: 0.151 kg at 896 J/(kg·K) -> 135.296 J/K.
        let cap = JoulesPerKelvin(135.296);
        let dt = temperature_delta(Joules(135.296), cap);
        assert!((dt.0 - 1.0).abs() < 1e-12);
        let dt = temperature_delta(Joules(-270.592), cap);
        assert!((dt.0 + 2.0).abs() < 1e-12);
    }

    #[test]
    fn mixing_is_flow_weighted() {
        let streams = [
            (KilogramsPerSecond(3.0), Celsius(20.0)),
            (KilogramsPerSecond(1.0), Celsius(40.0)),
        ];
        let t = mix_temperatures(&streams).unwrap();
        assert!((t.0 - 25.0).abs() < 1e-12);
    }

    #[test]
    fn mixing_with_no_flow_is_none() {
        assert!(mix_temperatures(&[]).is_none());
        assert!(mix_temperatures(&[(KilogramsPerSecond(0.0), Celsius(50.0))]).is_none());
    }

    #[test]
    fn mixing_single_stream_is_identity() {
        let t = mix_temperatures(&[(KilogramsPerSecond(0.5), Celsius(33.3))]).unwrap();
        assert!((t.0 - 33.3).abs() < 1e-12);
    }

    #[test]
    fn replacement_fraction_caps_at_one() {
        assert_eq!(
            replacement_fraction(KilogramsPerSecond(1.0), 0.1, Seconds(1.0)),
            1.0
        );
        let f = replacement_fraction(KilogramsPerSecond(0.01), 0.1, Seconds(1.0));
        assert!((f - 0.1).abs() < 1e-12);
        assert_eq!(
            replacement_fraction(KilogramsPerSecond(1.0), 0.0, Seconds(1.0)),
            1.0
        );
    }
}
