//! Build attribution for scrape surfaces.
//!
//! One `mercury_build_info` gauge — constant value 1, with the build's
//! identity in its labels — lets a dashboard or a post-incident reader
//! tell exactly which binary produced a scrape or an incident bundle:
//! crate version, git commit (when the build environment provides one),
//! and the SIMD backend the solver selected on this host.

use crate::solver::SimdBackend;
use telemetry::Registry;

/// Crate version baked in at compile time.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

/// Git commit hash, when `MERCURY_GIT_HASH` was set at compile time
/// (CI exports it); `"unknown"` for plain local builds.
pub const GIT_HASH: &str = match option_env!("MERCURY_GIT_HASH") {
    Some(hash) => hash,
    None => "unknown",
};

/// Version, git hash, and runtime-selected SIMD backend as label pairs —
/// the same triple the flight recorder stamps into incident bundles.
#[must_use]
pub fn build_labels() -> [(&'static str, &'static str); 3] {
    [
        ("version", VERSION),
        ("git", GIT_HASH),
        ("simd", SimdBackend::select().name()),
    ]
}

/// Registers the `mercury_build_info` gauge (constant 1) on `registry`.
/// Idempotent: re-registering replaces the handle, never duplicates the
/// family.
pub fn register_build_info(registry: &Registry) {
    let labels = build_labels();
    let gauge = registry.gauge_with_labels(
        "mercury_build_info",
        "Constant 1; labels identify the build (version, git, simd backend)",
        &labels,
    );
    gauge.set(1.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_info_renders_with_identity_labels() {
        let registry = Registry::new();
        register_build_info(&registry);
        register_build_info(&registry); // idempotent
        let text = registry.render_prometheus();
        let lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("mercury_build_info"))
            .collect();
        assert_eq!(lines.len(), 1, "one sample, not duplicates:\n{text}");
        assert!(lines[0].contains(&format!("version=\"{VERSION}\"")));
        assert!(lines[0].contains("git=\""));
        assert!(lines[0].contains("simd=\""));
        assert!(lines[0].trim_end().ends_with('1'));
    }
}
