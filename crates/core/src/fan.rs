//! Variable-speed fan modelling (§7: "we are currently extending our
//! models to consider clock throttling and variable-speed fans").
//!
//! The paper notes these behaviours are "well-defined and essentially
//! depend on temperature, which Mercury emulates accurately" — so a fan
//! controller is just a curve from an observed temperature to a
//! volumetric flow, applied to the solver through the same
//! [`crate::solver::Solver::set_fan_cfm`] lever `fiddle` uses.
//!
//! ```
//! use mercury::fan::FanCurve;
//!
//! // A typical firmware curve: 19.3 cfm floor, ramp between 45 and
//! // 70 °C, 44 cfm ceiling.
//! let curve = FanCurve::ramp(45.0, 19.3, 70.0, 44.0);
//! assert_eq!(curve.cfm_for(30.0), 19.3);
//! assert_eq!(curve.cfm_for(80.0), 44.0);
//! assert!((curve.cfm_for(57.5) - 31.65).abs() < 1e-9);
//! ```

use serde::{Deserialize, Serialize};

/// A monotone temperature → fan-speed curve, interpolated piecewise
/// linearly between control points and clamped at the ends.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FanCurve {
    /// `(°C, cfm)` control points, sorted by temperature.
    points: Vec<(f64, f64)>,
}

impl FanCurve {
    /// Creates a curve from control points.
    ///
    /// # Errors
    ///
    /// Returns a message when fewer than one point is given, points are
    /// not sorted by temperature, or any flow is non-positive.
    pub fn new(points: Vec<(f64, f64)>) -> Result<Self, String> {
        if points.is_empty() {
            return Err("a fan curve needs at least one point".to_string());
        }
        for pair in points.windows(2) {
            if pair[1].0 < pair[0].0 {
                return Err("fan-curve points must be sorted by temperature".to_string());
            }
            if pair[1].1 < pair[0].1 {
                return Err("fan curves must be monotone (hotter -> not slower)".to_string());
            }
        }
        if points
            .iter()
            .any(|(t, cfm)| !t.is_finite() || cfm.is_nan() || *cfm <= 0.0)
        {
            return Err("fan-curve flows must be positive and finite".to_string());
        }
        Ok(FanCurve { points })
    }

    /// The common firmware shape: `low_cfm` below `t_low`, linear ramp
    /// to `high_cfm` at `t_high`, flat above.
    ///
    /// # Panics
    ///
    /// Panics if `t_low >= t_high` or either flow is non-positive — fan
    /// curves are static configuration, not runtime data.
    pub fn ramp(t_low: f64, low_cfm: f64, t_high: f64, high_cfm: f64) -> Self {
        assert!(t_low < t_high, "ramp start must be below its end");
        FanCurve::new(vec![(t_low, low_cfm), (t_high, high_cfm)])
            .expect("a two-point monotone ramp is always valid")
    }

    /// The flow commanded at an observed temperature.
    pub fn cfm_for(&self, temp_c: f64) -> f64 {
        let first = self.points[0];
        if temp_c <= first.0 {
            return first.1;
        }
        let last = self.points[self.points.len() - 1];
        if temp_c >= last.0 {
            return last.1;
        }
        for pair in self.points.windows(2) {
            let (t0, f0) = pair[0];
            let (t1, f1) = pair[1];
            if temp_c >= t0 && temp_c <= t1 {
                if (t1 - t0).abs() < f64::EPSILON {
                    return f1;
                }
                let x = (temp_c - t0) / (t1 - t0);
                return f0 + x * (f1 - f0);
            }
        }
        last.1
    }

    /// The control points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

/// A per-machine fan controller: reads one node, commands the fan, and
/// hysteresis-filters small changes.
///
/// The solver's flow cache already makes re-commanding an *unchanged*
/// speed free (the air-flow tables are keyed on the fan's mass flow and
/// only recompute when it actually moves — watch the
/// `mercury_solver_flow_recomputes_total` metric), so hysteresis is not
/// needed for solver throughput. It still matters for batching: any
/// *applied* fan change diverges the machine from its replicated group
/// (DESIGN.md §3b), so suppressing sub-`min_step_cfm` jitter keeps
/// identical machines stepping together on the batched path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FanController {
    /// The firmware curve.
    pub curve: FanCurve,
    /// The node whose temperature drives the fan (e.g. `"cpu"`).
    pub sensor_node: String,
    /// Minimum cfm change worth applying (default 0.5).
    pub min_step_cfm: f64,
    last_commanded: Option<f64>,
}

impl FanController {
    /// Creates a controller from a curve and a sensor node.
    pub fn new(curve: FanCurve, sensor_node: impl Into<String>) -> Self {
        FanController {
            curve,
            sensor_node: sensor_node.into(),
            min_step_cfm: 0.5,
            last_commanded: None,
        }
    }

    /// Observes the sensor and adjusts the solver's fan if the commanded
    /// flow moved by at least `min_step_cfm`. Returns the new flow if a
    /// change was applied.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::UnknownNode`] when the sensor node is not
    /// in the model.
    pub fn regulate(
        &mut self,
        solver: &mut crate::solver::Solver,
    ) -> Result<Option<f64>, crate::Error> {
        let temp = solver.temperature(&self.sensor_node)?;
        let target = self.curve.cfm_for(temp.0);
        let apply = match self.last_commanded {
            Some(last) => (target - last).abs() >= self.min_step_cfm,
            None => true,
        };
        if apply {
            solver.set_fan_cfm(target)?;
            self.last_commanded = Some(target);
            Ok(Some(target))
        } else {
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{self, nodes};
    use crate::solver::{Solver, SolverConfig};

    #[test]
    fn curve_clamps_and_interpolates() {
        let curve = FanCurve::ramp(45.0, 19.3, 70.0, 44.0);
        assert_eq!(curve.cfm_for(-10.0), 19.3);
        assert_eq!(curve.cfm_for(45.0), 19.3);
        assert_eq!(curve.cfm_for(70.0), 44.0);
        assert_eq!(curve.cfm_for(200.0), 44.0);
        let mid = curve.cfm_for(57.5);
        assert!((mid - (19.3 + 44.0) / 2.0).abs() < 1e-9);
        assert_eq!(curve.points().len(), 2);
    }

    #[test]
    fn multi_point_curves_work() {
        let curve = FanCurve::new(vec![(40.0, 10.0), (50.0, 20.0), (60.0, 40.0)]).unwrap();
        assert!((curve.cfm_for(45.0) - 15.0).abs() < 1e-9);
        assert!((curve.cfm_for(55.0) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn bad_curves_are_rejected() {
        assert!(FanCurve::new(vec![]).is_err());
        assert!(FanCurve::new(vec![(50.0, 20.0), (40.0, 30.0)]).is_err()); // unsorted
        assert!(FanCurve::new(vec![(40.0, 30.0), (50.0, 20.0)]).is_err()); // non-monotone
        assert!(FanCurve::new(vec![(40.0, 0.0)]).is_err()); // zero flow
    }

    #[test]
    #[should_panic(expected = "ramp start")]
    fn inverted_ramp_panics() {
        let _ = FanCurve::ramp(70.0, 10.0, 45.0, 44.0);
    }

    #[test]
    fn controller_speeds_the_fan_up_as_the_cpu_heats() {
        let model = presets::validation_machine();
        let mut solver = Solver::new(&model, SolverConfig::default()).unwrap();
        solver.set_utilization(nodes::CPU, 1.0).unwrap();
        let mut fan = FanController::new(FanCurve::ramp(40.0, 38.6, 75.0, 77.2), nodes::CPU);
        let initial = solver.fan().to_cfm();
        for _ in 0..1200 {
            solver.step();
            fan.regulate(&mut solver).unwrap();
        }
        let final_cfm = solver.fan().to_cfm();
        assert!(
            final_cfm > initial + 5.0,
            "fan never sped up: {initial} -> {final_cfm}"
        );
    }

    #[test]
    fn controller_lowers_peak_temperature() {
        let model = presets::validation_machine();
        let run = |with_fan: bool| {
            let mut solver = Solver::new(&model, SolverConfig::default()).unwrap();
            solver.set_utilization(nodes::CPU, 1.0).unwrap();
            let mut fan = FanController::new(FanCurve::ramp(40.0, 38.6, 70.0, 77.2), nodes::CPU);
            for _ in 0..4000 {
                solver.step();
                if with_fan {
                    fan.regulate(&mut solver).unwrap();
                }
            }
            solver.temperature(nodes::CPU).unwrap().0
        };
        let fixed = run(false);
        let controlled = run(true);
        assert!(
            controlled < fixed - 1.0,
            "fan control useless: {fixed} vs {controlled}"
        );
    }

    #[test]
    fn hysteresis_suppresses_tiny_changes() {
        let model = presets::validation_machine();
        let mut solver = Solver::new(&model, SolverConfig::default()).unwrap();
        let mut fan = FanController::new(FanCurve::ramp(10.0, 20.0, 100.0, 40.0), nodes::CPU);
        // First regulation always applies.
        assert!(fan.regulate(&mut solver).unwrap().is_some());
        // Without meaningful temperature movement, no re-command.
        assert!(fan.regulate(&mut solver).unwrap().is_none());
    }

    #[test]
    fn unchanged_speed_commands_do_not_recompute_flows() {
        let model = presets::validation_machine();
        let mut solver = Solver::new(&model, SolverConfig::default()).unwrap();
        // Flat curve: every regulation commands the same 33 cfm.
        let mut fan = FanController::new(FanCurve::new(vec![(50.0, 33.0)]).unwrap(), nodes::CPU);
        fan.min_step_cfm = 0.0; // defeat hysteresis: re-command every call
        fan.regulate(&mut solver).unwrap();
        solver.step();
        let after_first = solver.metrics().flow_recomputes.get();
        for _ in 0..5 {
            fan.regulate(&mut solver).unwrap();
            solver.step();
        }
        assert_eq!(
            solver.metrics().flow_recomputes.get(),
            after_first,
            "identical fan commands must hit the flow cache"
        );
    }

    #[test]
    fn unknown_sensor_errors() {
        let model = presets::validation_machine();
        let mut solver = Solver::new(&model, SolverConfig::default()).unwrap();
        let mut fan = FanController::new(FanCurve::ramp(40.0, 20.0, 70.0, 40.0), "gpu");
        assert!(fan.regulate(&mut solver).is_err());
    }
}
