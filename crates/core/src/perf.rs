//! Performance-counter energy accounting (§2.3, "Mercury for modern
//! processors").
//!
//! Computing CPU heat from a single high-level utilization number is not
//! adequate for processors whose power draw depends heavily on *what* they
//! execute. For the Pentium 4, the paper's `monitord` instead monitors
//! hardware performance counters and translates each observed performance
//! event into an estimated energy (the event-driven accounting of Bellosa
//! et al.). To avoid modifying Mercury itself, the per-interval energy is
//! converted to an average power and then *linearly mapped back to a
//! "low-level utilization"* in `[0% = P_base, 100% = P_max]`, which is what
//! gets reported to the solver.
//!
//! [`EventEnergyModel`] implements that pipeline:
//!
//! ```
//! use mercury::perf::{CounterSample, EventEnergyModel};
//! use mercury::units::{Seconds, Watts};
//!
//! let model = EventEnergyModel::pentium4();
//! let sample = CounterSample::new(Seconds(1.0))
//!     .with_count("uops_retired", 800_000_000)
//!     .with_count("l2_cache_miss", 2_000_000);
//! let power = model.average_power(&sample);
//! let util = model.low_level_utilization(&sample, Watts(12.0), Watts(55.0));
//! assert!(power.0 > 12.0);
//! assert!(util.fraction() > 0.0);
//! ```

use crate::units::{Joules, Seconds, Utilization, Watts};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A per-interval reading of hardware performance counters.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CounterSample {
    interval: Seconds,
    counts: HashMap<String, u64>,
}

impl CounterSample {
    /// Creates an empty sample covering `interval` seconds.
    pub fn new(interval: Seconds) -> Self {
        CounterSample {
            interval,
            counts: HashMap::new(),
        }
    }

    /// Adds (or accumulates into) one counter's event count.
    pub fn with_count(mut self, event: impl Into<String>, count: u64) -> Self {
        *self.counts.entry(event.into()).or_insert(0) += count;
        self
    }

    /// The sampling interval.
    pub fn interval(&self) -> Seconds {
        self.interval
    }

    /// The count recorded for an event (0 when absent).
    pub fn count(&self, event: &str) -> u64 {
        self.counts.get(event).copied().unwrap_or(0)
    }

    /// Iterates over `(event, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

/// Maps performance-event counts to energy, power, and the "low-level
/// utilization" Mercury's solver consumes.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EventEnergyModel {
    /// Energy attributed to one occurrence of each event, nanojoules.
    event_nanojoules: HashMap<String, f64>,
    /// Power drawn independently of any counted event (clock tree, leakage).
    idle: Watts,
}

impl EventEnergyModel {
    /// Creates an empty model with the given uncounted idle power.
    pub fn new(idle: Watts) -> Self {
        EventEnergyModel {
            event_nanojoules: HashMap::new(),
            idle,
        }
    }

    /// A representative model for the Pentium 4 (Northwood-class) with
    /// per-event energies in the range published by event-driven energy
    /// accounting work: micro-ops around a few nJ, cache misses tens of
    /// nJ, bus transactions most expensive. The exact values are
    /// calibration inputs in practice; these defaults give realistic
    /// magnitudes (≈12 W idle to ≈55-60 W at full tilt).
    pub fn pentium4() -> Self {
        EventEnergyModel::new(Watts(12.0))
            .with_event("uops_retired", 4.8)
            .with_event("l2_cache_miss", 22.0)
            .with_event("bus_transaction", 42.0)
            .with_event("fp_uop", 7.5)
            .with_event("branch_mispredict", 12.0)
    }

    /// Adds (or replaces) an event's per-occurrence energy in nanojoules.
    pub fn with_event(mut self, event: impl Into<String>, nanojoules: f64) -> Self {
        self.event_nanojoules
            .insert(event.into(), nanojoules.max(0.0));
        self
    }

    /// Per-occurrence energy of an event, nanojoules (0 when unknown —
    /// unknown events contribute nothing rather than poisoning the
    /// estimate).
    pub fn event_energy_nj(&self, event: &str) -> f64 {
        self.event_nanojoules.get(event).copied().unwrap_or(0.0)
    }

    /// Total estimated energy of a sample: idle draw over the interval
    /// plus the per-event energies.
    pub fn energy(&self, sample: &CounterSample) -> Joules {
        let event_j: f64 = sample
            .iter()
            .map(|(event, count)| self.event_energy_nj(event) * 1e-9 * count as f64)
            .sum();
        Joules(self.idle.0 * sample.interval().0 + event_j)
    }

    /// Average power over the sample's interval.
    pub fn average_power(&self, sample: &CounterSample) -> Watts {
        let dt = sample.interval().0;
        if dt <= 0.0 {
            return self.idle;
        }
        Watts(self.energy(sample).0 / dt)
    }

    /// The paper's transformation: average power mapped linearly onto
    /// `[0% = base, 100% = max]` and clamped, so that the solver's linear
    /// power model (Equation 4) reproduces the estimated power exactly.
    pub fn low_level_utilization(
        &self,
        sample: &CounterSample,
        base: Watts,
        max: Watts,
    ) -> Utilization {
        let p = self.average_power(sample).0;
        if max.0 <= base.0 {
            return Utilization::IDLE;
        }
        Utilization::new((p - base.0) / (max.0 - base.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physics::PowerModel;

    #[test]
    fn energy_sums_idle_and_events() {
        let model = EventEnergyModel::new(Watts(10.0)).with_event("op", 1.0); // 1 nJ/op
        let sample = CounterSample::new(Seconds(2.0)).with_count("op", 1_000_000_000);
        // idle 10 W * 2 s = 20 J, events 1e9 * 1 nJ = 1 J.
        assert!((model.energy(&sample).0 - 21.0).abs() < 1e-9);
        assert!((model.average_power(&sample).0 - 10.5).abs() < 1e-9);
    }

    #[test]
    fn unknown_events_contribute_nothing() {
        let model = EventEnergyModel::new(Watts(5.0));
        let sample = CounterSample::new(Seconds(1.0)).with_count("mystery", u64::MAX / 2);
        assert!((model.average_power(&sample).0 - 5.0).abs() < 1e-9);
    }

    #[test]
    fn counts_accumulate_per_event() {
        let sample = CounterSample::new(Seconds(1.0))
            .with_count("op", 10)
            .with_count("op", 5);
        assert_eq!(sample.count("op"), 15);
        assert_eq!(sample.count("other"), 0);
        assert_eq!(sample.iter().count(), 1);
    }

    #[test]
    fn zero_interval_degrades_to_idle_power() {
        let model = EventEnergyModel::new(Watts(9.0)).with_event("op", 100.0);
        let sample = CounterSample::new(Seconds(0.0)).with_count("op", 1_000);
        assert_eq!(model.average_power(&sample), Watts(9.0));
    }

    #[test]
    fn low_level_utilization_round_trips_through_equation_4() {
        // The point of the transformation: feeding the derived utilization
        // into the linear power model must reproduce the estimated power.
        let model = EventEnergyModel::pentium4();
        let sample = CounterSample::new(Seconds(1.0))
            .with_count("uops_retired", 2_000_000_000)
            .with_count("l2_cache_miss", 40_000_000)
            .with_count("bus_transaction", 12_000_000);
        let base = Watts(12.0);
        let max = Watts(55.0);
        let estimated = model.average_power(&sample);
        let util = model.low_level_utilization(&sample, base, max);
        let linear = PowerModel::Linear { base, max };
        let reproduced = linear.power(util);
        if estimated.0 <= max.0 {
            assert!(
                (reproduced.0 - estimated.0).abs() < 1e-9,
                "estimated {estimated} vs reproduced {reproduced}"
            );
        } else {
            // Saturates at P_max when the estimate exceeds the range.
            assert_eq!(util, Utilization::FULL);
        }
    }

    #[test]
    fn utilization_clamps_to_range() {
        let model = EventEnergyModel::new(Watts(5.0));
        let idle_sample = CounterSample::new(Seconds(1.0));
        // 5 W estimated, base 12 -> below range -> 0.
        let u = model.low_level_utilization(&idle_sample, Watts(12.0), Watts(55.0));
        assert_eq!(u, Utilization::IDLE);
        // Degenerate base >= max -> 0.
        let u = model.low_level_utilization(&idle_sample, Watts(55.0), Watts(12.0));
        assert_eq!(u, Utilization::IDLE);
    }

    #[test]
    fn pentium4_defaults_have_realistic_magnitudes() {
        let model = EventEnergyModel::pentium4();
        // A busy second: ~2 G uops, heavy memory traffic.
        let busy = CounterSample::new(Seconds(1.0))
            .with_count("uops_retired", 2_500_000_000)
            .with_count("l2_cache_miss", 50_000_000)
            .with_count("bus_transaction", 20_000_000)
            .with_count("fp_uop", 500_000_000);
        let p = model.average_power(&busy).0;
        assert!((25.0..90.0).contains(&p), "busy P4 estimated at {p} W");
        let idle = CounterSample::new(Seconds(1.0));
        assert!((model.average_power(&idle).0 - 12.0).abs() < 1e-9);
    }
}
