//! The Mercury solver: a coarse-grained finite-element analyzer (§2.2).
//!
//! The solver advances a [`crate::model::MachineModel`] (or a whole
//! [`crate::model::ClusterModel`]) in discrete time steps. Each tick does
//! the paper's three graph traversals:
//!
//! 1. **inter-component heat flow** — Newton's law of cooling over the
//!    heat-flow edges plus utilization-driven heat generation,
//! 2. **intra-machine air movement** — flow-weighted mixing along the
//!    air-flow edges in topological order, and
//! 3. **inter-machine air movement** (cluster solver only) — supply /
//!    exhaust / junction mixing that feeds every machine's inlet.
//!
//! ## Numerical stability
//!
//! The paper runs one solver iteration per emulated second. With the
//! constants of Table 1 an explicit Euler step of a full second is
//! *unstable* for the fastest couplings (e.g. the motherboard's k = 10 W/K
//! against a few-gram air region). The solver therefore divides each tick
//! into automatically-chosen sub-steps so that no node can exchange more
//! than [`SolverConfig::stability_limit`] of its "distance to equilibrium"
//! per sub-step. The public interface is unaffected: [`Solver::step`]
//! still advances exactly one tick of [`SolverConfig::dt`] seconds.
//!
//! ## Engine layout
//!
//! The graph arithmetic for traversals 1 and 2 lives in one place — the
//! private `kernel` module — as a CSR-indexed step kernel with
//! precomputed rate constants and reusable scratch buffers; `Solver` and
//! `ClusterSolver` are state holders compiled onto it. The cluster
//! solver's traversal 3 uses the same module's precompiled mixing plan,
//! and its per-tick machine stepping can fan out across threads (see
//! [`ClusterSolver::set_threads`]) because machines within a tick only
//! read the *previous* tick's exhaust temperatures.
//!
//! Structurally identical machines — the common case under the paper's
//! trace replication (§2.3) — are additionally stepped *batched*: the
//! private `batch` module groups them by structural fingerprint and
//! sweeps each group over one shared operator in a structure-of-arrays
//! layout, bit-identical to per-machine stepping (see
//! [`ClusterSolver::set_batching`]). The lane sweeps run explicitly
//! vectorized (the private `simd` module; [`SimdBackend`]) with a
//! runtime-detected instruction set, still bit-identical by default,
//! plus an opt-in bounded-divergence fast-math mode
//! ([`ClusterSolver::set_fast_math`]).
//!
//! Parallel cluster ticks run on a persistent worker pool (the private
//! `pool` module) — workers spawn once and park between ticks — and
//! multi-tick replays ([`ClusterSolver::step_for`]) fuse input-stable
//! spans so the per-tick orchestration (plan checks, gather/scatter,
//! repricing, sampled metrics) is paid once per span; see `DESIGN.md`
//! §"Tick execution".

//!
//! Both solvers meter themselves through always-on [`telemetry`] handles
//! (tick counts, sampled latencies, batch-plan shape); see the `metrics`
//! module and `DESIGN.md` §"Telemetry".

mod aligned;
mod batch;
mod cluster;
mod flows;
mod kernel;
mod machine;
mod metrics;
mod pool;
mod simd;

pub use cluster::{ClusterProbe, ClusterSolver, TickScheduler};
pub use flows::{air_flows, model_air_flows, required_substeps};
pub use machine::{Solver, SolverConfig};
pub use metrics::{ClusterMetrics, SolverMetrics};
pub use simd::SimdBackend;
