//! Batched cluster stepping: structure-sharing for replicated machines.
//!
//! Mercury's trace-replication trick (§2.3) emulates a large machine room
//! by replicating one calibrated server model, so the common cluster is
//! hundreds of machines with *identical* stepping structure. Stepping
//! them through separate [`super::kernel::StepKernel`]s wastes both
//! memory (each kernel holds its own copy of the same CSR topology and
//! operator weights) and cache (every machine switch evicts the previous
//! machine's operator arrays).
//!
//! This module groups machines by [`structural
//! fingerprint`](crate::model::MachineModel::structural_fingerprint) and
//! steps each group as one fused sweep over a contiguous
//! `[nodes × machines]` state matrix:
//!
//! - **Shared operator.** One read-only copy of the assembled sub-step
//!   operator (CSR offsets, sources, weights, `1/(m·c)`) serves every
//!   machine in the group — the topology memory for a 1024-replica room
//!   is that of *one* machine plus state rows.
//! - **SoA layout.** Temperatures and per-node power ΔT are stored
//!   node-major: row `i` holds node `i`'s value for every machine in the
//!   chunk (one f64 *lane* per machine). Applying operator entry
//!   `(src, w)` to node `i` is then a straight sequential walk over two
//!   contiguous rows — `next[i][·] += w · cur[src][·]` — which the
//!   compiler auto-vectorizes.
//! - **Bit-identical trajectories.** Per lane, the accumulation sequence
//!   is exactly the scalar kernel's: `self_w·T_i + ΔT_power`, then one
//!   `+= w_j·T_src(j)` per operator entry in the same order. Lanes never
//!   interact (no horizontal reductions), so batched, per-machine,
//!   serial, and parallel stepping all produce the same bits.
//!
//! Machines whose kernel constants have diverged from their source model
//! (fan-speed, heat-k, or air-fraction fiddles) or that carry
//! force-pinned nodes fall back transparently to the per-machine path;
//! see [`super::machine::Solver::batch_eligible`]. Groups are split into
//! fixed-width chunks of at most [`CHUNK_LANES`] machines so that (a)
//! the working set of one chunk stays cache-resident and (b) parallel
//! cluster ticks can hand whole chunks to worker threads — chunk width
//! never depends on the thread count, so parallelism cannot change
//! results.

use super::aligned::{AlignedVec, MATRIX_ALIGN};
use super::kernel::AssembledOp;
use super::machine::Solver;
use super::simd::{self, SimdBackend, Sweep};

/// Maximum machines (f64 lanes) per batch chunk. 32 lanes keep one
/// chunk's three `[nodes × lanes]` matrices a few KiB — cache-resident —
/// while amortizing the per-node operator walk over a long vectorizable
/// inner loop. Chunk width is a constant of the layout, not a tuning
/// knob the thread count may touch: trajectories must not depend on how
/// chunks are distributed.
pub(crate) const CHUNK_LANES: usize = 32;

/// Below this many same-fingerprint machines, batching is not worth the
/// per-tick gather/scatter: the pair stays on the per-machine path.
const MIN_GROUP: usize = 2;

/// One group's shared, read-only sub-step operator — a deep copy of the
/// representative machine's assembled [`AssembledOp`], plus the group's
/// boundary mask (inlet nodes; eligible machines have no force-pinned
/// nodes, so the mask is structural and identical across the group).
#[derive(Debug)]
pub(crate) struct SharedOp {
    n: usize,
    substeps: usize,
    op_off: Vec<u32>,
    op_src: Vec<u32>,
    op_w: Vec<f64>,
    self_w: Vec<f64>,
    inv_capacity: Vec<f64>,
    /// Refreshed from the representative each tick (cheap: `n` bools).
    fixed: Vec<bool>,
    /// Lane-sweep backend, stamped from the owning [`BatchSet`] so a
    /// pool work item `(op, chunk)` carries everything a tick needs.
    backend: SimdBackend,
    /// Fast-math lane mode (FMA contraction), stamped like `backend`.
    fast_math: bool,
}

impl SharedOp {
    fn from_assembled(op: AssembledOp<'_>, backend: SimdBackend, fast_math: bool) -> Self {
        SharedOp {
            n: op.n,
            substeps: op.substeps,
            op_off: op.op_off.to_vec(),
            op_src: op.op_src.to_vec(),
            op_w: op.op_w.to_vec(),
            self_w: op.self_w.to_vec(),
            inv_capacity: op.inv_capacity.to_vec(),
            fixed: vec![false; op.n],
            backend,
            fast_math,
        }
    }

    /// Exact (bitwise) equality with another machine's assembled
    /// operator. Fingerprint-equal machines compile to identical
    /// operators by construction; this check makes a 64-bit fingerprint
    /// collision harmless instead of silently wrong.
    fn matches(&self, op: &AssembledOp<'_>) -> bool {
        self.n == op.n
            && self.substeps == op.substeps
            && self.op_off == op.op_off
            && self.op_src == op.op_src
            && bits_eq(&self.op_w, op.op_w)
            && bits_eq(&self.self_w, op.self_w)
            && bits_eq(&self.inv_capacity, op.inv_capacity)
    }
}

fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// One chunk of a batch group: up to [`CHUNK_LANES`] machines stepped
/// together over node-major state matrices.
#[derive(Debug)]
pub(crate) struct Chunk {
    /// Cluster machine indices, in cluster order; lane `l` holds
    /// machine `members[l]`.
    members: Vec<usize>,
    /// `[nodes × lanes]` temperature matrices, double-buffered and
    /// 64-byte aligned for the vector sweep. `fixed` rows are kept
    /// valid in *both* buffers (written at gather time, skipped by the
    /// sweep), so the double-buffer swap never stales them.
    cur: AlignedVec,
    next: AlignedVec,
    /// `[nodes × lanes]` per-sub-step power ΔT, 64-byte aligned.
    power_dt: AlignedVec,
    /// Per-lane heat generated over the tick (Joules), for
    /// [`Solver::finish_tick`] bookkeeping.
    generated: Vec<f64>,
    /// Whether the chunk's matrices already hold every member's state
    /// from the previous tick. A warm chunk only re-gathers boundary
    /// rows (the inter-machine graph rewrites inlets each tick) and
    /// lanes whose solver reports changed inputs; everything else is
    /// bit-identical to what the scatter just wrote back.
    warm: bool,
}

impl Chunk {
    fn new(members: Vec<usize>, n: usize) -> Self {
        let lanes = members.len();
        Chunk {
            members,
            cur: AlignedVec::zeroed(n * lanes),
            next: AlignedVec::zeroed(n * lanes),
            power_dt: AlignedVec::zeroed(n * lanes),
            generated: vec![0.0; lanes],
            warm: false,
        }
    }

    /// Advances every lane by one tick (all sub-steps). Pure compute on
    /// chunk-owned state plus the shared read-only operator — safe to
    /// run concurrently with other chunks.
    ///
    /// Per lane each sub-step is the scalar kernel's exact sequence —
    /// `t = self_w·T_i + ΔT_power`, then `+= w_j·T_src(j)` in operator
    /// order — run as row sweeps by `super::simd` on the operator's
    /// stamped backend. Lanes are independent, so the sweep reorders
    /// nothing within a lane; in default (non-fast-math) mode every
    /// backend is bit-identical to the scalar path. `fixed` rows are
    /// already valid in both buffers (see [`BatchSet::begin_tick`]) and
    /// are skipped outright.
    pub(crate) fn tick(&mut self, op: &SharedOp) {
        let lanes = self.members.len();
        debug_assert_eq!(self.cur.as_ptr() as usize % MATRIX_ALIGN, 0);
        debug_assert_eq!(self.next.as_ptr() as usize % MATRIX_ALIGN, 0);
        debug_assert_eq!(self.power_dt.as_ptr() as usize % MATRIX_ALIGN, 0);
        for _ in 0..op.substeps {
            simd::substep(
                op.backend,
                op.fast_math,
                Sweep {
                    n: op.n,
                    lanes,
                    op_off: &op.op_off,
                    op_src: &op.op_src,
                    op_w: &op.op_w,
                    self_w: &op.self_w,
                    fixed: &op.fixed,
                    power_dt: &self.power_dt,
                    cur: &self.cur,
                    next: &mut self.next,
                },
            );
            std::mem::swap(&mut self.cur, &mut self.next);
        }
    }
}

/// One structural group: the shared operator plus its member chunks.
#[derive(Debug)]
struct Group {
    op: SharedOp,
    chunks: Vec<Chunk>,
}

/// The cluster's batch plan: which machines step together, and the
/// matrices they step in. Owned by `ClusterSolver`; rebuilt only when
/// membership changes (a machine diverges, a pin appears/disappears, or
/// batching is toggled).
#[derive(Debug, Default)]
pub(crate) struct BatchSet {
    groups: Vec<Group>,
    /// `membership[m]` — machine `m` steps on the batched path.
    membership: Vec<bool>,
    /// The `(fingerprint, eligible)` vector the current plan was built
    /// from; a cheap per-tick comparison detects membership changes.
    signature: Vec<(u64, bool)>,
    planned: bool,
    /// Lane-sweep backend for every chunk tick. Defaults to the
    /// process-wide [`SimdBackend::select`]; bit-identical across
    /// backends in default mode.
    backend: SimdBackend,
    /// Opt-in fast-math lane mode (FMA contraction; bounded divergence
    /// instead of bit-identity).
    fast_math: bool,
}

impl BatchSet {
    pub(crate) fn new(n_machines: usize) -> Self {
        BatchSet {
            groups: Vec::new(),
            membership: vec![false; n_machines],
            signature: Vec::new(),
            planned: false,
            backend: SimdBackend::select(),
            fast_math: false,
        }
    }

    /// The lane-sweep backend chunk ticks run on.
    pub(crate) fn backend(&self) -> SimdBackend {
        self.backend
    }

    /// Switches the lane-sweep backend, restamping existing group
    /// operators so the change takes effect on the next tick. Callers
    /// must pass a [`SimdBackend::supported`] backend.
    pub(crate) fn set_backend(&mut self, backend: SimdBackend) {
        debug_assert!(backend.supported());
        self.backend = backend;
        for group in &mut self.groups {
            group.op.backend = backend;
        }
    }

    /// Whether fast-math lane sweeps are enabled.
    pub(crate) fn fast_math(&self) -> bool {
        self.fast_math
    }

    /// Toggles fast-math lane sweeps, restamping existing operators.
    pub(crate) fn set_fast_math(&mut self, fast: bool) {
        self.fast_math = fast;
        for group in &mut self.groups {
            group.op.fast_math = fast;
        }
    }

    /// Whether machine `m` is currently stepped on the batched path.
    pub(crate) fn is_batched(&self, m: usize) -> bool {
        self.membership.get(m).copied().unwrap_or(false)
    }

    /// Number of machines currently stepped on the batched path.
    pub(crate) fn batched_machines(&self) -> usize {
        self.membership.iter().filter(|&&b| b).count()
    }

    /// Drops the plan; every machine steps per-machine until `plan` runs
    /// again.
    pub(crate) fn clear(&mut self) {
        self.groups.clear();
        self.membership.iter_mut().for_each(|b| *b = false);
        self.signature.clear();
        self.planned = false;
    }

    /// (Re)partitions the cluster into batch groups. Cheap when nothing
    /// changed: recomputes the `(fingerprint, eligible)` signature and
    /// compares it to the current plan's.
    ///
    /// Returns `None` when the existing plan still stands, or
    /// `Some(demotions)` after a replan — the number of machines that
    /// were on the batched path before and are not any more (diverged,
    /// grew a pin, or their group shrank below [`MIN_GROUP`]). The
    /// cluster feeds this into its telemetry.
    pub(crate) fn plan(&mut self, machines: &mut [Solver]) -> Option<u64> {
        let signature: Vec<(u64, bool)> = machines
            .iter()
            .map(|m| (m.fingerprint(), m.batch_eligible()))
            .collect();
        if self.planned && signature == self.signature {
            return None;
        }

        self.groups.clear();
        let was_batched = std::mem::take(&mut self.membership);
        self.membership.resize(machines.len(), false);

        // Group eligible machines by fingerprint, preserving first-seen
        // order so the plan is deterministic in machine order.
        let mut order: Vec<u64> = Vec::new();
        let mut by_print: std::collections::HashMap<u64, Vec<usize>> =
            std::collections::HashMap::new();
        for (m, &(print, eligible)) in signature.iter().enumerate() {
            if !eligible {
                continue;
            }
            let entry = by_print.entry(print).or_default();
            if entry.is_empty() {
                order.push(print);
            }
            entry.push(m);
        }

        for print in order {
            let members = by_print.remove(&print).expect("grouped above");
            if members.len() < MIN_GROUP {
                continue;
            }
            // Deep-copy the representative's operator, then verify every
            // member compiled to the same bits (fingerprint collisions
            // demote the odd one out to the per-machine path).
            let op = SharedOp::from_assembled(
                machines[members[0]].compiled_kernel().assembled_op(),
                self.backend,
                self.fast_math,
            );
            let mut verified = Vec::with_capacity(members.len());
            for &m in &members {
                if op.matches(&machines[m].compiled_kernel().assembled_op()) {
                    verified.push(m);
                } else {
                    debug_assert!(false, "fingerprint collision between machines");
                }
            }
            if verified.len() < MIN_GROUP {
                continue;
            }
            for &m in &verified {
                self.membership[m] = true;
            }
            let n = op.n;
            let chunks = verified
                .chunks(CHUNK_LANES)
                .map(|c| Chunk::new(c.to_vec(), n))
                .collect();
            self.groups.push(Group { op, chunks });
        }

        self.signature = signature;
        self.planned = true;
        let demotions = was_batched
            .iter()
            .zip(&self.membership)
            .filter(|&(was, is)| *was && !*is)
            .count() as u64;
        Some(demotions)
    }

    /// Chunks in the current plan.
    pub(crate) fn chunk_count(&self) -> usize {
        self.groups.iter().map(|g| g.chunks.len()).sum()
    }

    /// Occupied lanes per chunk, in plan order — observed into the
    /// occupancy histogram at plan time.
    pub(crate) fn chunk_lanes(&self) -> impl Iterator<Item = usize> + '_ {
        self.groups
            .iter()
            .flat_map(|g| g.chunks.iter().map(|c| c.members.len()))
    }

    /// Explicit-Euler sub-steps one batched tick performs across all
    /// member machines (Σ group members × group sub-steps). Lets the
    /// cluster book tick/sub-step counters in bulk — a handful of adds
    /// per tick — instead of per lane.
    pub(crate) fn planned_substeps(&self) -> u64 {
        self.groups
            .iter()
            .map(|g| {
                let members: usize = g.chunks.iter().map(|c| c.members.len()).sum();
                (members * g.op.substeps) as u64
            })
            .sum()
    }

    /// Tick preamble for every batched machine: runs the identical
    /// per-machine input pricing ([`Solver::fill_tick_inputs`]), then
    /// gathers temperatures and per-node power ΔT into the chunk
    /// matrices. The representative's boundary mask is copied into the
    /// shared operator (it is structural, hence identical group-wide).
    pub(crate) fn begin_tick(&mut self, machines: &mut [Solver]) {
        for group in &mut self.groups {
            let op = &mut group.op;
            let mut first = true;
            for chunk in &mut group.chunks {
                let lanes = chunk.members.len();
                for l in 0..lanes {
                    let solver = &mut machines[chunk.members[l]];
                    let repriced = solver.fill_tick_inputs();
                    let (fixed, power_q) = solver.tick_inputs();
                    if first {
                        op.fixed.copy_from_slice(fixed);
                        first = false;
                    } else {
                        debug_assert_eq!(op.fixed, fixed, "boundary mask diverged within group");
                    }
                    let temps = solver.temps();
                    if chunk.warm && !repriced {
                        // Nothing about this lane changed outside the
                        // chunk except possibly its boundary rows (the
                        // room graph rewrote the inlet); non-boundary
                        // rows still hold the previous scatter's bits.
                        // Fixed rows go into *both* buffers: the sweep
                        // skips them, so each buffer must carry its own
                        // copy across the double-buffer swaps.
                        for (i, (&fixed, t)) in op.fixed.iter().zip(temps).enumerate() {
                            if fixed {
                                chunk.cur[i * lanes + l] = t.0;
                                chunk.next[i * lanes + l] = t.0;
                            }
                        }
                        continue;
                    }
                    // `sum_q` accumulates in node order — the scalar
                    // kernel's exact `generated` bookkeeping.
                    let mut sum_q = 0.0;
                    for i in 0..op.n {
                        let q = power_q[i];
                        sum_q += q;
                        chunk.cur[i * lanes + l] = temps[i].0;
                        if op.fixed[i] {
                            // Skipped by the sweep — pre-write the
                            // boundary value into both buffers once
                            // instead of copying it every sub-step.
                            chunk.next[i * lanes + l] = temps[i].0;
                        }
                        chunk.power_dt[i * lanes + l] = q * op.inv_capacity[i];
                    }
                    chunk.generated[l] = sum_q * op.substeps as f64;
                }
                chunk.warm = true;
            }
        }
    }

    /// Steps every chunk serially, in plan order.
    pub(crate) fn tick_serial(&mut self) {
        for group in &mut self.groups {
            for chunk in &mut group.chunks {
                chunk.tick(&group.op);
            }
        }
    }

    /// The independent `(operator, chunk)` work items, for distributing
    /// across worker threads. Chunks never alias; the operator is shared
    /// read-only within its group.
    pub(crate) fn par_items(&mut self) -> Vec<(&SharedOp, &mut Chunk)> {
        self.groups
            .iter_mut()
            .flat_map(|g| {
                let op = &g.op;
                g.chunks.iter_mut().map(move |c| (&*op, c))
            })
            .collect()
    }

    /// Tick epilogue: scatters chunk temperatures back into each member
    /// solver and books its heat/time accounting, exactly as
    /// [`Solver::step`]'s epilogue does.
    pub(crate) fn finish_tick(&mut self, machines: &mut [Solver]) {
        self.scatter(machines, 1);
    }

    /// Span epilogue for fused replay: the same scatter as
    /// [`BatchSet::finish_tick`], but booking `span` ticks of heat/time
    /// accounting at once — the chunk matrices stayed hot for the whole
    /// span, so there is exactly one scatter to pay.
    pub(crate) fn finish_span(&mut self, machines: &mut [Solver], span: usize) {
        self.scatter(machines, span);
    }

    fn scatter(&mut self, machines: &mut [Solver], span: usize) {
        for group in &mut self.groups {
            let n = group.op.n;
            for chunk in &mut group.chunks {
                let lanes = chunk.members.len();
                for l in 0..lanes {
                    let solver = &mut machines[chunk.members[l]];
                    let temps = solver.temps_mut();
                    for (i, t) in temps.iter_mut().enumerate().take(n) {
                        t.0 = chunk.cur[i * lanes + l];
                    }
                    solver.finish_tick_span(chunk.generated[l], span);
                }
            }
        }
    }

    /// Per-machine lane coordinates `(group, chunk, lane)` under the
    /// current plan, or `None` for machines on the per-machine path.
    /// Built once per fused span so per-tick chunk reads and writes are
    /// straight indexing.
    pub(crate) fn lane_map(&self, n_machines: usize) -> Vec<Option<(u32, u32, u32)>> {
        let mut map = vec![None; n_machines];
        for (g, group) in self.groups.iter().enumerate() {
            for (c, chunk) in group.chunks.iter().enumerate() {
                for (l, &m) in chunk.members.iter().enumerate() {
                    map[m] = Some((g as u32, c as u32, l as u32));
                }
            }
        }
        map
    }

    /// The inter-machine exhaust observation read straight off a chunk
    /// lane: the mean over `nodes` in node order — the identical
    /// accumulation the cluster's scalar `exhaust_temperature` performs
    /// on a solver's scattered temperatures. `None` when the machine has
    /// no exhaust regions (the caller falls back to its inlet, as the
    /// scalar path does).
    pub(crate) fn lane_exhaust(&self, g: u32, c: u32, l: u32, nodes: &[u32]) -> Option<f64> {
        if nodes.is_empty() {
            return None;
        }
        let chunk = &self.groups[g as usize].chunks[c as usize];
        let lanes = chunk.members.len();
        let mut sum = 0.0;
        for &i in nodes {
            sum += chunk.cur[i as usize * lanes + l as usize];
        }
        Some(sum / nodes.len() as f64)
    }

    /// One node's current temperature on a chunk lane, for per-tick
    /// probe recording inside a fused span.
    pub(crate) fn lane_value(&self, g: u32, c: u32, l: u32, node: usize) -> f64 {
        let chunk = &self.groups[g as usize].chunks[c as usize];
        chunk.cur[node * chunk.members.len() + l as usize]
    }

    /// Writes a boundary temperature into the given rows of a chunk
    /// lane — the fused span's equivalent of `set_inlet_temperature` on
    /// the scattered solver. Boundary rows are `fixed`, which the sweep
    /// skips rather than copies, so the value is written into both
    /// buffers to survive the per-sub-step double-buffer swaps.
    pub(crate) fn write_lane_rows(&mut self, g: u32, c: u32, l: u32, nodes: &[usize], t: f64) {
        let chunk = &mut self.groups[g as usize].chunks[c as usize];
        let lanes = chunk.members.len();
        for &i in nodes {
            chunk.cur[i * lanes + l as usize] = t;
            chunk.next[i * lanes + l as usize] = t;
        }
    }
}
