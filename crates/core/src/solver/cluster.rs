//! The cluster solver: per-machine solvers coupled by the inter-machine
//! air-flow graph.

use super::machine::{Solver, SolverConfig};
use crate::error::Error;
use crate::model::{ClusterEndpoint, ClusterModel};
use crate::units::{Celsius, Seconds, Utilization};
use std::collections::HashMap;

/// Emulates the temperatures of an entire machine room (Figure 1c).
///
/// Each tick, the cluster solver:
/// 1. resolves every junction temperature and machine-inlet temperature as
///    the fraction-weighted mix of its sources (AC supplies, machine
///    exhausts from the previous tick, upstream junctions);
/// 2. pushes each inlet temperature into the corresponding machine solver
///    (unless `fiddle` has forced that inlet); and
/// 3. steps every machine solver by one tick.
///
/// ```
/// use mercury::presets;
/// use mercury::solver::{ClusterSolver, SolverConfig};
///
/// # fn main() -> Result<(), mercury::Error> {
/// let cluster = presets::validation_cluster(4);
/// let mut solver = ClusterSolver::new(&cluster, SolverConfig::default())?;
/// solver.machine_mut("machine1")?.set_utilization("cpu", 0.9)?;
/// solver.step_for(300);
/// let t = solver.temperature("machine1", "cpu")?;
/// assert!(t.0 > 21.6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ClusterSolver {
    machines: Vec<Solver>,
    by_name: HashMap<String, usize>,
    supplies: HashMap<String, Celsius>,
    junctions: HashMap<String, Celsius>,
    edges: Vec<crate::model::ClusterEdge>,
    /// Machine inlets whose temperature fiddle has taken over.
    forced_inlets: Vec<Option<Celsius>>,
    time: Seconds,
    dt: Seconds,
}

impl ClusterSolver {
    /// Creates a solver for the given cluster model.
    ///
    /// # Errors
    ///
    /// Propagates [`Solver::new`] errors for any machine.
    pub fn new(model: &ClusterModel, cfg: SolverConfig) -> Result<Self, Error> {
        let mut machines = Vec::with_capacity(model.machines().len());
        let mut by_name = HashMap::new();
        for (i, m) in model.machines().iter().enumerate() {
            machines.push(Solver::new(m, cfg.clone())?);
            by_name.insert(m.name().to_string(), i);
        }
        let supplies = model
            .supplies()
            .iter()
            .map(|s| (s.name.clone(), s.temperature))
            .collect();
        let initial = cfg.initial_temperature.unwrap_or_else(|| {
            model
                .supplies()
                .first()
                .map(|s| s.temperature)
                .unwrap_or(Celsius(21.6))
        });
        let junctions = model
            .junctions()
            .iter()
            .map(|j| (j.clone(), initial))
            .collect();
        let n = machines.len();
        Ok(ClusterSolver {
            machines,
            by_name,
            supplies,
            junctions,
            edges: model.edges().to_vec(),
            forced_inlets: vec![None; n],
            time: Seconds(0.0),
            dt: cfg.dt,
        })
    }

    /// Number of machines in the cluster.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Whether the cluster has no machines.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Emulated time elapsed since construction.
    pub fn time(&self) -> Seconds {
        self.time
    }

    /// Machine names in index order.
    pub fn machine_names(&self) -> Vec<&str> {
        self.machines.iter().map(Solver::machine_name).collect()
    }

    fn machine_index(&self, name: &str) -> Result<usize, Error> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| Error::UnknownMachine { name: name.to_string() })
    }

    /// Immutable access to one machine's solver.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownMachine`] for unknown names.
    pub fn machine(&self, name: &str) -> Result<&Solver, Error> {
        Ok(&self.machines[self.machine_index(name)?])
    }

    /// Mutable access to one machine's solver (to set utilizations, fan
    /// speeds, etc.).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownMachine`] for unknown names.
    pub fn machine_mut(&mut self, name: &str) -> Result<&mut Solver, Error> {
        let i = self.machine_index(name)?;
        Ok(&mut self.machines[i])
    }

    /// Machine solver by index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn machine_at(&self, index: usize) -> &Solver {
        &self.machines[index]
    }

    /// Mutable machine solver by index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn machine_at_mut(&mut self, index: usize) -> &mut Solver {
        &mut self.machines[index]
    }

    /// Shorthand for `machine(name)?.temperature(node)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownMachine`] or [`Error::UnknownNode`].
    pub fn temperature(&self, machine: &str, node: &str) -> Result<Celsius, Error> {
        self.machine(machine)?.temperature(node)
    }

    /// Shorthand for `machine_mut(name)?.set_utilization(component, u)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownMachine`], [`Error::UnknownNode`], or
    /// [`Error::InvalidInput`].
    pub fn set_utilization(
        &mut self,
        machine: &str,
        component: &str,
        utilization: impl Into<Utilization>,
    ) -> Result<(), Error> {
        self.machine_mut(machine)?.set_utilization(component, utilization)
    }

    /// Changes an AC supply's output temperature (e.g. to emulate a failed
    /// or degraded air conditioner for a whole region of the room).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNode`] for unknown supply names.
    pub fn set_supply_temperature(&mut self, supply: &str, t: Celsius) -> Result<(), Error> {
        match self.supplies.get_mut(supply) {
            Some(v) => {
                *v = t;
                Ok(())
            }
            None => Err(Error::unknown_node(supply)),
        }
    }

    /// Pins one machine's inlet to a fixed temperature, overriding the
    /// inter-machine graph (fiddle's "blocked inlet / broken AC duct").
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownMachine`] for unknown names.
    pub fn force_inlet(&mut self, machine: &str, t: Celsius) -> Result<(), Error> {
        let i = self.machine_index(machine)?;
        self.forced_inlets[i] = Some(t);
        self.machines[i].set_inlet_temperature(t);
        Ok(())
    }

    /// Releases a pinned inlet back to the inter-machine graph.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownMachine`] for unknown names.
    pub fn release_inlet(&mut self, machine: &str) -> Result<(), Error> {
        let i = self.machine_index(machine)?;
        self.forced_inlets[i] = None;
        Ok(())
    }

    /// Current temperature of a room junction.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNode`] for unknown junction names.
    pub fn junction_temperature(&self, name: &str) -> Result<Celsius, Error> {
        self.junctions
            .get(name)
            .copied()
            .ok_or_else(|| Error::unknown_node(name))
    }

    fn endpoint_temperatures(&self) -> HashMap<ClusterEndpoint, Celsius> {
        let mut map = HashMap::new();
        for (name, t) in &self.supplies {
            map.insert(ClusterEndpoint::Supply(name.clone()), *t);
        }
        for (name, t) in &self.junctions {
            map.insert(ClusterEndpoint::Junction(name.clone()), *t);
        }
        for (i, m) in self.machines.iter().enumerate() {
            map.insert(ClusterEndpoint::MachineExhaust(i), machine_exhaust_temperature(m));
        }
        map
    }

    /// Advances the whole room by one tick.
    pub fn step(&mut self) {
        let mut temps = self.endpoint_temperatures();

        // Junctions first (they may feed inlets through recirculation
        // edges). A single pass is enough because junction-to-junction
        // chains are rare; values settle within a tick or two either way.
        let junction_names: Vec<String> = self.junctions.keys().cloned().collect();
        for name in junction_names {
            let ep = ClusterEndpoint::Junction(name.clone());
            if let Some(t) = crate::model::cluster::mixed_inlet_temperature(&self.edges, &ep, &temps)
            {
                self.junctions.insert(name.clone(), t);
                temps.insert(ep, t);
            }
        }

        // Machine inlets.
        for i in 0..self.machines.len() {
            if let Some(forced) = self.forced_inlets[i] {
                self.machines[i].set_inlet_temperature(forced);
                continue;
            }
            let ep = ClusterEndpoint::MachineInlet(i);
            if let Some(t) = crate::model::cluster::mixed_inlet_temperature(&self.edges, &ep, &temps)
            {
                self.machines[i].set_inlet_temperature(t);
            }
        }

        for m in &mut self.machines {
            m.step();
        }
        self.time.0 += self.dt.0;
    }

    /// Advances the room by `ticks` ticks.
    pub fn step_for(&mut self, ticks: usize) {
        for _ in 0..ticks {
            self.step();
        }
    }
}

/// The temperature the inter-machine graph observes at a machine's
/// exhaust: the mean over its exhaust air regions, or its inlet
/// temperature if it has none.
fn machine_exhaust_temperature(solver: &Solver) -> Celsius {
    let mut sum = 0.0;
    let mut count = 0usize;
    for (name, t) in solver.temperatures() {
        if solver.is_exhaust(&name) {
            sum += t.0;
            count += 1;
        }
    }
    if count > 0 {
        Celsius(sum / count as f64)
    } else {
        solver.inlet_temperature()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::solver::SolverConfig;

    #[test]
    fn cluster_of_four_steps_and_heats() {
        let cluster = presets::validation_cluster(4);
        let mut s = ClusterSolver::new(&cluster, SolverConfig::default()).unwrap();
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        for name in ["machine1", "machine2", "machine3", "machine4"] {
            s.set_utilization(name, "cpu", 1.0).unwrap();
        }
        s.step_for(1200);
        for name in s.machine_names().iter().map(|s| s.to_string()).collect::<Vec<_>>() {
            let t = s.temperature(&name, "cpu").unwrap();
            assert!(t.0 > 40.0, "{name} cpu stayed at {t}");
        }
        // The shared exhaust junction warms above the supply.
        let exhaust = s.junction_temperature("cluster_exhaust").unwrap();
        assert!(exhaust.0 > 21.0, "cluster exhaust at {exhaust}");
    }

    #[test]
    fn forced_inlet_overrides_the_room_graph() {
        let cluster = presets::validation_cluster(2);
        let mut s = ClusterSolver::new(&cluster, SolverConfig::default()).unwrap();
        s.force_inlet("machine1", Celsius(38.6)).unwrap();
        s.step_for(5);
        let t1 = s.machine("machine1").unwrap().inlet_temperature();
        let t2 = s.machine("machine2").unwrap().inlet_temperature();
        assert_eq!(t1, Celsius(38.6));
        assert!((t2.0 - 21.6).abs() < 0.5);
        s.release_inlet("machine1").unwrap();
        s.step_for(5);
        let t1 = s.machine("machine1").unwrap().inlet_temperature();
        assert!((t1.0 - 21.6).abs() < 0.5, "inlet did not recover: {t1}");
    }

    #[test]
    fn supply_temperature_reaches_all_machines() {
        let cluster = presets::validation_cluster(2);
        let mut s = ClusterSolver::new(&cluster, SolverConfig::default()).unwrap();
        s.set_supply_temperature("ac", Celsius(30.0)).unwrap();
        s.step_for(3);
        for name in ["machine1", "machine2"] {
            let t = s.machine(name).unwrap().inlet_temperature();
            assert!((t.0 - 30.0).abs() < 1e-9, "{name} inlet at {t}");
        }
        assert!(s.set_supply_temperature("ghost", Celsius(1.0)).is_err());
    }

    #[test]
    fn unknown_machine_errors() {
        let cluster = presets::validation_cluster(1);
        let mut s = ClusterSolver::new(&cluster, SolverConfig::default()).unwrap();
        assert!(matches!(s.machine("nope"), Err(Error::UnknownMachine { .. })));
        assert!(s.machine_mut("nope").is_err());
        assert!(s.force_inlet("nope", Celsius(1.0)).is_err());
        assert!(s.temperature("nope", "cpu").is_err());
        assert!(s.junction_temperature("nope").is_err());
    }

    #[test]
    fn time_advances_with_ticks() {
        let cluster = presets::validation_cluster(1);
        let mut s = ClusterSolver::new(&cluster, SolverConfig::default()).unwrap();
        s.step_for(42);
        assert!((s.time().0 - 42.0).abs() < 1e-12);
    }
}
