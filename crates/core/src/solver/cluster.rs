//! The cluster solver: per-machine solvers coupled by the inter-machine
//! air-flow graph.

use super::batch::BatchSet;
use super::kernel::MixGraph;
use super::machine::{Solver, SolverConfig};
use super::metrics::{ClusterMetrics, TICK_LATENCY_SAMPLE};
use super::pool::{TickPool, WorkItem};
use super::simd::SimdBackend;
use crate::error::Error;
use crate::model::ClusterModel;
use crate::units::{Celsius, Seconds, Utilization};
use std::borrow::Cow;
use std::collections::HashMap;
use std::time::Instant;
use telemetry::Tracer;

/// Below this cluster size the automatic thread policy stays serial: the
/// per-tick work of a handful of machines is cheaper than waking a thread
/// pool for them.
const SERIAL_MACHINE_CUTOFF: usize = 8;

/// How parallel ticks distribute their work across threads; see
/// [`ClusterSolver::set_scheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TickScheduler {
    /// The persistent [`TickPool`]: workers spawned once, parked between
    /// ticks, fed one unified queue of solo-machine and batch-chunk work
    /// items capped at exactly the configured thread count.
    #[default]
    Pool,
    /// The legacy baseline: fresh `std::thread::scope` threads every
    /// tick, solo slices and chunk slices each fanned out separately
    /// (which can oversubscribe to 2× the configured thread count).
    /// Kept selectable for pool-vs-spawn benchmarking only; trajectories
    /// are bit-identical either way.
    SpawnPerTick,
}

/// A resolved `(machine, node)` temperature probe for
/// [`ClusterSolver::step_for_recorded`]: resolve names once, then record
/// by dense index every tick.
#[derive(Debug, Clone, Copy)]
pub struct ClusterProbe {
    machine: usize,
    node: usize,
}

/// Emulates the temperatures of an entire machine room (Figure 1c).
///
/// Each tick, the cluster solver:
/// 1. resolves every junction temperature and machine-inlet temperature as
///    the fraction-weighted mix of its sources (AC supplies, machine
///    exhausts from the previous tick, upstream junctions) through the
///    mixing plan precompiled in `solver::kernel` — no per-tick hashing or
///    allocation;
/// 2. pushes each inlet temperature into the corresponding machine solver
///    (unless `fiddle` has forced that inlet); and
/// 3. steps every machine solver by one tick — serially or fanned out
///    across threads (see [`ClusterSolver::set_threads`]). Machines within
///    a tick are independent (they only read the *previous* tick's exhaust
///    temperatures, all mixed in phases 1–2), so serial and parallel
///    stepping produce bit-identical trajectories.
///
/// Junctions are resolved in model declaration order, with each junction's
/// update visible to the junctions and inlets after it — deterministic
/// across runs and processes.
///
/// ```
/// use mercury::presets;
/// use mercury::solver::{ClusterSolver, SolverConfig};
///
/// # fn main() -> Result<(), mercury::Error> {
/// let cluster = presets::validation_cluster(4);
/// let mut solver = ClusterSolver::new(&cluster, SolverConfig::default())?;
/// solver.machine_mut("machine1")?.set_utilization("cpu", 0.9)?;
/// solver.step_for(300);
/// let t = solver.temperature("machine1", "cpu")?;
/// assert!(t.0 > 21.6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ClusterSolver {
    machines: Vec<Solver>,
    by_name: HashMap<String, usize>,
    supply_names: Vec<String>,
    supply_temps: Vec<Celsius>,
    junction_names: Vec<String>,
    junction_temps: Vec<Celsius>,
    /// The precompiled mixing plan over dense endpoint slots.
    mix: MixGraph,
    /// Per-machine exhaust temperatures observed at the start of the tick.
    exhaust_scratch: Vec<Celsius>,
    /// Machine inlets whose temperature fiddle has taken over.
    forced_inlets: Vec<Option<Celsius>>,
    /// Worker threads for machine stepping; 0 = automatic.
    threads: usize,
    /// Batch plan over structurally identical machines (see
    /// [`ClusterSolver::set_batching`]).
    batch: BatchSet,
    batching: bool,
    /// The persistent worker pool for parallel ticks; empty until the
    /// first parallel tick, resized lazily when the effective thread
    /// count changes, joined on drop.
    pool: TickPool,
    /// Which parallel-tick execution strategy to use (see
    /// [`ClusterSolver::set_scheduler`]).
    scheduler: TickScheduler,
    /// Pool runs so far, for 1-in-[`TICK_LATENCY_SAMPLE`] busy/idle
    /// sampling.
    pool_runs: u64,
    time: Seconds,
    dt: Seconds,
    /// Always-on metric handles; the nested solver bundle is shared with
    /// every machine in the room.
    metrics: ClusterMetrics,
    /// Runtime instrumentation switch (default on), cascaded to every
    /// machine solver; see [`ClusterSolver::set_instrumentation`].
    instrumented: bool,
    /// Span tracer for tick-phase causal tracing (detached by default);
    /// see [`ClusterSolver::set_tracer`].
    tracer: Tracer,
}

impl ClusterSolver {
    /// Creates a solver for the given cluster model.
    ///
    /// # Errors
    ///
    /// Propagates [`Solver::new`] errors for any machine.
    pub fn new(model: &ClusterModel, cfg: SolverConfig) -> Result<Self, Error> {
        let mut machines = Vec::with_capacity(model.machines().len());
        let mut by_name = HashMap::new();
        for (i, m) in model.machines().iter().enumerate() {
            machines.push(Solver::new(m, cfg.clone())?);
            by_name.insert(m.name().to_string(), i);
        }
        let supply_names: Vec<String> = model.supplies().iter().map(|s| s.name.clone()).collect();
        let supply_temps: Vec<Celsius> = model.supplies().iter().map(|s| s.temperature).collect();
        let initial = cfg.initial_temperature.unwrap_or_else(|| {
            model
                .supplies()
                .first()
                .map(|s| s.temperature)
                .unwrap_or(Celsius(21.6))
        });
        let junction_names = model.junctions().to_vec();
        let junction_temps = vec![initial; junction_names.len()];
        let n = machines.len();
        // One machine-level metric bundle for the whole room: each
        // solver's construction-time counts (the initial flow compile)
        // fold into it on adoption.
        let metrics = ClusterMetrics::new();
        for machine in &mut machines {
            machine.share_metrics(&metrics.solver);
        }
        let batch = BatchSet::new(n);
        metrics
            .solver
            .simd_lane_width
            .set(batch.backend().lane_width() as f64);
        Ok(ClusterSolver {
            machines,
            by_name,
            supply_names,
            supply_temps,
            junction_names,
            junction_temps,
            mix: MixGraph::build(model),
            exhaust_scratch: vec![Celsius(0.0); n],
            forced_inlets: vec![None; n],
            threads: 0,
            batch,
            batching: true,
            pool: TickPool::new(),
            scheduler: TickScheduler::default(),
            pool_runs: 0,
            time: Seconds(0.0),
            dt: cfg.dt,
            metrics,
            instrumented: true,
            tracer: Tracer::default(),
        })
    }

    /// Number of machines in the cluster.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Whether the cluster has no machines.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Emulated time elapsed since construction.
    pub fn time(&self) -> Seconds {
        self.time
    }

    /// Machine names in index order.
    pub fn machine_names(&self) -> Vec<&str> {
        self.machines.iter().map(Solver::machine_name).collect()
    }

    fn machine_index(&self, name: &str) -> Result<usize, Error> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| Error::UnknownMachine {
                name: name.to_string(),
            })
    }

    /// Immutable access to one machine's solver.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownMachine`] for unknown names.
    pub fn machine(&self, name: &str) -> Result<&Solver, Error> {
        Ok(&self.machines[self.machine_index(name)?])
    }

    /// Mutable access to one machine's solver (to set utilizations, fan
    /// speeds, etc.).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownMachine`] for unknown names.
    pub fn machine_mut(&mut self, name: &str) -> Result<&mut Solver, Error> {
        let i = self.machine_index(name)?;
        Ok(&mut self.machines[i])
    }

    /// Machine solver by index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn machine_at(&self, index: usize) -> &Solver {
        &self.machines[index]
    }

    /// Mutable machine solver by index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn machine_at_mut(&mut self, index: usize) -> &mut Solver {
        &mut self.machines[index]
    }

    /// Shorthand for `machine(name)?.temperature(node)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownMachine`] or [`Error::UnknownNode`].
    pub fn temperature(&self, machine: &str, node: &str) -> Result<Celsius, Error> {
        self.machine(machine)?.temperature(node)
    }

    /// Shorthand for `machine_mut(name)?.set_utilization(component, u)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownMachine`], [`Error::UnknownNode`], or
    /// [`Error::InvalidInput`].
    pub fn set_utilization(
        &mut self,
        machine: &str,
        component: &str,
        utilization: impl Into<Utilization>,
    ) -> Result<(), Error> {
        self.machine_mut(machine)?
            .set_utilization(component, utilization)
    }

    /// Changes an AC supply's output temperature (e.g. to emulate a failed
    /// or degraded air conditioner for a whole region of the room).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNode`] for unknown supply names.
    pub fn set_supply_temperature(&mut self, supply: &str, t: Celsius) -> Result<(), Error> {
        match self.supply_names.iter().position(|n| n == supply) {
            Some(i) => {
                self.supply_temps[i] = t;
                Ok(())
            }
            None => Err(Error::unknown_node(supply)),
        }
    }

    /// Pins one machine's inlet to a fixed temperature, overriding the
    /// inter-machine graph (fiddle's "blocked inlet / broken AC duct").
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownMachine`] for unknown names.
    pub fn force_inlet(&mut self, machine: &str, t: Celsius) -> Result<(), Error> {
        let i = self.machine_index(machine)?;
        self.forced_inlets[i] = Some(t);
        self.machines[i].set_inlet_temperature(t);
        Ok(())
    }

    /// Releases a pinned inlet back to the inter-machine graph.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownMachine`] for unknown names.
    pub fn release_inlet(&mut self, machine: &str) -> Result<(), Error> {
        let i = self.machine_index(machine)?;
        self.forced_inlets[i] = None;
        Ok(())
    }

    /// Current temperature of a room junction.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNode`] for unknown junction names.
    pub fn junction_temperature(&self, name: &str) -> Result<Celsius, Error> {
        self.junction_names
            .iter()
            .position(|n| n == name)
            .map(|i| self.junction_temps[i])
            .ok_or_else(|| Error::unknown_node(name))
    }

    /// Sets the number of worker threads used to step machines each tick.
    ///
    /// `0` (the default) is the **auto sentinel**: serial for clusters
    /// of at most 8 machines, one thread per available core (via
    /// [`std::thread::available_parallelism`], capped at the machine
    /// count) for larger rooms. Any explicit value is clamped to the
    /// machine count; [`ClusterSolver::effective_threads`] reports the
    /// resolved count. Parallel ticks run on a persistent worker pool
    /// that is resized lazily at the next tick after a change here (an
    /// existing pool is torn down and respawned, counted in
    /// `mercury_cluster_pool_resizes_total`). The thread count never
    /// changes results — machines within a tick are independent, so
    /// serial and parallel stepping are bit-identical.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    /// Selects how parallel ticks are executed (default:
    /// [`TickScheduler::Pool`]). The spawn-per-tick strategy exists so
    /// benchmarks can A/B the persistent pool against the legacy scoped
    /// spawn within one binary — like [`ClusterSolver::set_batching`],
    /// this is a benchmarking switch, not a correctness knob: both
    /// strategies produce bit-identical trajectories. Fused replay spans
    /// ([`ClusterSolver::step_for`]) always use the pool.
    pub fn set_scheduler(&mut self, scheduler: TickScheduler) {
        self.scheduler = scheduler;
    }

    /// The currently selected parallel-tick scheduler.
    pub fn scheduler(&self) -> TickScheduler {
        self.scheduler
    }

    /// Worker threads currently alive in the persistent tick pool
    /// (0 until the first parallel tick). After any parallel tick this
    /// equals [`ClusterSolver::effective_threads`] at that tick — never
    /// the 2× a mixed solo/chunk tick could reach under the legacy
    /// spawn-per-tick fan-out.
    pub fn pool_workers(&self) -> usize {
        self.pool.worker_count()
    }

    /// Enables or disables batched stepping of structurally identical
    /// machines (default: enabled).
    ///
    /// When enabled, machines that share a [`structural
    /// fingerprint`](crate::model::MachineModel::structural_fingerprint)
    /// and have not been fiddled away from their source model step
    /// together through one shared structure-of-arrays kernel — the fast
    /// path for trace-replicated rooms. Batched and per-machine stepping
    /// are bit-identical; this switch exists for benchmarking and for
    /// pinning down a suspect path, not for correctness.
    pub fn set_batching(&mut self, on: bool) {
        self.batching = on;
        if !on {
            self.batch.clear();
        }
    }

    /// Whether batched stepping is enabled.
    pub fn batching(&self) -> bool {
        self.batching
    }

    /// The SIMD backend the batched lane sweeps run on. Defaults to the
    /// widest instruction set the host supports (overridable process-wide
    /// via the `MERCURY_SIMD` environment variable; see
    /// [`SimdBackend::select`]).
    pub fn simd_backend(&self) -> SimdBackend {
        self.batch.backend()
    }

    /// Forces the batched lane sweeps onto a specific [`SimdBackend`].
    ///
    /// In default (non-fast-math) mode every backend is bit-identical —
    /// this switch exists for benchmarking and for pinning down a
    /// suspect path (like [`ClusterSolver::set_batching`]), and it is
    /// how the equivalence suites force each backend on one host. Takes
    /// effect on the next tick; the `mercury_solver_simd_lane_width`
    /// gauge follows.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] when the backend is not
    /// supported on this host (see [`SimdBackend::supported`]).
    pub fn set_simd_backend(&mut self, backend: SimdBackend) -> Result<(), Error> {
        if !backend.supported() {
            return Err(Error::invalid_input(format!(
                "SIMD backend `{}` is not supported on this host",
                backend.name()
            )));
        }
        self.batch.set_backend(backend);
        self.metrics
            .solver
            .simd_lane_width
            .set(backend.lane_width() as f64);
        Ok(())
    }

    /// Enables or disables **fast-math lane sweeps** on the batched path
    /// (default: disabled).
    ///
    /// Fast-math permits FMA contraction and reassociated accumulation
    /// in the chunk sub-step, trading the repo's bit-identity invariant
    /// for peak replay throughput. Trajectories stay within the bounded
    /// divergence documented in `DESIGN.md` §"Vectorized lane sweeps"
    /// (|ΔT| ≤ ~1e-8 °C over 5k-tick replays, enforced by
    /// `tests/fast_math_divergence.rs`); machines on the per-machine
    /// path are unaffected. Leave this off when exact repeatability
    /// across hosts matters more than the last ~10% of throughput.
    pub fn set_fast_math(&mut self, on: bool) {
        self.batch.set_fast_math(on);
    }

    /// Whether fast-math lane sweeps are enabled.
    pub fn fast_math(&self) -> bool {
        self.batch.fast_math()
    }

    /// Number of machines stepped on the batched path in the most recent
    /// tick (`0` before the first tick, or with batching disabled).
    pub fn batched_machines(&self) -> usize {
        self.batch.batched_machines()
    }

    /// The cluster's always-on metric handles (`mercury_cluster_*` plus
    /// the room-shared `mercury_solver_*` bundle). Register them on a
    /// [`telemetry::Registry`] to export them — `net::SolverService`
    /// does this automatically for its scrape surface.
    pub fn metrics(&self) -> &ClusterMetrics {
        &self.metrics
    }

    /// Runtime switch for metric updates (default on), cascaded to
    /// every machine solver. Off skips handle updates and clock reads —
    /// the overhead benchmark's within-one-binary A/B; the compile-time
    /// equivalent is building without the `instrument` feature.
    pub fn set_instrumentation(&mut self, on: bool) {
        self.instrumented = on;
        for machine in &mut self.machines {
            machine.set_instrumentation(on);
        }
    }

    /// Attaches a span [`Tracer`]: every tick records its phase spans
    /// (`cluster.tick` → `cluster.mix` / `cluster.machines` →
    /// `batch.plan` / `batch.gather` / `cluster.sweep` /
    /// `batch.scatter`), fused replay records one `cluster.fused_span`
    /// boundary per span, and the tick pool records per-worker
    /// `pool.worker` busy spans on sampled runs (the same
    /// 1-in-[`TICK_LATENCY_SAMPLE`] cadence as the busy/idle gauges, so
    /// the tracing-on overhead contract holds). A detached tracer (the
    /// default) makes every span site a cheap no-op, and tracing never
    /// touches the numerics — trajectories are bit-identical with or
    /// without it.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.pool.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// The attached span tracer (detached by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The thread count [`ClusterSolver::step`] will actually use.
    pub fn effective_threads(&self) -> usize {
        let n = self.machines.len();
        if n == 0 {
            return 1;
        }
        match self.threads {
            0 if n <= SERIAL_MACHINE_CUTOFF => 1,
            0 => std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .min(n),
            t => t.min(n),
        }
    }

    /// Advances the whole room by one tick.
    pub fn step(&mut self) {
        // Whole-room tick latency is cheap enough to time every tick
        // (two clock reads per room tick, not per machine).
        let started = if telemetry::enabled() && self.instrumented {
            Some(Instant::now())
        } else {
            None
        };
        let tick_span = self.tracer.start("cluster.tick", "solver");
        let mix_span = self
            .tracer
            .start_child("cluster.mix", "solver", tick_span.id());
        // Phase 0: observe every machine's previous-tick exhaust once.
        for m in 0..self.machines.len() {
            self.exhaust_scratch[m] =
                exhaust_temperature(&self.machines[m], self.mix.exhaust_nodes(m));
        }
        self.mix.begin_tick(
            &self.supply_temps,
            &self.junction_temps,
            &self.exhaust_scratch,
        );

        // Phase 1: junctions, in model order (they may feed inlets through
        // recirculation edges). A single pass is enough because
        // junction-to-junction chains are rare; values settle within a
        // tick or two either way.
        for j in 0..self.junction_temps.len() {
            if let Some(t) = self.mix.mix_junction(j) {
                self.junction_temps[j] = t;
            }
        }

        // Phase 2: machine inlets.
        for i in 0..self.machines.len() {
            if let Some(forced) = self.forced_inlets[i] {
                self.machines[i].set_inlet_temperature(forced);
                continue;
            }
            if let Some(t) = self.mix.mix_inlet(i) {
                self.machines[i].set_inlet_temperature(t);
            }
        }

        self.tracer.end(mix_span);

        // Phase 3: step every machine; all cross-machine reads happened
        // above, so the fan-out is embarrassingly parallel.
        let machines_span = self
            .tracer
            .start_child("cluster.machines", "solver", tick_span.id());
        self.step_machines(machines_span.id());
        self.tracer.end(machines_span);
        self.time.0 += self.dt.0;
        if self.instrumented {
            self.metrics.ticks.inc();
            if let Some(started) = started {
                let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                self.metrics.tick_nanos.observe(nanos);
            }
        }
        if tick_span.is_live() {
            let args = vec![
                (Cow::Borrowed("time_s"), format!("{}", self.time.0)),
                (Cow::Borrowed("machines"), self.machines.len().to_string()),
            ];
            self.tracer.end_with_args(tick_span, args);
        }
    }

    fn step_machines(&mut self, parent: u64) {
        // Partition the cluster: structurally identical, unfiddled
        // machines step batched; the rest step per-machine. The plan is
        // rebuilt only when membership changes.
        let plan_span = self.tracer.start_child("batch.plan", "solver", parent);
        if self.batching {
            if let Some(demotions) = self.batch.plan(&mut self.machines) {
                // Replanned: record the new plan's shape once.
                if self.instrumented {
                    self.metrics.solo_demotions.add(demotions);
                    for lanes in self.batch.chunk_lanes() {
                        self.metrics.chunk_occupancy.observe(lanes as u64);
                    }
                }
            }
        }
        self.tracer.end(plan_span);
        // Gather batched machines' inputs into the chunk matrices
        // (serial: touches every member solver).
        let gather_span = self.tracer.start_child("batch.gather", "solver", parent);
        self.batch.begin_tick(&mut self.machines);
        self.tracer.end(gather_span);

        let threads = self.effective_threads();
        let sweep_span = self.tracer.start_child("cluster.sweep", "solver", parent);
        let sweep_id = sweep_span.id();
        if threads <= 1 {
            for (i, m) in self.machines.iter_mut().enumerate() {
                if !self.batch.is_batched(i) {
                    m.step();
                }
            }
            self.batch.tick_serial();
        } else {
            match self.scheduler {
                // Parallel fan-out over two kinds of independent work
                // item: solo machines (their whole `step`) and batch
                // chunks (pure compute on chunk-owned state), in one
                // unified queue drained by exactly `threads` persistent
                // workers. Work is distributed by item, not by
                // thread-dependent matrix strides, so the thread count
                // never changes any machine's arithmetic.
                TickScheduler::Pool => {
                    let batch = &mut self.batch;
                    let mut items: Vec<WorkItem<'_>> = self
                        .machines
                        .iter_mut()
                        .enumerate()
                        .filter(|(i, _)| !batch.is_batched(*i))
                        .map(|(_, m)| WorkItem::Step(m))
                        .collect();
                    items.extend(
                        batch
                            .par_items()
                            .into_iter()
                            .map(|(op, chunk)| WorkItem::Chunk { op, chunk }),
                    );
                    run_on_pool(
                        &mut self.pool,
                        &self.metrics,
                        self.instrumented,
                        &mut self.pool_runs,
                        &mut items,
                        threads,
                        sweep_id,
                    );
                }
                // The legacy per-tick scoped spawn, kept as the
                // benchmark baseline (including its historical
                // oversubscription: solo slices and chunk slices each
                // fan out by `threads`).
                TickScheduler::SpawnPerTick => {
                    let batch = &self.batch;
                    let mut solos: Vec<&mut Solver> = self
                        .machines
                        .iter_mut()
                        .enumerate()
                        .filter(|(i, _)| !batch.is_batched(*i))
                        .map(|(_, m)| m)
                        .collect();
                    let mut items = self.batch.par_items();
                    std::thread::scope(|scope| {
                        if !solos.is_empty() {
                            let chunk = solos.len().div_ceil(threads);
                            for slice in solos.chunks_mut(chunk) {
                                scope.spawn(move || {
                                    for m in slice {
                                        m.step();
                                    }
                                });
                            }
                        }
                        if !items.is_empty() {
                            let chunk = items.len().div_ceil(threads);
                            for slice in items.chunks_mut(chunk) {
                                scope.spawn(move || {
                                    for (op, c) in slice.iter_mut() {
                                        c.tick(op);
                                    }
                                });
                            }
                        }
                    });
                }
            }
        }

        self.tracer.end(sweep_span);

        // Scatter batched results back and book per-machine accounting
        // (serial: touches every member solver).
        let scatter_span = self.tracer.start_child("batch.scatter", "solver", parent);
        self.batch.finish_tick(&mut self.machines);
        self.tracer.end(scatter_span);

        // Bulk tick accounting for the batched path: a handful of adds
        // per room tick (the solo path counts itself in Solver::step).
        if self.instrumented {
            let batched = self.batch.batched_machines();
            self.metrics.batched_machines.set(batched as f64);
            self.metrics
                .solo_machines
                .set((self.machines.len() - batched) as f64);
            self.metrics
                .batch_chunks
                .set(self.batch.chunk_count() as f64);
            self.metrics.solver.ticks.add(batched as u64);
            self.metrics
                .solver
                .substeps
                .add(self.batch.planned_substeps());
        }
    }

    /// Advances the room by `ticks` ticks.
    ///
    /// For `ticks ≥ 2` this is the fused replay path: the first tick
    /// runs as a normal [`ClusterSolver::step`] (absorbing any fiddles
    /// since the last call — the batch plan, flow caches, and priced
    /// inputs all refresh there), and the remaining `ticks − 1` run as
    /// one *fused span* inside the kernel/batch layer. Within the span
    /// no external code can run, so every machine's inputs are provably
    /// stable: chunk matrices stay hot across ticks (no per-tick
    /// gather/scatter), inter-machine mixing reads exhausts straight off
    /// the chunk lanes and writes inlets straight back, solo machines
    /// skip their idempotent repricing, and plan checks plus sampled
    /// metrics are paid once per span. The trajectory is bit-identical
    /// to calling [`ClusterSolver::step`] in a loop — the equivalence
    /// proptests hold it to that at every thread count. Use
    /// [`ClusterSolver::step_for_recorded`] to observe per-tick history
    /// from inside a span.
    pub fn step_for(&mut self, ticks: usize) {
        self.replay(ticks, &[], &mut |_, _| {});
    }

    /// Serializes the room's full mutable state to a `mercury-ckpt-v1`
    /// blob — a convenience wrapper over [`crate::trace::checkpoint::save`].
    #[must_use]
    pub fn checkpoint(&self) -> Vec<u8> {
        crate::trace::checkpoint::save(self)
    }

    /// Restores a blob from [`ClusterSolver::checkpoint`] into this room,
    /// which must have been built from the same model and configuration —
    /// a convenience wrapper over [`crate::trace::checkpoint::restore`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] for malformed or mismatched blobs.
    pub fn restore_checkpoint(&mut self, blob: &[u8]) -> Result<(), Error> {
        crate::trace::checkpoint::restore(self, blob)
    }

    /// Writes the cluster-level mutable state (clock, supply and junction
    /// temperatures, forced inlets) followed by every machine's state.
    ///
    /// Scratch that is recomputed from this state each tick — exhaust
    /// buffers, batch chunk matrices, kernel double buffers — is *not*
    /// serialized: every tick/span boundary scatters it back into the
    /// state written here, and a restored solver re-gathers it.
    pub(crate) fn write_ckpt(&self, w: &mut crate::trace::checkpoint::CkptWriter) {
        w.f64(self.time.0);
        w.u32(self.supply_temps.len() as u32);
        for t in &self.supply_temps {
            w.f64(t.0);
        }
        w.u32(self.junction_temps.len() as u32);
        for t in &self.junction_temps {
            w.f64(t.0);
        }
        w.u32(self.machines.len() as u32);
        for (i, m) in self.machines.iter().enumerate() {
            w.opt_f64(self.forced_inlets[i].map(|t| t.0));
            m.write_ckpt(w);
        }
    }

    /// Restores state written by [`ClusterSolver::write_ckpt`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] when the blob is truncated or was
    /// taken from a differently shaped cluster.
    pub(crate) fn read_ckpt(
        &mut self,
        r: &mut crate::trace::checkpoint::CkptReader<'_>,
    ) -> Result<(), Error> {
        self.time = Seconds(r.f64("cluster time")?);
        r.count("supply", self.supply_temps.len())?;
        for t in &mut self.supply_temps {
            *t = Celsius(r.f64("supply temperature")?);
        }
        r.count("junction", self.junction_temps.len())?;
        for t in &mut self.junction_temps {
            *t = Celsius(r.f64("junction temperature")?);
        }
        r.count("machine", self.machines.len())?;
        for i in 0..self.machines.len() {
            self.forced_inlets[i] = r.opt_f64("forced inlet")?.map(Celsius);
            self.machines[i].read_ckpt(r)?;
        }
        Ok(())
    }

    /// Resolves a `(machine, node)` pair into a dense probe for
    /// [`ClusterSolver::step_for_recorded`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownMachine`] or [`Error::UnknownNode`].
    pub fn probe(&self, machine: &str, node: &str) -> Result<ClusterProbe, Error> {
        let m = self.machine_index(machine)?;
        let n = self.machines[m]
            .node_index(node)
            .ok_or_else(|| Error::unknown_node(node))?;
        Ok(ClusterProbe {
            machine: m,
            node: n,
        })
    }

    /// Advances the room by `ticks` ticks like
    /// [`ClusterSolver::step_for`], delivering each tick's probed
    /// temperatures to `sink`: the post-tick emulated time and the
    /// probed values in probe order. Inside a fused span the probes read
    /// straight off the hot chunk lanes, so recording per-tick history
    /// does not force the span apart. The trajectory is bit-identical to
    /// [`ClusterSolver::step_for`]; only the observation differs.
    pub fn step_for_recorded<F>(&mut self, ticks: usize, probes: &[ClusterProbe], mut sink: F)
    where
        F: FnMut(Seconds, &[Celsius]),
    {
        self.replay(ticks, probes, &mut sink);
    }

    fn replay(
        &mut self,
        ticks: usize,
        probes: &[ClusterProbe],
        sink: &mut dyn FnMut(Seconds, &[Celsius]),
    ) {
        if ticks == 0 {
            return;
        }
        let mut scratch = vec![Celsius(0.0); probes.len()];
        self.step();
        if !probes.is_empty() {
            for (s, p) in scratch.iter_mut().zip(probes) {
                *s = self.machines[p.machine].temperature_at(p.node);
            }
            sink(self.time, &scratch);
        }
        if ticks > 1 {
            self.fused_span(ticks - 1, probes, sink, &mut scratch);
        }
    }

    /// Runs `span` ticks fused: mixing and stepping operate directly on
    /// the chunk matrices (and the solo solvers), with the scatter, span
    /// accounting, and metrics paid once at the end. The caller (always
    /// [`ClusterSolver::replay`]) has just completed a normal tick, so
    /// the batch plan is current, every chunk is warm, and every solo
    /// machine's inputs are priced — and nothing can invalidate any of
    /// that before this method returns.
    fn fused_span(
        &mut self,
        span: usize,
        probes: &[ClusterProbe],
        sink: &mut dyn FnMut(Seconds, &[Celsius]),
        scratch: &mut [Celsius],
    ) {
        let started = if telemetry::enabled() && self.instrumented {
            Some(Instant::now())
        } else {
            None
        };
        // One boundary span per fused region — per-tick spans inside the
        // span would defeat the point of fusing.
        let trace_span = self.tracer.start("cluster.fused_span", "solver");
        let trace_id = trace_span.id();
        let threads = self.effective_threads();
        let n = self.machines.len();
        let lane = self.batch.lane_map(n);
        // The inlet each machine currently sees; stands in for the solver
        // field while batched lanes live only in the chunk matrices.
        let mut inlet_now: Vec<Celsius> = self
            .machines
            .iter()
            .map(Solver::inlet_temperature)
            .collect();
        for _ in 0..span {
            // Phase 0: previous-tick exhausts — read off the chunk lanes
            // for batched machines, off the solver for solos.
            for m in 0..n {
                self.exhaust_scratch[m] = match lane[m] {
                    Some((g, c, l)) => self
                        .batch
                        .lane_exhaust(g, c, l, self.mix.exhaust_nodes(m))
                        .map(Celsius)
                        .unwrap_or(inlet_now[m]),
                    None => exhaust_temperature(&self.machines[m], self.mix.exhaust_nodes(m)),
                };
            }
            self.mix.begin_tick(
                &self.supply_temps,
                &self.junction_temps,
                &self.exhaust_scratch,
            );

            // Phase 1: junctions, in model order.
            for j in 0..self.junction_temps.len() {
                if let Some(t) = self.mix.mix_junction(j) {
                    self.junction_temps[j] = t;
                }
            }

            // Phase 2: machine inlets — written straight into the chunk
            // inlet rows for batched machines (those rows are `fixed`,
            // so the chunk tick carries them through every sub-step).
            for m in 0..n {
                let forced = self.forced_inlets[m];
                let mixed = if forced.is_some() {
                    forced
                } else {
                    self.mix.mix_inlet(m)
                };
                if let Some(t) = mixed {
                    inlet_now[m] = t;
                    match lane[m] {
                        Some((g, c, l)) => {
                            let nodes = self.machines[m].inlet_nodes();
                            self.batch.write_lane_rows(g, c, l, nodes, t.0);
                        }
                        None => self.machines[m].set_inlet_temperature(t),
                    }
                }
            }

            // Phase 3: step. Chunk matrices stay hot — no gather, no
            // scatter, no plan check until the span ends.
            if threads <= 1 {
                for (m, l) in lane.iter().enumerate() {
                    if l.is_none() {
                        self.machines[m].tick_fused();
                    }
                }
                self.batch.tick_serial();
            } else {
                let batch = &mut self.batch;
                let mut items: Vec<WorkItem<'_>> = self
                    .machines
                    .iter_mut()
                    .enumerate()
                    .filter(|(i, _)| lane[*i].is_none())
                    .map(|(_, m)| WorkItem::FusedStep(m))
                    .collect();
                items.extend(
                    batch
                        .par_items()
                        .into_iter()
                        .map(|(op, chunk)| WorkItem::Chunk { op, chunk }),
                );
                run_on_pool(
                    &mut self.pool,
                    &self.metrics,
                    self.instrumented,
                    &mut self.pool_runs,
                    &mut items,
                    threads,
                    trace_id,
                );
            }

            self.time.0 += self.dt.0;
            if !probes.is_empty() {
                for (s, p) in scratch.iter_mut().zip(probes) {
                    *s = match lane[p.machine] {
                        Some((g, c, l)) => Celsius(self.batch.lane_value(g, c, l, p.node)),
                        None => self.machines[p.machine].temperature_at(p.node),
                    };
                }
                sink(self.time, scratch);
            }
        }

        // Span epilogue: one scatter plus per-machine span accounting,
        // and the inlet fields batched machines skipped per tick.
        self.batch.finish_span(&mut self.machines, span);
        for m in 0..n {
            if lane[m].is_some() {
                self.machines[m].set_inlet_field(inlet_now[m]);
            } else {
                self.machines[m].finish_span(span);
            }
        }

        // Bulk metrics: counters stay exact; the latency histograms get
        // one per-tick mean observation per span.
        if self.instrumented {
            let span_u64 = span as u64;
            self.metrics.ticks.add(span_u64);
            self.metrics.fused_ticks.add(span_u64);
            self.metrics.fused_spans.observe(span_u64);
            self.metrics.solver.ticks.add(n as u64 * span_u64);
            let solo_substeps: u64 = (0..n)
                .filter(|&m| lane[m].is_none())
                .map(|m| self.machines[m].current_substeps() as u64)
                .sum();
            self.metrics
                .solver
                .substeps
                .add((self.batch.planned_substeps() + solo_substeps) * span_u64);
            if let Some(started) = started {
                let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                self.metrics.tick_nanos.observe(nanos / span_u64);
            }
        }
        if trace_span.is_live() {
            let args = vec![
                (Cow::Borrowed("ticks"), span.to_string()),
                (Cow::Borrowed("machines"), n.to_string()),
            ];
            self.tracer.end_with_args(trace_span, args);
        }
    }
}

/// Runs a unified work-item list on the persistent pool and books the
/// pool's telemetry: queue depth and resize count every run, busy/idle
/// nanoseconds on 1-in-[`TICK_LATENCY_SAMPLE`] sampled runs. Worker
/// busy spans follow the same sampling cadence: `trace_parent` is only
/// forwarded on sampled runs, so an attached tracer adds per-worker
/// spans at 1-in-[`TICK_LATENCY_SAMPLE`] density rather than per tick.
fn run_on_pool(
    pool: &mut TickPool,
    metrics: &ClusterMetrics,
    instrumented: bool,
    pool_runs: &mut u64,
    items: &mut [WorkItem<'_>],
    threads: usize,
    trace_parent: u64,
) {
    let sample =
        telemetry::enabled() && instrumented && pool_runs.is_multiple_of(TICK_LATENCY_SAMPLE);
    *pool_runs += 1;
    let depth = items.len() as u64;
    let resizes_before = pool.resizes();
    let stats = pool.run(
        items,
        threads,
        sample,
        if sample { trace_parent } else { 0 },
    );
    if instrumented {
        metrics.pool_queue_depth.observe(depth);
        metrics.pool_resizes.add(pool.resizes() - resizes_before);
        metrics.pool_workers.set(pool.worker_count() as f64);
        if let Some(stats) = stats {
            let wall = stats.run_nanos.saturating_mul(threads as u64);
            metrics.pool_busy_nanos.add(stats.busy_nanos);
            metrics
                .pool_idle_nanos
                .add(wall.saturating_sub(stats.busy_nanos));
        }
    }
}

/// The temperature the inter-machine graph observes at a machine's
/// exhaust: the mean over its exhaust air regions (in model node order),
/// or its inlet temperature if it has none.
fn exhaust_temperature(solver: &Solver, exhaust_nodes: &[u32]) -> Celsius {
    if exhaust_nodes.is_empty() {
        return solver.inlet_temperature();
    }
    let mut sum = 0.0;
    for &i in exhaust_nodes {
        sum += solver.temperature_at(i as usize).0;
    }
    Celsius(sum / exhaust_nodes.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::solver::SolverConfig;

    #[test]
    fn cluster_of_four_steps_and_heats() {
        let cluster = presets::validation_cluster(4);
        let mut s = ClusterSolver::new(&cluster, SolverConfig::default()).unwrap();
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        for name in ["machine1", "machine2", "machine3", "machine4"] {
            s.set_utilization(name, "cpu", 1.0).unwrap();
        }
        s.step_for(1200);
        for name in s
            .machine_names()
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
        {
            let t = s.temperature(&name, "cpu").unwrap();
            assert!(t.0 > 40.0, "{name} cpu stayed at {t}");
        }
        // The shared exhaust junction warms above the supply.
        let exhaust = s.junction_temperature("cluster_exhaust").unwrap();
        assert!(exhaust.0 > 21.0, "cluster exhaust at {exhaust}");
    }

    #[test]
    fn forced_inlet_overrides_the_room_graph() {
        let cluster = presets::validation_cluster(2);
        let mut s = ClusterSolver::new(&cluster, SolverConfig::default()).unwrap();
        s.force_inlet("machine1", Celsius(38.6)).unwrap();
        s.step_for(5);
        let t1 = s.machine("machine1").unwrap().inlet_temperature();
        let t2 = s.machine("machine2").unwrap().inlet_temperature();
        assert_eq!(t1, Celsius(38.6));
        assert!((t2.0 - 21.6).abs() < 0.5);
        s.release_inlet("machine1").unwrap();
        s.step_for(5);
        let t1 = s.machine("machine1").unwrap().inlet_temperature();
        assert!((t1.0 - 21.6).abs() < 0.5, "inlet did not recover: {t1}");
    }

    #[test]
    fn supply_temperature_reaches_all_machines() {
        let cluster = presets::validation_cluster(2);
        let mut s = ClusterSolver::new(&cluster, SolverConfig::default()).unwrap();
        s.set_supply_temperature("ac", Celsius(30.0)).unwrap();
        s.step_for(3);
        for name in ["machine1", "machine2"] {
            let t = s.machine(name).unwrap().inlet_temperature();
            assert!((t.0 - 30.0).abs() < 1e-9, "{name} inlet at {t}");
        }
        assert!(s.set_supply_temperature("ghost", Celsius(1.0)).is_err());
    }

    #[test]
    fn unknown_machine_errors() {
        let cluster = presets::validation_cluster(1);
        let mut s = ClusterSolver::new(&cluster, SolverConfig::default()).unwrap();
        assert!(matches!(
            s.machine("nope"),
            Err(Error::UnknownMachine { .. })
        ));
        assert!(s.machine_mut("nope").is_err());
        assert!(s.force_inlet("nope", Celsius(1.0)).is_err());
        assert!(s.temperature("nope", "cpu").is_err());
        assert!(s.junction_temperature("nope").is_err());
    }

    #[test]
    fn time_advances_with_ticks() {
        let cluster = presets::validation_cluster(1);
        let mut s = ClusterSolver::new(&cluster, SolverConfig::default()).unwrap();
        s.step_for(42);
        assert!((s.time().0 - 42.0).abs() < 1e-12);
    }

    #[test]
    fn thread_policy_clamps_and_defaults() {
        let cluster = presets::validation_cluster(4);
        let mut s = ClusterSolver::new(&cluster, SolverConfig::default()).unwrap();
        // 4 machines is under the serial cutoff.
        assert_eq!(s.effective_threads(), 1);
        s.set_threads(16);
        assert_eq!(s.effective_threads(), 4);
        s.set_threads(2);
        assert_eq!(s.effective_threads(), 2);
        // The 0 sentinel on a room above the cutoff resolves to the
        // host's parallelism, capped at the machine count.
        let cluster = presets::validation_cluster(12);
        let s = ClusterSolver::new(&cluster, SolverConfig::default()).unwrap();
        let auto = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(12);
        assert_eq!(s.effective_threads(), auto);
    }

    #[test]
    fn pool_caps_workers_at_the_thread_count() {
        // A cluster with both solo and batched work in the same tick:
        // the legacy spawn path would run 2×threads scoped threads here;
        // the unified pool queue must hold exactly `threads` workers.
        let cluster = presets::validation_cluster(12);
        let mut s = ClusterSolver::new(&cluster, SolverConfig::default()).unwrap();
        s.machine_mut("machine3")
            .unwrap()
            .set_fan_cfm(20.0)
            .unwrap();
        s.machine_mut("machine7")
            .unwrap()
            .set_fan_cfm(25.0)
            .unwrap();
        s.set_threads(2);
        s.step();
        assert!(s.batched_machines() > 0, "batched work present");
        assert!(s.batched_machines() < 12, "solo work present");
        assert_eq!(s.pool_workers(), 2, "one worker per configured thread");
        // A mid-run resize takes effect at the next tick.
        s.set_threads(3);
        s.step();
        assert_eq!(s.pool_workers(), 3);
    }

    #[test]
    fn schedulers_and_fusion_match_exactly() {
        let model = presets::validation_cluster(10);
        let mut pooled = ClusterSolver::new(&model, SolverConfig::default()).unwrap();
        let mut spawned = ClusterSolver::new(&model, SolverConfig::default()).unwrap();
        let mut looped = ClusterSolver::new(&model, SolverConfig::default()).unwrap();
        pooled.set_threads(2);
        spawned.set_threads(2);
        spawned.set_scheduler(TickScheduler::SpawnPerTick);
        looped.set_threads(1);
        for s in [&mut pooled, &mut spawned, &mut looped] {
            s.set_utilization("machine2", "cpu", 0.7).unwrap();
            s.machine_mut("machine5")
                .unwrap()
                .set_fan_cfm(20.0)
                .unwrap();
        }
        // Fused replay (pool), fused replay (spawn per tick for the
        // first tick of each call), and a hand-rolled per-tick loop.
        pooled.step_for(40);
        spawned.step_for(40);
        for _ in 0..40 {
            looped.step();
        }
        for m in 0..pooled.len() {
            let a = pooled.machine_at(m).temperatures();
            let b = spawned.machine_at(m).temperatures();
            let c = looped.machine_at(m).temperatures();
            for (((name, ta), (_, tb)), (_, tc)) in a.iter().zip(&b).zip(&c) {
                assert_eq!(ta.0.to_bits(), tb.0.to_bits(), "machine {m} node {name}");
                assert_eq!(ta.0.to_bits(), tc.0.to_bits(), "machine {m} node {name}");
            }
        }
        assert!(
            (pooled.time().0 - looped.time().0).abs() < 1e-12,
            "span accounting advanced time differently"
        );
    }

    #[test]
    fn recorded_replay_matches_per_tick_observation() {
        let model = presets::validation_cluster(6);
        let mut fused = ClusterSolver::new(&model, SolverConfig::default()).unwrap();
        let mut reference = ClusterSolver::new(&model, SolverConfig::default()).unwrap();
        for s in [&mut fused, &mut reference] {
            s.set_utilization("machine1", "cpu", 1.0).unwrap();
            s.machine_mut("machine4")
                .unwrap()
                .set_fan_cfm(22.0)
                .unwrap();
        }
        let probes = [
            fused.probe("machine1", "cpu").unwrap(),
            fused.probe("machine4", "cpu_air").unwrap(),
        ];
        let mut history = Vec::new();
        fused.step_for_recorded(30, &probes, |time, temps| {
            history.push((time, temps.to_vec()));
        });
        assert_eq!(history.len(), 30);
        for (tick, (time, temps)) in history.iter().enumerate() {
            reference.step();
            assert!((time.0 - reference.time().0).abs() < 1e-12, "tick {tick}");
            let want = [
                reference.temperature("machine1", "cpu").unwrap(),
                reference.temperature("machine4", "cpu_air").unwrap(),
            ];
            for (p, (got, want)) in temps.iter().zip(&want).enumerate() {
                assert_eq!(got.0.to_bits(), want.0.to_bits(), "tick {tick} probe {p}");
            }
        }
        assert!(fused.probe("machine1", "ghost").is_err());
        assert!(fused.probe("ghost", "cpu").is_err());
    }

    #[test]
    #[cfg(feature = "instrument")]
    fn metrics_count_ticks_on_both_paths() {
        let cluster = presets::validation_cluster(12);
        let mut s = ClusterSolver::new(&cluster, SolverConfig::default()).unwrap();
        s.step(); // initial plan: all 12 machines batched
        assert_eq!(s.metrics().batched_machines.get(), 12.0);
        assert!(s.metrics().batch_chunks.get() >= 1.0);

        // A fan fiddle demotes machine3 to the solo path at the replan.
        s.machine_mut("machine3")
            .unwrap()
            .set_fan_cfm(20.0)
            .unwrap();
        s.step_for(9);
        let m = s.metrics();
        assert_eq!(m.ticks.get(), 10, "one cluster tick counted per step");
        assert_eq!(m.solver.ticks.get(), 120, "12 machine ticks per step");
        assert!(m.solver.substeps.get() >= m.solver.ticks.get());
        assert_eq!(m.solo_demotions.get(), 1);
        assert_eq!(m.batched_machines.get(), 11.0);
        assert_eq!(m.solo_machines.get(), 1.0);
        // Construction compiled each machine's flows once; the fiddle
        // recompiled machine3's.
        assert_eq!(m.solver.flow_recomputes.get(), 13);
        // step_for(9) = one normal tick + one fused span of 8; each
        // timed section contributes one latency observation.
        assert!(m.tick_nanos.snapshot().count >= 3);
        assert_eq!(m.fused_ticks.get(), 8);
        assert_eq!(m.fused_spans.snapshot().count, 1);

        // The runtime switch freezes every counter without touching the
        // trajectory.
        s.set_instrumentation(false);
        s.step_for(5);
        assert_eq!(s.metrics().ticks.get(), 10);
        assert_eq!(s.metrics().solver.ticks.get(), 120);
    }

    #[test]
    #[cfg(feature = "instrument")]
    fn tick_spans_narrate_the_causal_phases() {
        let cluster = presets::validation_cluster(12);
        let mut s = ClusterSolver::new(&cluster, SolverConfig::default()).unwrap();
        let tracer = Tracer::new(4096);
        s.set_tracer(tracer.clone());
        s.set_threads(2);
        s.step();

        let spans = tracer.recent(100);
        let find = |name: &str| {
            spans
                .iter()
                .find(|r| r.name == name)
                .unwrap_or_else(|| panic!("missing span {name}"))
        };
        let tick = find("cluster.tick");
        assert_eq!(find("cluster.mix").parent, tick.id);
        let machines = find("cluster.machines");
        assert_eq!(machines.parent, tick.id);
        for name in [
            "batch.plan",
            "batch.gather",
            "cluster.sweep",
            "batch.scatter",
        ] {
            assert_eq!(find(name).parent, machines.id, "{name}");
        }
        // The first pool run is sampled, so each worker recorded a busy
        // span under the sweep, on its own display lane.
        let sweep = find("cluster.sweep");
        let workers: Vec<_> = spans.iter().filter(|r| r.name == "pool.worker").collect();
        assert_eq!(workers.len(), 2);
        for w in &workers {
            assert_eq!(w.parent, sweep.id);
            assert!(w.tid >= 1, "worker lanes start at 1");
        }

        // Fused replay records one boundary span for the whole region.
        s.step_for(10);
        let spans = tracer.recent(1000);
        let fused = spans
            .iter()
            .find(|r| r.name == "cluster.fused_span")
            .expect("fused boundary span");
        let ticks = fused.args.iter().find(|(k, _)| k == "ticks").unwrap();
        assert_eq!(ticks.1, "9", "step_for(10) = 1 normal tick + 9 fused");

        // Tracing never touches the numerics.
        let mut untraced = ClusterSolver::new(&cluster, SolverConfig::default()).unwrap();
        untraced.set_threads(2);
        untraced.step();
        untraced.step_for(10);
        for m in 0..s.len() {
            let a = s.machine_at(m).temperatures();
            let b = untraced.machine_at(m).temperatures();
            for ((name, ta), (_, tb)) in a.iter().zip(&b) {
                assert_eq!(ta.0.to_bits(), tb.0.to_bits(), "machine {m} node {name}");
            }
        }
    }

    #[test]
    fn parallel_stepping_matches_serial_exactly() {
        let model = presets::validation_cluster(6);
        let mut serial = ClusterSolver::new(&model, SolverConfig::default()).unwrap();
        let mut parallel = ClusterSolver::new(&model, SolverConfig::default()).unwrap();
        serial.set_threads(1);
        parallel.set_threads(3);
        for (i, name) in ["machine1", "machine3", "machine5"].iter().enumerate() {
            serial
                .set_utilization(name, "cpu", 0.3 * (i + 1) as f64)
                .unwrap();
            parallel
                .set_utilization(name, "cpu", 0.3 * (i + 1) as f64)
                .unwrap();
        }
        serial.step_for(50);
        parallel.step_for(50);
        for m in 0..serial.len() {
            let a = serial.machine_at(m).temperatures();
            let b = parallel.machine_at(m).temperatures();
            for ((name, ta), (_, tb)) in a.iter().zip(&b) {
                assert_eq!(ta.0.to_bits(), tb.0.to_bits(), "machine {m} node {name}");
            }
        }
    }
}
