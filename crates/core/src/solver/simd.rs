//! Zero-dependency SIMD shim for the batched SoA lane sweep.
//!
//! The batched cluster kernel (`super::batch`) stores chunk state
//! node-major: row `i` holds node `i`'s temperature for every machine
//! (lane) in the chunk. A sub-step is two row passes per node —
//! `next = self_w·cur + ΔT_power`, then `next += w_j·src_j` per
//! operator entry — and lanes never interact, so the passes are pure
//! elementwise multiply-adds over contiguous rows: the textbook SIMD
//! shape.
//!
//! This module supplies that sweep at explicit vector widths behind a
//! small backend enum:
//!
//! | backend  | block      | requires                      |
//! |----------|------------|-------------------------------|
//! | `Scalar` | `f64`      | nothing (reference path)      |
//! | `Sse2`   | `f64x2`    | x86-64 (baseline)             |
//! | `Avx2`   | `f64x4`    | runtime `avx2` + `fma`        |
//! | `Avx512` | `f64x8`    | runtime `avx512f`             |
//! | `Neon`   | `f64x2`    | aarch64 (baseline)            |
//!
//! The best supported backend is detected once per process at runtime
//! ([`SimdBackend::select`]); the `MERCURY_SIMD` environment variable
//! (`scalar`/`sse2`/`avx2`/`avx512`/`neon`/`auto`) overrides detection,
//! falling back to auto-detection when the named backend is not
//! supported on the host. [`super::ClusterSolver::set_simd_backend`]
//! overrides per solver, which is how the equivalence tests force every
//! backend on one machine.
//!
//! ## Exactness contract
//!
//! In the **default mode** every backend is *bit-identical* to the
//! scalar reference sweep: vector lanes round elementwise exactly like
//! scalar `f64` (`mul` then `add`, same IEEE 754 rounding), the
//! per-lane operation order is unchanged (block-outer/entry-inner
//! nesting reorders nothing within a lane because lanes are
//! independent), and remainder lanes (`lanes % width`) run the scalar
//! sequence verbatim. `tests/batch_equivalence.rs` holds every backend
//! to bitwise equality with the per-machine kernel.
//!
//! In the opt-in **fast-math mode** (`ClusterSolver::set_fast_math`)
//! the sweep may contract each multiply-add into a fused FMA (one
//! rounding instead of two) and may reassociate the per-row
//! accumulation. The current kernels contract but do not reassociate;
//! `Sse2`'s vector blocks have no FMA hardware and keep the exact
//! two-rounding sequence (its remainder-lane tail still contracts via
//! `f64::mul_add`), and the `Scalar` backend ignores the flag entirely.
//! Fast-math trajectories are specified by the
//! bounded-divergence contract in `DESIGN.md` §3b ("Vectorized lane
//! sweeps") and `tests/fast_math_divergence.rs`, not by bit-identity.

use std::sync::OnceLock;

/// Instruction-set backend for the batched chunk lane sweep.
///
/// `Scalar` is the portable reference path and the bit-exactness
/// oracle; the vector backends are bit-identical to it in default mode
/// (see the module docs for the argument) and bounded-divergent in
/// fast-math mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimdBackend {
    /// Portable scalar row loop — always available, the reference path.
    #[default]
    Scalar,
    /// 2-wide `f64x2` blocks over SSE2 (x86-64 baseline, no FMA).
    Sse2,
    /// 4-wide `f64x4` blocks over AVX2, FMA contraction in fast-math
    /// mode.
    Avx2,
    /// 8-wide `f64x8` blocks over AVX-512F, FMA contraction in
    /// fast-math mode.
    Avx512,
    /// 2-wide `f64x2` blocks over NEON (aarch64 baseline), FMA
    /// contraction in fast-math mode.
    Neon,
}

impl SimdBackend {
    /// Every backend, best-first. Tests iterate this (filtered by
    /// [`SimdBackend::supported`]) to cover each path the host can run.
    pub const ALL: [SimdBackend; 5] = [
        SimdBackend::Avx512,
        SimdBackend::Avx2,
        SimdBackend::Sse2,
        SimdBackend::Neon,
        SimdBackend::Scalar,
    ];

    /// `f64` lanes per vector block (1 for the scalar path).
    #[must_use]
    pub fn lane_width(self) -> usize {
        match self {
            SimdBackend::Scalar => 1,
            SimdBackend::Sse2 | SimdBackend::Neon => 2,
            SimdBackend::Avx2 => 4,
            SimdBackend::Avx512 => 8,
        }
    }

    /// Stable lowercase name (the `MERCURY_SIMD` vocabulary).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SimdBackend::Scalar => "scalar",
            SimdBackend::Sse2 => "sse2",
            SimdBackend::Avx2 => "avx2",
            SimdBackend::Avx512 => "avx512",
            SimdBackend::Neon => "neon",
        }
    }

    /// Whether this backend can run on the current host (compile-time
    /// architecture plus runtime feature detection).
    #[must_use]
    pub fn supported(self) -> bool {
        match self {
            SimdBackend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            SimdBackend::Sse2 => true,
            #[cfg(target_arch = "x86_64")]
            SimdBackend::Avx2 => {
                // FMA is required up front so the fast-math toggle never
                // changes which code the backend may execute.
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(target_arch = "x86_64")]
            SimdBackend::Avx512 => std::arch::is_x86_feature_detected!("avx512f"),
            #[cfg(target_arch = "aarch64")]
            SimdBackend::Neon => true,
            #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
            _ => false,
            #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
            _ => false,
        }
    }

    /// The widest backend supported on this host.
    #[must_use]
    pub fn detect() -> SimdBackend {
        *Self::ALL
            .iter()
            .find(|b| b.supported())
            .expect("Scalar is always supported")
    }

    /// Process-wide default backend: `MERCURY_SIMD` if set to a
    /// supported backend name, otherwise [`SimdBackend::detect`].
    /// Cached after the first call (the environment is read once).
    #[must_use]
    pub fn select() -> SimdBackend {
        static SELECTED: OnceLock<SimdBackend> = OnceLock::new();
        *SELECTED.get_or_init(|| match std::env::var("MERCURY_SIMD") {
            Ok(name) => match Self::parse(name.trim()) {
                Some(b) if b.supported() => b,
                _ => Self::detect(),
            },
            Err(_) => Self::detect(),
        })
    }

    /// Parses a `MERCURY_SIMD` value; `auto`/unknown yield `None`.
    fn parse(name: &str) -> Option<SimdBackend> {
        Self::ALL.iter().copied().find(|b| b.name() == name)
    }
}

/// Borrowed view of one chunk sub-step: the shared operator rows plus
/// the chunk's `[nodes × lanes]` matrices. `cur` is read-only, `next`
/// is written; `fixed` rows are skipped entirely (both buffers already
/// hold their boundary values — see `batch::BatchSet::begin_tick`).
#[derive(Debug)]
pub(crate) struct Sweep<'a> {
    pub n: usize,
    pub lanes: usize,
    pub op_off: &'a [u32],
    pub op_src: &'a [u32],
    pub op_w: &'a [f64],
    pub self_w: &'a [f64],
    pub fixed: &'a [bool],
    pub power_dt: &'a [f64],
    pub cur: &'a [f64],
    pub next: &'a mut [f64],
}

impl Sweep<'_> {
    fn check(&self) {
        debug_assert_eq!(self.cur.len(), self.n * self.lanes);
        debug_assert_eq!(self.next.len(), self.n * self.lanes);
        debug_assert_eq!(self.power_dt.len(), self.n * self.lanes);
        debug_assert_eq!(self.self_w.len(), self.n);
        debug_assert_eq!(self.fixed.len(), self.n);
        debug_assert_eq!(self.op_off.len(), self.n + 1);
        debug_assert_eq!(self.op_src.len(), self.op_w.len());
        debug_assert!(self.op_src.iter().all(|&s| (s as usize) < self.n));
    }
}

/// Runs one sub-step sweep on the given backend. `fast` selects the
/// fast-math kernels (FMA contraction where the backend has it);
/// default mode is bit-identical to [`substep_scalar`] on every
/// backend. Falls back to the scalar sweep for backends this binary
/// was not compiled for (the cluster never selects those — see
/// [`SimdBackend::supported`]).
pub(crate) fn substep(backend: SimdBackend, fast: bool, sweep: Sweep<'_>) {
    sweep.check();
    match backend {
        SimdBackend::Scalar => substep_scalar(sweep),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the cluster only selects backends that passed
        // `SimdBackend::supported` on this host (sse2 is the x86-64
        // baseline; avx2/avx512 were runtime-detected), and
        // `Sweep::check` validated every index bound the kernels rely
        // on.
        #[allow(unsafe_code)]
        SimdBackend::Sse2 => unsafe { x86::substep_sse2(sweep, fast) },
        #[cfg(target_arch = "x86_64")]
        #[allow(unsafe_code)]
        // SAFETY: as above — avx2+fma runtime-detected before selection.
        SimdBackend::Avx2 => unsafe { x86::substep_avx2(sweep, fast) },
        #[cfg(target_arch = "x86_64")]
        #[allow(unsafe_code)]
        // SAFETY: as above — avx512f runtime-detected before selection.
        SimdBackend::Avx512 => unsafe { x86::substep_avx512(sweep, fast) },
        #[cfg(target_arch = "aarch64")]
        #[allow(unsafe_code)]
        // SAFETY: as above — NEON is the aarch64 baseline.
        SimdBackend::Neon => unsafe { neon::substep_neon(sweep, fast) },
        #[allow(unreachable_patterns)]
        _ => substep_scalar(sweep),
    }
}

/// The scalar reference sweep: the row-pass loop the batched kernel has
/// always run, minus the fixed-row copies (fixed rows are pre-written
/// into both buffers at gather time). Per lane this is the scalar
/// machine kernel's exact operation sequence.
fn substep_scalar(s: Sweep<'_>) {
    let lanes = s.lanes;
    for i in 0..s.n {
        if s.fixed[i] {
            continue;
        }
        let row = i * lanes;
        let sw = s.self_w[i];
        let cur_row = &s.cur[row..row + lanes];
        let pd_row = &s.power_dt[row..row + lanes];
        let next_row = &mut s.next[row..row + lanes];
        for l in 0..lanes {
            next_row[l] = sw * cur_row[l] + pd_row[l];
        }
        for j in s.op_off[i] as usize..s.op_off[i + 1] as usize {
            let src = s.op_src[j] as usize * lanes;
            let w = s.op_w[j];
            let src_row = &s.cur[src..src + lanes];
            let next_row = &mut s.next[row..row + lanes];
            for l in 0..lanes {
                next_row[l] += w * src_row[l];
            }
        }
    }
}

/// Minimal vector-of-`f64` interface the generic sweep is written
/// against. Methods are `unsafe` because the intrinsics they wrap
/// require their target feature to be enabled in the calling context —
/// every call site sits inside a `#[target_feature]` entry point and
/// the impls are `#[inline(always)]` so they compile under it.
#[allow(unsafe_code)]
trait VecF64: Copy {
    const WIDTH: usize;
    unsafe fn load(p: *const f64) -> Self;
    unsafe fn store(self, p: *mut f64);
    unsafe fn splat(x: f64) -> Self;
    unsafe fn mul(a: Self, b: Self) -> Self;
    unsafe fn add(a: Self, b: Self) -> Self;
    /// `a·b + c`. Fused (one rounding) where the backend has FMA
    /// hardware; otherwise the exact two-rounding sequence. Only the
    /// fast-math kernels call this.
    unsafe fn mul_add(a: Self, b: Self, c: Self) -> Self;
}

/// One group of `G` consecutive `V::WIDTH`-lane blocks of a node row,
/// accumulated fully in registers: the `self_w`/`ΔT_power` pass, then
/// the whole operator row, then one store per block. Grouping shares
/// each entry's weight splat and source-offset computation across the
/// `G` blocks and gives the CPU `G` independent accumulate chains to
/// overlap (a single block's chain is latency-bound).
///
/// # Safety
///
/// Caller must hold `V`'s target feature enabled and guarantee
/// `col + G·V::WIDTH ≤ lanes` plus the `Sweep` bounds (`Sweep::check`).
#[allow(unsafe_code, clippy::too_many_arguments)]
#[inline(always)]
unsafe fn sweep_row_group<V: VecF64, const FAST: bool, const G: usize>(
    cur: *const f64,
    pd: *const f64,
    next: *mut f64,
    lanes: usize,
    row: usize,
    col: usize,
    sw: f64,
    op_src: &[u32],
    op_w: &[f64],
    lo: usize,
    hi: usize,
) {
    // SAFETY (whole body): bounds guaranteed by the caller as above.
    unsafe {
        let swv = V::splat(sw);
        let mut acc = [V::splat(0.0); G];
        for (g, a) in acc.iter_mut().enumerate() {
            let off = row + col + g * V::WIDTH;
            let c = V::load(cur.add(off));
            let p = V::load(pd.add(off));
            *a = if FAST {
                V::mul_add(swv, c, p)
            } else {
                V::add(V::mul(swv, c), p)
            };
        }
        for j in lo..hi {
            let srow = *op_src.get_unchecked(j) as usize * lanes + col;
            let w = V::splat(*op_w.get_unchecked(j));
            for (g, a) in acc.iter_mut().enumerate() {
                let v = V::load(cur.add(srow + g * V::WIDTH));
                *a = if FAST {
                    V::mul_add(w, v, *a)
                } else {
                    V::add(*a, V::mul(w, v))
                };
            }
        }
        for (g, a) in acc.iter().enumerate() {
            a.store(next.add(row + col + g * V::WIDTH));
        }
    }
}

/// The generic blocked sweep: for each non-fixed node row, lane blocks
/// accumulate the whole operator row in registers before one store per
/// block (the scalar pass re-loads and re-stores `next` per operator
/// entry) — in groups of four blocks while they last, then singly —
/// and remainder lanes run the scalar sequence. Per lane the operation
/// order is exactly the scalar sweep's, so with `FAST = false` the
/// result is bit-identical.
///
/// # Safety
///
/// Caller must hold `V`'s target feature enabled and have validated
/// the `Sweep` bounds (`Sweep::check`).
#[allow(unsafe_code)]
#[inline(always)]
unsafe fn sweep_vec<V: VecF64, const FAST: bool>(s: Sweep<'_>) {
    let lanes = s.lanes;
    let vec_lanes = (lanes / V::WIDTH) * V::WIDTH;
    let cur = s.cur.as_ptr();
    let pd = s.power_dt.as_ptr();
    let next = s.next.as_mut_ptr();
    for i in 0..s.n {
        // SAFETY (whole body): `Sweep::check` established that every
        // row index `i·lanes + l` with `i < n`, `l < lanes` and every
        // source row `op_src[j]·lanes + l` lies inside the three
        // `n·lanes` matrices, and `op_off[i]..op_off[i+1]` indexes
        // `op_src`/`op_w` (CSR invariant from operator assembly).
        unsafe {
            if *s.fixed.get_unchecked(i) {
                continue;
            }
            let row = i * lanes;
            let sw = *s.self_w.get_unchecked(i);
            let lo = *s.op_off.get_unchecked(i) as usize;
            let hi = *s.op_off.get_unchecked(i + 1) as usize;
            let mut col = 0usize;
            while col + 4 * V::WIDTH <= lanes {
                sweep_row_group::<V, FAST, 4>(
                    cur, pd, next, lanes, row, col, sw, s.op_src, s.op_w, lo, hi,
                );
                col += 4 * V::WIDTH;
            }
            while col + V::WIDTH <= lanes {
                sweep_row_group::<V, FAST, 1>(
                    cur, pd, next, lanes, row, col, sw, s.op_src, s.op_w, lo, hi,
                );
                col += V::WIDTH;
            }
            for l in vec_lanes..lanes {
                let mut t = if FAST {
                    sw.mul_add(*cur.add(row + l), *pd.add(row + l))
                } else {
                    sw * *cur.add(row + l) + *pd.add(row + l)
                };
                for j in lo..hi {
                    let src = *s.op_src.get_unchecked(j) as usize * lanes + l;
                    let w = *s.op_w.get_unchecked(j);
                    t = if FAST {
                        w.mul_add(*cur.add(src), t)
                    } else {
                        t + w * *cur.add(src)
                    };
                }
                *next.add(row + l) = t;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86 {
    use super::{sweep_vec, Sweep, VecF64};
    use std::arch::x86_64::*;

    #[derive(Clone, Copy)]
    struct F64x2(__m128d);

    impl VecF64 for F64x2 {
        const WIDTH: usize = 2;
        #[inline(always)]
        unsafe fn load(p: *const f64) -> Self {
            F64x2(_mm_loadu_pd(p))
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut f64) {
            _mm_storeu_pd(p, self.0);
        }
        #[inline(always)]
        unsafe fn splat(x: f64) -> Self {
            F64x2(_mm_set1_pd(x))
        }
        #[inline(always)]
        unsafe fn mul(a: Self, b: Self) -> Self {
            F64x2(_mm_mul_pd(a.0, b.0))
        }
        #[inline(always)]
        unsafe fn add(a: Self, b: Self) -> Self {
            F64x2(_mm_add_pd(a.0, b.0))
        }
        /// SSE2 has no FMA: fast-math on this backend keeps the exact
        /// two-rounding sequence (contraction is permitted, not
        /// required).
        #[inline(always)]
        unsafe fn mul_add(a: Self, b: Self, c: Self) -> Self {
            F64x2(_mm_add_pd(_mm_mul_pd(a.0, b.0), c.0))
        }
    }

    #[derive(Clone, Copy)]
    struct F64x4(__m256d);

    impl VecF64 for F64x4 {
        const WIDTH: usize = 4;
        #[inline(always)]
        unsafe fn load(p: *const f64) -> Self {
            F64x4(_mm256_loadu_pd(p))
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut f64) {
            _mm256_storeu_pd(p, self.0);
        }
        #[inline(always)]
        unsafe fn splat(x: f64) -> Self {
            F64x4(_mm256_set1_pd(x))
        }
        #[inline(always)]
        unsafe fn mul(a: Self, b: Self) -> Self {
            F64x4(_mm256_mul_pd(a.0, b.0))
        }
        #[inline(always)]
        unsafe fn add(a: Self, b: Self) -> Self {
            F64x4(_mm256_add_pd(a.0, b.0))
        }
        #[inline(always)]
        unsafe fn mul_add(a: Self, b: Self, c: Self) -> Self {
            F64x4(_mm256_fmadd_pd(a.0, b.0, c.0))
        }
    }

    #[derive(Clone, Copy)]
    struct F64x8(__m512d);

    impl VecF64 for F64x8 {
        const WIDTH: usize = 8;
        #[inline(always)]
        unsafe fn load(p: *const f64) -> Self {
            F64x8(_mm512_loadu_pd(p))
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut f64) {
            _mm512_storeu_pd(p, self.0);
        }
        #[inline(always)]
        unsafe fn splat(x: f64) -> Self {
            F64x8(_mm512_set1_pd(x))
        }
        #[inline(always)]
        unsafe fn mul(a: Self, b: Self) -> Self {
            F64x8(_mm512_mul_pd(a.0, b.0))
        }
        #[inline(always)]
        unsafe fn add(a: Self, b: Self) -> Self {
            F64x8(_mm512_add_pd(a.0, b.0))
        }
        #[inline(always)]
        unsafe fn mul_add(a: Self, b: Self, c: Self) -> Self {
            F64x8(_mm512_fmadd_pd(a.0, b.0, c.0))
        }
    }

    /// # Safety
    /// Caller guarantees sse2 (x86-64 baseline) and validated bounds.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn substep_sse2(s: Sweep<'_>, fast: bool) {
        if fast {
            sweep_vec::<F64x2, true>(s);
        } else {
            sweep_vec::<F64x2, false>(s);
        }
    }

    /// # Safety
    /// Caller guarantees runtime avx2+fma and validated bounds.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn substep_avx2(s: Sweep<'_>, fast: bool) {
        if fast {
            sweep_vec::<F64x4, true>(s);
        } else {
            sweep_vec::<F64x4, false>(s);
        }
    }

    /// # Safety
    /// Caller guarantees runtime avx512f and validated bounds.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn substep_avx512(s: Sweep<'_>, fast: bool) {
        if fast {
            sweep_vec::<F64x8, true>(s);
        } else {
            sweep_vec::<F64x8, false>(s);
        }
    }
}

#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)]
mod neon {
    use super::{sweep_vec, Sweep, VecF64};
    use std::arch::aarch64::*;

    #[derive(Clone, Copy)]
    struct F64x2(float64x2_t);

    impl VecF64 for F64x2 {
        const WIDTH: usize = 2;
        #[inline(always)]
        unsafe fn load(p: *const f64) -> Self {
            F64x2(vld1q_f64(p))
        }
        #[inline(always)]
        unsafe fn store(self, p: *mut f64) {
            vst1q_f64(p, self.0);
        }
        #[inline(always)]
        unsafe fn splat(x: f64) -> Self {
            F64x2(vdupq_n_f64(x))
        }
        #[inline(always)]
        unsafe fn mul(a: Self, b: Self) -> Self {
            F64x2(vmulq_f64(a.0, b.0))
        }
        #[inline(always)]
        unsafe fn add(a: Self, b: Self) -> Self {
            F64x2(vaddq_f64(a.0, b.0))
        }
        #[inline(always)]
        unsafe fn mul_add(a: Self, b: Self, c: Self) -> Self {
            // vfmaq(c, a, b) = c + a·b, fused.
            F64x2(vfmaq_f64(c.0, a.0, b.0))
        }
    }

    /// # Safety
    /// Caller guarantees NEON (aarch64 baseline) and validated bounds.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn substep_neon(s: Sweep<'_>, fast: bool) {
        if fast {
            sweep_vec::<F64x2, true>(s);
        } else {
            sweep_vec::<F64x2, false>(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_supported_and_detect_never_panics() {
        assert!(SimdBackend::Scalar.supported());
        let best = SimdBackend::detect();
        assert!(best.supported());
        assert!(best.lane_width() >= 1);
        assert!(SimdBackend::select().supported());
    }

    #[test]
    fn names_round_trip_through_parse() {
        for b in SimdBackend::ALL {
            assert_eq!(SimdBackend::parse(b.name()), Some(b));
        }
        assert_eq!(SimdBackend::parse("auto"), None);
        assert_eq!(SimdBackend::parse("quantum"), None);
    }

    /// Random small operators: every supported backend's exact sweep
    /// must be bitwise equal to the scalar sweep, and the fast-math
    /// sweep must stay finite and close, at awkward lane counts.
    #[test]
    fn vector_sweeps_match_scalar_bitwise() {
        // Deterministic xorshift so the test needs no rng dependency.
        let mut state = 0x9e37_79b9_7f4a_7c15_u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for &lanes in &[1usize, 2, 3, 4, 5, 7, 8, 15, 31, 32] {
            let n = 6;
            // A diagonally-plausible random operator: ~2 entries/node.
            let mut op_off = vec![0u32];
            let mut op_src = Vec::new();
            let mut op_w = Vec::new();
            for i in 0..n {
                for _ in 0..2 {
                    op_src.push(((i + 1 + (rnd() * (n - 1) as f64) as usize) % n) as u32);
                    op_w.push(rnd() * 0.2);
                }
                op_off.push(op_src.len() as u32);
            }
            let self_w: Vec<f64> = (0..n).map(|_| 0.6 + rnd() * 0.4).collect();
            let fixed: Vec<bool> = (0..n).map(|i| i == 0).collect();
            let cur: Vec<f64> = (0..n * lanes).map(|_| 20.0 + rnd() * 30.0).collect();
            let power_dt: Vec<f64> = (0..n * lanes).map(|_| rnd() * 0.01).collect();
            let mut want = vec![0.0; n * lanes];
            // Fixed rows are pre-written into both buffers by the
            // gather; mirror that here.
            for i in 0..n {
                if fixed[i] {
                    want[i * lanes..(i + 1) * lanes]
                        .copy_from_slice(&cur[i * lanes..(i + 1) * lanes]);
                }
            }
            let mut got = want.clone();
            let sweep = |next: &mut [f64], backend, fast| {
                substep(
                    backend,
                    fast,
                    Sweep {
                        n,
                        lanes,
                        op_off: &op_off,
                        op_src: &op_src,
                        op_w: &op_w,
                        self_w: &self_w,
                        fixed: &fixed,
                        power_dt: &power_dt,
                        cur: &cur,
                        next,
                    },
                );
            };
            sweep(&mut want, SimdBackend::Scalar, false);
            for backend in SimdBackend::ALL.into_iter().filter(|b| b.supported()) {
                got.copy_from_slice(&cur);
                for i in 0..n {
                    if !fixed[i] {
                        got[i * lanes..(i + 1) * lanes].fill(0.0);
                    }
                }
                sweep(&mut got, backend, false);
                for (k, (w, g)) in want.iter().zip(&got).enumerate() {
                    assert_eq!(
                        w.to_bits(),
                        g.to_bits(),
                        "{} lanes={lanes} idx={k}: {w} vs {g}",
                        backend.name()
                    );
                }
                // Fast-math: same values within one sub-step's rounding.
                sweep(&mut got, backend, true);
                for (w, g) in want.iter().zip(&got) {
                    assert!((w - g).abs() < 1e-12, "{} fast diverged", backend.name());
                }
            }
        }
    }
}
