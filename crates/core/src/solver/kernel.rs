//! The shared CSR-indexed step kernel.
//!
//! Both solvers used to walk their graphs with per-tick linear scans: the
//! machine solver re-scanned the full air-edge list for every air region
//! in every sub-step (O(nodes × edges)), and the cluster solver rebuilt a
//! `HashMap<ClusterEndpoint, Celsius>` — with freshly allocated `String`
//! keys — every tick. This module flattens both graphs once, at
//! construction (or when a runtime change dirties the topology), into
//! compressed-sparse-row (CSR) adjacency: per-node offset ranges into
//! contiguous edge arrays, plus precomputed `1/(m·c)` rate constants and
//! reusable scratch buffers. [`StepKernel`] owns the per-machine step
//! loop; [`MixGraph`] owns the inter-machine mixing plan. The two solver
//! types in [`super::machine`] and [`super::cluster`] are thin state
//! holders on top.
//!
//! ## Bit-for-bit equivalence with the scan-based step
//!
//! The refactor preserves the exact floating-point results of the
//! original nested-loop implementation wherever the original was
//! deterministic, because every per-node accumulation happens in the same
//! order:
//!
//! - CSR adjacency lists are filled by iterating the edge list in
//!   declaration order, so each node sees its incident edges in exactly
//!   the order the original `for edge in edges` loop delivered them.
//! - `heat_transfer(k, t_a, t_b, dt)` is antisymmetric *exactly* in IEEE
//!   arithmetic (negating a subtraction and negating a product are both
//!   exact), so accumulating `+heat_transfer(k, t_nbr, t_self, dt)` per
//!   node equals the original's paired `dq[a] -= q; dq[b] += q`.
//! - Per-substep constants (the power term, the advection replacement
//!   fraction `alpha`, the per-node incoming mass) are hoisted out of the
//!   loop; they were recomputed from identical inputs every sub-step, so
//!   hoisting cannot change their values.
//!
//! The deliberate deviations, all ulp-level per sub-step and bounded at
//! 1e-9 over hundreds of ticks by the property tests in
//! `tests/kernel_equivalence.rs`:
//!
//! - divisions are hoisted: `dq / (m·c)` becomes a multiply by the
//!   precomputed reciprocal, and the advection mix divides once per
//!   rebuild instead of once per node per sub-step;
//! - the per-node heat sum is factored: `Σ k·(T_j − T_i)·Δt` is computed
//!   as `Δt/(m·c) · (Σ k·T_j − T_i·Σk)` with `Σk` precomputed, halving
//!   the work per incidence. The subtraction of the two partial sums
//!   cancels like the original's per-edge subtractions did, so the
//!   absolute error stays ~1 ulp of `k·T` per sub-step — orders of
//!   magnitude below the solver's 1e-6-class accuracy targets;
//! - the whole sub-step is assembled, at rebuild time, into one sparse
//!   affine row per node — `T'_i = w_self·T_i + Σ w_j·T_j + ΔT_power` —
//!   combining heat conduction and advection weights, and applied as a
//!   single double-buffered sweep. The stability bound keeps every
//!   `w_self` in `[1 − 2·limit, 1]`, so assembling the row reassociates
//!   well-conditioned sums only.

use super::flows::{required_substeps, FlowCache};
use crate::model::{ClusterEndpoint, ClusterModel, NodeId};
use crate::units::{Celsius, JoulesPerKelvin, KilogramsPerSecond, Seconds, WattsPerKelvin};

/// Flattened per-machine stepping state: CSR topology, precomputed rate
/// constants, and scratch buffers, all reused across ticks.
///
/// Built empty with [`StepKernel::new`] and populated by
/// [`StepKernel::rebuild`]; rebuilt whenever the owning solver changes
/// the fan speed, a heat-transfer coefficient, or an air fraction.
#[derive(Debug, Clone)]
pub(crate) struct StepKernel {
    /// Number of nodes.
    n: usize,
    /// Tick length and explicit-Euler stability margin.
    dt: Seconds,
    stability_limit: f64,
    /// Sub-steps per tick and the resulting sub-step length.
    substeps: usize,
    dt_sub: Seconds,
    /// Heat adjacency: node `i`'s incident heat edges occupy
    /// `heat_off[i]..heat_off[i+1]` in the two parallel arrays below,
    /// ordered by edge declaration index.
    heat_off: Vec<u32>,
    /// The node on the far side of each incidence.
    heat_nbr: Vec<u32>,
    /// The edge's conductance, W/K.
    heat_k: Vec<f64>,
    /// Per-node sum of incident conductances, Σk, for the factored heat
    /// update.
    heat_ksum: Vec<f64>,
    /// Per-node `Δt_sub / (m·c)`: converts the factored conductance sum
    /// straight into a temperature delta.
    heat_coef: Vec<f64>,
    /// Incoming-air adjacency, same CSR layout: for node `i`, the
    /// upstream region and the mass flow (kg/s) of each incoming stream.
    air_off: Vec<u32>,
    air_src: Vec<u32>,
    air_flow: Vec<f64>,
    /// Per-node total incoming mass flow (used by the sub-step bound).
    inflow: Vec<KilogramsPerSecond>,
    /// Per-node advection replacement fraction per sub-step; zero for
    /// nodes that don't mix (components, starved regions).
    alpha: Vec<f64>,
    /// Per-node reciprocal of the total incoming mass, for the mix
    /// average (zero where `alpha` is zero).
    inv_streams_mass: Vec<f64>,
    /// Precomputed `1/(m·c)` per node.
    inv_capacity: Vec<f64>,
    /// The assembled sub-step operator: one sparse affine row per node,
    /// `T'_i = self_w[i]·T_i + Σ op_w[j]·T[op_src[j]] + ΔT_power[i]`,
    /// combining the factored heat update and the advection mix. Heat
    /// incidences come first (edge declaration order), then air streams.
    op_off: Vec<u32>,
    op_src: Vec<u32>,
    op_w: Vec<f64>,
    self_w: Vec<f64>,
    /// Scratch: per-node power ΔT for the current tick, and the two
    /// temperature buffers the fused sweep ping-pongs between.
    power_dt: Vec<f64>,
    cur: Vec<f64>,
    next: Vec<f64>,
    /// Dirty-tracked air-flow cache: rebuilds triggered by non-flow
    /// changes (e.g. a heat-k fiddle) replay the stored distribution.
    flow_cache: FlowCache,
}

/// A read-only view of a kernel's assembled sub-step operator, shared
/// with the batched cluster kernel so both paths run the exact same
/// per-node affine rows.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AssembledOp<'a> {
    pub n: usize,
    pub substeps: usize,
    pub op_off: &'a [u32],
    pub op_src: &'a [u32],
    pub op_w: &'a [f64],
    pub self_w: &'a [f64],
    pub inv_capacity: &'a [f64],
}

impl StepKernel {
    /// Creates an empty kernel; call [`StepKernel::rebuild`] before
    /// stepping.
    pub(crate) fn new(dt: Seconds, stability_limit: f64) -> Self {
        StepKernel {
            n: 0,
            dt,
            stability_limit,
            substeps: 1,
            dt_sub: dt,
            heat_off: Vec::new(),
            heat_nbr: Vec::new(),
            heat_k: Vec::new(),
            heat_ksum: Vec::new(),
            heat_coef: Vec::new(),
            air_off: Vec::new(),
            air_src: Vec::new(),
            air_flow: Vec::new(),
            inflow: Vec::new(),
            alpha: Vec::new(),
            inv_streams_mass: Vec::new(),
            inv_capacity: Vec::new(),
            op_off: Vec::new(),
            op_src: Vec::new(),
            op_w: Vec::new(),
            self_w: Vec::new(),
            power_dt: Vec::new(),
            cur: Vec::new(),
            next: Vec::new(),
            flow_cache: FlowCache::new(),
        }
    }

    /// Sub-steps one tick is divided into.
    pub(crate) fn substeps(&self) -> usize {
        self.substeps
    }

    /// Length of one sub-step.
    pub(crate) fn dt_sub(&self) -> Seconds {
        self.dt_sub
    }

    /// Times the air-flow distribution has been recomputed (vs replayed
    /// from the dirty-tracked cache) across all rebuilds.
    pub(crate) fn flow_recomputes(&self) -> u64 {
        self.flow_cache.recomputes()
    }

    /// The assembled sub-step operator, for the batched cluster kernel.
    pub(crate) fn assembled_op(&self) -> AssembledOp<'_> {
        AssembledOp {
            n: self.n,
            substeps: self.substeps,
            op_off: &self.op_off,
            op_src: &self.op_src,
            op_w: &self.op_w,
            self_w: &self.self_w,
            inv_capacity: &self.inv_capacity,
        }
    }

    /// Recompresses the topology and reprices every derived constant.
    ///
    /// `air_mass[i]` is `Some(kg)` for air regions and `None` for
    /// components. Edge lists use the same `(a, b, k)` / `(from, to,
    /// fraction)` layout the solver stores.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn rebuild(
        &mut self,
        heat_edges: &[(usize, usize, WattsPerKelvin)],
        air_edges: &[(usize, usize, f64)],
        topo: &[usize],
        inlets: &[usize],
        fan_mass_flow: KilogramsPerSecond,
        capacity: &[JoulesPerKelvin],
        air_mass: &[Option<f64>],
    ) {
        let n = capacity.len();
        debug_assert!(n < u32::MAX as usize, "node count exceeds CSR index width");
        self.n = n;

        self.inv_capacity.clear();
        self.inv_capacity.extend(capacity.iter().map(|c| 1.0 / c.0));

        // Heat CSR: every edge contributes one incidence to each endpoint.
        // Filling in declaration order keeps each node's adjacency list in
        // declaration order, which preserves the scan-based accumulation
        // order exactly.
        self.heat_off.clear();
        self.heat_off.resize(n + 1, 0);
        for &(a, b, _) in heat_edges {
            self.heat_off[a + 1] += 1;
            self.heat_off[b + 1] += 1;
        }
        for i in 0..n {
            self.heat_off[i + 1] += self.heat_off[i];
        }
        self.heat_nbr.clear();
        self.heat_nbr.resize(2 * heat_edges.len(), 0);
        self.heat_k.clear();
        self.heat_k.resize(2 * heat_edges.len(), 0.0);
        let mut cursor: Vec<u32> = self.heat_off[..n].to_vec();
        for &(a, b, k) in heat_edges {
            let ca = cursor[a] as usize;
            self.heat_nbr[ca] = b as u32;
            self.heat_k[ca] = k.0;
            cursor[a] += 1;
            let cb = cursor[b] as usize;
            self.heat_nbr[cb] = a as u32;
            self.heat_k[cb] = k.0;
            cursor[b] += 1;
        }

        // Air flows: delegate to the shared propagation routine in
        // `flows` — the single home of flow-graph walking — then index
        // the per-edge result into the incoming CSR below. Rebuilds are
        // cold (only on topology-affecting changes), so the id-vector
        // conversions don't matter. The dirty-tracked cache replays the
        // stored distribution when neither the fan mass flow nor an
        // air-edge fraction changed (e.g. a heat-k rebuild).
        let model_edges: Vec<crate::model::AirEdge> = air_edges
            .iter()
            .map(|&(from, to, fraction)| crate::model::AirEdge {
                from: NodeId(from as u32),
                to: NodeId(to as u32),
                fraction,
            })
            .collect();
        let topo_ids: Vec<NodeId> = topo.iter().map(|&i| NodeId(i as u32)).collect();
        let inlet_ids: Vec<NodeId> = inlets.iter().map(|&i| NodeId(i as u32)).collect();
        let (edge_flow, inflow) =
            self.flow_cache
                .flows(n, &model_edges, &topo_ids, &inlet_ids, fan_mass_flow);
        let edge_flow = edge_flow.to_vec();
        self.inflow.clear();
        self.inflow.extend_from_slice(inflow);

        // Incoming-air CSR, again in edge declaration order per node.
        self.air_off.clear();
        self.air_off.resize(n + 1, 0);
        for &(_, to, _) in air_edges {
            self.air_off[to + 1] += 1;
        }
        for i in 0..n {
            self.air_off[i + 1] += self.air_off[i];
        }
        self.air_src.clear();
        self.air_src.resize(air_edges.len(), 0);
        self.air_flow.clear();
        self.air_flow.resize(air_edges.len(), 0.0);
        let mut in_cursor: Vec<u32> = self.air_off[..n].to_vec();
        for (ei, &(from, to, _)) in air_edges.iter().enumerate() {
            let c = in_cursor[to] as usize;
            self.air_src[c] = from as u32;
            self.air_flow[c] = edge_flow[ei].0;
            in_cursor[to] += 1;
        }

        // Sub-step count first: the advection coefficients depend on the
        // sub-step length.
        self.substeps = required_substeps(
            self.dt,
            self.stability_limit,
            heat_edges,
            capacity,
            &self.inflow,
            air_mass,
        );
        self.dt_sub = Seconds(self.dt.0 / self.substeps as f64);

        // Factored heat constants: Σk per node (in adjacency order) and
        // the Δt/(m·c) coefficient that turns the conductance sum into a
        // temperature delta.
        self.heat_ksum.clear();
        self.heat_ksum.resize(n, 0.0);
        for i in 0..n {
            let mut ksum = 0.0;
            for j in self.heat_off[i] as usize..self.heat_off[i + 1] as usize {
                ksum += self.heat_k[j];
            }
            self.heat_ksum[i] = ksum;
        }
        self.heat_coef.clear();
        self.heat_coef
            .extend(self.inv_capacity.iter().map(|inv| self.dt_sub.0 * inv));

        // Advection plan: the per-sub-step replacement fraction and the
        // reciprocal mass for the mix average. The scan-based step
        // recomputed both every sub-step from these same inputs; `alpha`
        // stays zero for nodes that don't mix.
        self.alpha.clear();
        self.alpha.resize(n, 0.0);
        self.inv_streams_mass.clear();
        self.inv_streams_mass.resize(n, 0.0);
        for &node in topo {
            let Some(mass_kg) = air_mass[node] else {
                continue;
            };
            let mut streams_mass = 0.0;
            for j in self.air_off[node] as usize..self.air_off[node + 1] as usize {
                streams_mass += self.air_flow[j];
            }
            if streams_mass > 0.0 {
                self.alpha[node] = crate::physics::replacement_fraction(
                    KilogramsPerSecond(streams_mass),
                    mass_kg,
                    self.dt_sub,
                );
                self.inv_streams_mass[node] = 1.0 / streams_mass;
            }
        }

        // Assemble the sub-step operator: per node, one weight per heat
        // incidence (Δt/(m·c) · k), one per incoming air stream
        // (α · ṁ/Σṁ), and the self weight 1 − Δt/(m·c)·Σk − α. The
        // stability bound keeps the self weight in [1 − 2·limit, 1], so
        // the assembled row is well-conditioned.
        self.op_off.clear();
        self.op_off.resize(n + 1, 0);
        for i in 0..n {
            let heat = self.heat_off[i + 1] - self.heat_off[i];
            let air = if self.alpha[i] != 0.0 {
                self.air_off[i + 1] - self.air_off[i]
            } else {
                0
            };
            self.op_off[i + 1] = self.op_off[i] + heat + air;
        }
        let entries = self.op_off[n] as usize;
        self.op_src.clear();
        self.op_src.resize(entries, 0);
        self.op_w.clear();
        self.op_w.resize(entries, 0.0);
        self.self_w.clear();
        self.self_w.resize(n, 0.0);
        for i in 0..n {
            let mut w = self.op_off[i] as usize;
            for j in self.heat_off[i] as usize..self.heat_off[i + 1] as usize {
                self.op_src[w] = self.heat_nbr[j];
                self.op_w[w] = self.heat_coef[i] * self.heat_k[j];
                w += 1;
            }
            if self.alpha[i] != 0.0 {
                for j in self.air_off[i] as usize..self.air_off[i + 1] as usize {
                    self.op_src[w] = self.air_src[j];
                    self.op_w[w] = self.alpha[i] * self.inv_streams_mass[i] * self.air_flow[j];
                    w += 1;
                }
            }
            debug_assert_eq!(w, self.op_off[i + 1] as usize);
            self.self_w[i] = 1.0 - self.heat_coef[i] * self.heat_ksum[i] - self.alpha[i];
        }

        self.power_dt.clear();
        self.power_dt.resize(n, 0.0);
        self.cur.clear();
        self.cur.resize(n, 0.0);
        self.next.clear();
        self.next.resize(n, 0.0);
    }

    /// Advances `temp` by one tick (all sub-steps).
    ///
    /// `fixed[i]` marks boundary nodes (inlets and force-pinned nodes)
    /// that never change; `power_q[i]` is the heat each node generates
    /// per sub-step (zero for air regions). Returns the total heat
    /// generated over the tick, in Joules.
    pub(crate) fn tick(&mut self, temp: &mut [Celsius], fixed: &[bool], power_q: &[f64]) -> f64 {
        self.tick_span(temp, fixed, power_q, 1)
    }

    /// Advances `temp` by `ticks` ticks with the inputs held constant —
    /// the fused fast path of `Solver::step_for`. Equivalent to calling
    /// [`StepKernel::tick`] `ticks` times bit-for-bit: the per-tick copy
    /// out of and back into `temp` is an exact f64 round trip, so
    /// hoisting both copies (and the input pricing) out of the loop and
    /// running `ticks × substeps` consecutive sweeps changes no value.
    /// Returns the heat generated over the *last* tick (each tick of the
    /// span generates the same amount).
    pub(crate) fn tick_span(
        &mut self,
        temp: &mut [Celsius],
        fixed: &[bool],
        power_q: &[f64],
        ticks: usize,
    ) -> f64 {
        debug_assert_eq!(temp.len(), self.n);
        debug_assert_eq!(fixed.len(), self.n);
        debug_assert_eq!(power_q.len(), self.n);
        // Equation 3: `power_q` is constant across the tick's sub-steps,
        // so the generated total and the per-sub-step ΔT are priced once.
        let mut sum_q = 0.0;
        for (pt, (&q, inv)) in self
            .power_dt
            .iter_mut()
            .zip(power_q.iter().zip(&self.inv_capacity))
        {
            sum_q += q;
            *pt = q * inv;
        }
        let generated = sum_q * self.substeps as f64;

        for (c, t) in self.cur.iter_mut().zip(temp.iter()) {
            *c = t.0;
        }
        for _ in 0..self.substeps * ticks {
            // One fused sweep per sub-step: every node reads the
            // start-of-sub-step snapshot in `cur` and writes `next`, so
            // heat dumped into a region this sub-step is not partially
            // flushed by the same sub-step's advection. Equations 2 and 5
            // plus the advection mix are one precomputed affine row each.
            // (An indexed loop, not iterators: each node reads five
            // parallel arrays plus gathered neighbors.)
            #[allow(clippy::needless_range_loop)]
            for i in 0..self.n {
                let t_i = self.cur[i];
                if fixed[i] {
                    self.next[i] = t_i;
                    continue;
                }
                let lo = self.op_off[i] as usize;
                let hi = self.op_off[i + 1] as usize;
                let mut t = self.self_w[i] * t_i + self.power_dt[i];
                for (&src, &w) in self.op_src[lo..hi].iter().zip(&self.op_w[lo..hi]) {
                    t += w * self.cur[src as usize];
                }
                self.next[i] = t;
            }
            std::mem::swap(&mut self.cur, &mut self.next);
        }
        for (t, &c) in temp.iter_mut().zip(self.cur.iter()) {
            t.0 = c;
        }
        generated
    }
}

/// Flattened inter-machine mixing plan for the cluster solver.
///
/// Endpoints are mapped to dense *slots* — supplies first (model order),
/// then junctions, then one exhaust slot per machine — and each sink's
/// incoming edges are stored as CSR ranges of `(source slot, fraction)`
/// pairs in edge declaration order. A tick fills the slot temperatures
/// once ([`MixGraph::begin_tick`]) and mixes by index, replacing the
/// per-tick `HashMap<ClusterEndpoint, Celsius>` (and its `String` clones)
/// of the original implementation.
#[derive(Debug)]
pub(crate) struct MixGraph {
    n_supply: usize,
    /// Per-junction incoming CSR (junctions in model order).
    junction_off: Vec<u32>,
    junction_src: Vec<u32>,
    junction_frac: Vec<f64>,
    /// Per-machine-inlet incoming CSR.
    inlet_off: Vec<u32>,
    inlet_src: Vec<u32>,
    inlet_frac: Vec<f64>,
    /// Per-machine exhaust node indices (model order within the machine).
    exhaust_off: Vec<u32>,
    exhaust_node: Vec<u32>,
    /// Endpoint temperatures for the current tick, by slot.
    temps: Vec<f64>,
}

impl MixGraph {
    /// Compiles the cluster model's edge list into the dense mixing plan.
    pub(crate) fn build(model: &ClusterModel) -> Self {
        let n_supply = model.supplies().len();
        let n_junction = model.junctions().len();
        let n_machine = model.machines().len();
        let slot = |ep: &ClusterEndpoint| -> usize {
            match ep {
                ClusterEndpoint::Supply(name) => {
                    model.supply_index(name).expect("validated supply")
                }
                ClusterEndpoint::Junction(name) => {
                    n_supply + model.junction_index(name).expect("validated junction")
                }
                ClusterEndpoint::MachineExhaust(i) => n_supply + n_junction + *i,
                ClusterEndpoint::MachineInlet(_) => {
                    unreachable!("machine inlets are sinks, never sources")
                }
            }
        };

        let mut junction_off = vec![0u32; n_junction + 1];
        let mut inlet_off = vec![0u32; n_machine + 1];
        for e in model.edges() {
            match &e.to {
                ClusterEndpoint::Junction(name) => {
                    junction_off[model.junction_index(name).expect("validated junction") + 1] += 1;
                }
                ClusterEndpoint::MachineInlet(i) => inlet_off[*i + 1] += 1,
                // The builder rejects edges into supplies or exhausts.
                _ => {}
            }
        }
        for j in 0..n_junction {
            junction_off[j + 1] += junction_off[j];
        }
        for m in 0..n_machine {
            inlet_off[m + 1] += inlet_off[m];
        }
        let mut junction_src = vec![0u32; junction_off[n_junction] as usize];
        let mut junction_frac = vec![0.0_f64; junction_off[n_junction] as usize];
        let mut inlet_src = vec![0u32; inlet_off[n_machine] as usize];
        let mut inlet_frac = vec![0.0_f64; inlet_off[n_machine] as usize];
        let mut jcursor: Vec<u32> = junction_off[..n_junction].to_vec();
        let mut icursor: Vec<u32> = inlet_off[..n_machine].to_vec();
        for e in model.edges() {
            match &e.to {
                ClusterEndpoint::Junction(name) => {
                    let j = model.junction_index(name).expect("validated junction");
                    let c = jcursor[j] as usize;
                    junction_src[c] = slot(&e.from) as u32;
                    junction_frac[c] = e.fraction;
                    jcursor[j] += 1;
                }
                ClusterEndpoint::MachineInlet(i) => {
                    let c = icursor[*i] as usize;
                    inlet_src[c] = slot(&e.from) as u32;
                    inlet_frac[c] = e.fraction;
                    icursor[*i] += 1;
                }
                _ => {}
            }
        }

        let mut exhaust_off = vec![0u32; n_machine + 1];
        let mut exhaust_node = Vec::new();
        for (m, machine) in model.machines().iter().enumerate() {
            for id in machine.exhausts() {
                exhaust_node.push(id.index() as u32);
            }
            exhaust_off[m + 1] = exhaust_node.len() as u32;
        }

        MixGraph {
            n_supply,
            junction_off,
            junction_src,
            junction_frac,
            inlet_off,
            inlet_src,
            inlet_frac,
            exhaust_off,
            exhaust_node,
            temps: vec![0.0; n_supply + n_junction + n_machine],
        }
    }

    /// Node indices of machine `m`'s exhaust air regions.
    pub(crate) fn exhaust_nodes(&self, m: usize) -> &[u32] {
        &self.exhaust_node[self.exhaust_off[m] as usize..self.exhaust_off[m + 1] as usize]
    }

    /// Loads this tick's endpoint temperatures into the slot array.
    pub(crate) fn begin_tick(
        &mut self,
        supplies: &[Celsius],
        junctions: &[Celsius],
        exhausts: &[Celsius],
    ) {
        let mut w = 0;
        for t in supplies.iter().chain(junctions).chain(exhausts) {
            self.temps[w] = t.0;
            w += 1;
        }
        debug_assert_eq!(w, self.temps.len());
    }

    /// Mixes junction `j` from its incoming edges and publishes the
    /// result to its slot, so later junctions and the machine inlets see
    /// the updated value — matching the original single junction pass.
    /// Returns `None` for a junction with no incoming edges.
    pub(crate) fn mix_junction(&mut self, j: usize) -> Option<Celsius> {
        let t = self.mix(
            &self.junction_src[self.junction_off[j] as usize..self.junction_off[j + 1] as usize],
            &self.junction_frac[self.junction_off[j] as usize..self.junction_off[j + 1] as usize],
        )?;
        self.temps[self.n_supply + j] = t.0;
        Some(t)
    }

    /// Mixes machine `m`'s inlet temperature from its incoming edges.
    pub(crate) fn mix_inlet(&self, m: usize) -> Option<Celsius> {
        self.mix(
            &self.inlet_src[self.inlet_off[m] as usize..self.inlet_off[m + 1] as usize],
            &self.inlet_frac[self.inlet_off[m] as usize..self.inlet_off[m + 1] as usize],
        )
    }

    /// Fraction-weighted average over `(source slot, fraction)` pairs, in
    /// the same accumulation order as the original edge-list scan.
    fn mix(&self, src: &[u32], frac: &[f64]) -> Option<Celsius> {
        let mut weight = 0.0;
        let mut sum = 0.0;
        for (&s, &f) in src.iter().zip(frac) {
            weight += f;
            sum += f * self.temps[s as usize];
        }
        if weight > 0.0 {
            Some(Celsius(sum / weight))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::cluster::mixed_inlet_temperature;
    use crate::model::{ClusterEndpoint, ClusterModel, MachineModel};
    use std::collections::HashMap;

    fn machine(name: &str) -> MachineModel {
        let mut b = MachineModel::builder(name);
        b.component("cpu")
            .mass_kg(0.1)
            .specific_heat(896.0)
            .power_range(7.0, 31.0);
        b.inlet("inlet");
        b.air("cpu_air");
        b.exhaust("exhaust");
        b.heat_edge("cpu", "cpu_air", 0.75).unwrap();
        b.air_edge("inlet", "cpu_air", 1.0).unwrap();
        b.air_edge("cpu_air", "exhaust", 1.0).unwrap();
        b.build().unwrap()
    }

    /// Two machines, one junction, recirculation from the junction back
    /// into machine 1's inlet.
    fn recirculating_cluster() -> ClusterModel {
        let mut b = ClusterModel::builder();
        b.supply("ac", 18.0);
        b.junction("room");
        let m0 = b.machine(machine("m1"));
        let m1 = b.machine(machine("m2"));
        b.edge(
            ClusterEndpoint::Supply("ac".into()),
            ClusterEndpoint::MachineInlet(m0),
            0.8,
        );
        b.edge(
            ClusterEndpoint::Junction("room".into()),
            ClusterEndpoint::MachineInlet(m0),
            0.2,
        );
        b.edge(
            ClusterEndpoint::Supply("ac".into()),
            ClusterEndpoint::MachineInlet(m1),
            1.0,
        );
        b.edge(
            ClusterEndpoint::MachineExhaust(m0),
            ClusterEndpoint::Junction("room".into()),
            1.0,
        );
        b.edge(
            ClusterEndpoint::MachineExhaust(m1),
            ClusterEndpoint::Junction("room".into()),
            1.0,
        );
        b.build().unwrap()
    }

    #[test]
    fn mix_graph_matches_the_hashmap_reference() {
        let model = recirculating_cluster();
        let mut mix = MixGraph::build(&model);
        let supplies = [Celsius(18.0)];
        let junctions = [Celsius(21.0)];
        let exhausts = [Celsius(35.0), Celsius(31.0)];
        mix.begin_tick(&supplies, &junctions, &exhausts);

        // The reference: the HashMap-based helper the cluster solver used
        // before the kernel refactor.
        let mut temps = HashMap::new();
        temps.insert(ClusterEndpoint::Supply("ac".into()), supplies[0]);
        temps.insert(ClusterEndpoint::Junction("room".into()), junctions[0]);
        temps.insert(ClusterEndpoint::MachineExhaust(0), exhausts[0]);
        temps.insert(ClusterEndpoint::MachineExhaust(1), exhausts[1]);

        let jt = mix.mix_junction(0).unwrap();
        let expected = mixed_inlet_temperature(
            model.edges(),
            &ClusterEndpoint::Junction("room".into()),
            &temps,
        )
        .unwrap();
        assert_eq!(jt.0, expected.0);
        // The junction pass publishes before inlets mix, as the original
        // single pass did.
        temps.insert(ClusterEndpoint::Junction("room".into()), expected);

        for m in 0..2 {
            let got = mix.mix_inlet(m).unwrap();
            let want =
                mixed_inlet_temperature(model.edges(), &ClusterEndpoint::MachineInlet(m), &temps)
                    .unwrap();
            assert_eq!(got.0, want.0, "machine {m} inlet");
        }
    }

    #[test]
    fn mix_graph_exposes_exhaust_nodes_in_model_order() {
        let model = recirculating_cluster();
        let mix = MixGraph::build(&model);
        for m in 0..2 {
            let nodes = mix.exhaust_nodes(m);
            let expected: Vec<u32> = model.machines()[m]
                .exhausts()
                .iter()
                .map(|id| id.index() as u32)
                .collect();
            assert_eq!(nodes, expected.as_slice());
        }
    }

    #[test]
    fn kernel_reuses_scratch_and_counts_substeps() {
        let model = machine("m");
        let mut kernel = StepKernel::new(Seconds(1.0), 0.25);
        let capacity: Vec<JoulesPerKelvin> = model.nodes().iter().map(|n| n.capacity()).collect();
        let air_mass: Vec<Option<f64>> = model
            .nodes()
            .iter()
            .map(|n| n.as_air().map(|a| a.mass_kg))
            .collect();
        let heat_edges: Vec<(usize, usize, WattsPerKelvin)> = model
            .heat_edges()
            .iter()
            .map(|e| (e.a.index(), e.b.index(), e.k))
            .collect();
        let air_edges: Vec<(usize, usize, f64)> = model
            .air_edges()
            .iter()
            .map(|e| (e.from.index(), e.to.index(), e.fraction))
            .collect();
        let topo: Vec<usize> = model.topo_order().iter().map(|id| id.index()).collect();
        let inlets: Vec<usize> = model.inlets().iter().map(|id| id.index()).collect();
        kernel.rebuild(
            &heat_edges,
            &air_edges,
            &topo,
            &inlets,
            model.fan().mass_flow(),
            &capacity,
            &air_mass,
        );
        assert!(kernel.substeps() >= 1);
        assert!((kernel.dt_sub().0 * kernel.substeps() as f64 - 1.0).abs() < 1e-12);

        let n = model.nodes().len();
        let mut temp = vec![Celsius(21.6); n];
        let fixed: Vec<bool> = model
            .nodes()
            .iter()
            .map(|node| {
                node.as_air()
                    .map(|a| a.kind == crate::model::AirKind::Inlet)
                    .unwrap_or(false)
            })
            .collect();
        let mut power_q = vec![0.0; n];
        power_q[0] = 31.0 * kernel.dt_sub().0; // cpu at full utilization
        let generated = kernel.tick(&mut temp, &fixed, &power_q);
        assert!((generated - 31.0).abs() < 1e-9, "generated {generated}");
        // The CPU warmed; the inlet boundary did not move.
        assert!(temp[0].0 > 21.6);
        assert_eq!(temp[1], Celsius(21.6));
    }
}
