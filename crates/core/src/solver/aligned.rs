//! 64-byte-aligned `f64` buffers for the batched chunk matrices.
//!
//! The vectorized lane sweep (`super::simd`) streams `f64x8` blocks
//! through the chunk's `cur`/`next`/`power_dt` matrices. `Vec<f64>`
//! only guarantees 8-byte alignment, so a 64-byte (cache-line /
//! AVX-512 register) block could straddle two lines. [`AlignedVec`]
//! is a minimal fixed-length `f64` buffer whose storage is allocated
//! at 64-byte alignment; it derefs to `[f64]` so the rest of the
//! batch code is oblivious. Rows at odd lane counts are still
//! unaligned mid-matrix — the kernels use unaligned loads and the
//! alignment is a starting-address guarantee that keeps the common
//! full-chunk (32-lane) case line-aligned on every row.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

/// Cache-line / widest-vector alignment for chunk matrices.
pub(crate) const MATRIX_ALIGN: usize = 64;

/// A fixed-length, zero-initialised `f64` buffer aligned to
/// [`MATRIX_ALIGN`] bytes. Supports exactly what the chunk matrices
/// need: allocate zeroed, index as a slice, swap via `std::mem::swap`.
pub(crate) struct AlignedVec {
    ptr: NonNull<f64>,
    len: usize,
}

// SAFETY: AlignedVec uniquely owns its allocation and holds plain
// `f64`s; it is as thread-safe as `Vec<f64>`.
#[allow(unsafe_code)]
unsafe impl Send for AlignedVec {}
#[allow(unsafe_code)]
unsafe impl Sync for AlignedVec {}

impl AlignedVec {
    /// Allocates `len` zeroed `f64`s at 64-byte alignment.
    #[allow(unsafe_code)]
    pub(crate) fn zeroed(len: usize) -> AlignedVec {
        let layout = Self::layout(len);
        // SAFETY: `layout` has non-zero size (len is clamped to >= 1
        // below) and valid alignment; a null return is routed to the
        // global allocation-error handler. All-zero bits are a valid
        // `f64` (0.0), so the buffer is fully initialised.
        let ptr = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(ptr.cast::<f64>()) else {
            handle_alloc_error(layout);
        };
        debug_assert_eq!(ptr.as_ptr() as usize % MATRIX_ALIGN, 0);
        AlignedVec { ptr, len }
    }

    fn layout(len: usize) -> Layout {
        // Zero-size allocations are UB with the global allocator;
        // round a zero-length buffer up to one element.
        Layout::from_size_align(len.max(1) * std::mem::size_of::<f64>(), MATRIX_ALIGN)
            .expect("chunk matrix layout")
    }
}

impl Drop for AlignedVec {
    #[allow(unsafe_code)]
    fn drop(&mut self) {
        // SAFETY: `ptr` came from `alloc_zeroed` with this exact layout.
        unsafe { dealloc(self.ptr.as_ptr().cast(), Self::layout(self.len)) };
    }
}

impl Deref for AlignedVec {
    type Target = [f64];
    #[allow(unsafe_code)]
    fn deref(&self) -> &[f64] {
        // SAFETY: the allocation holds `len` initialised f64s.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl DerefMut for AlignedVec {
    #[allow(unsafe_code)]
    fn deref_mut(&mut self) -> &mut [f64] {
        // SAFETY: as above; `&mut self` guarantees uniqueness.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl std::fmt::Debug for AlignedVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlignedVec")
            .field("len", &self.len)
            .field("align", &MATRIX_ALIGN)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_buffers_are_zeroed_aligned_and_swappable() {
        for len in [0usize, 1, 7, 32, 32 * 12] {
            let mut a = AlignedVec::zeroed(len);
            assert_eq!(a.len(), len);
            assert_eq!(a.as_ptr() as usize % MATRIX_ALIGN, 0);
            assert!(a.iter().all(|&x| x == 0.0));
            if len > 0 {
                a[len - 1] = 42.0;
            }
            let mut b = AlignedVec::zeroed(len);
            std::mem::swap(&mut a, &mut b);
            if len > 0 {
                assert_eq!(b[len - 1], 42.0);
                assert_eq!(a[len - 1], 0.0);
            }
        }
    }
}
