//! Air-flow propagation and stability analysis.

use crate::model::{AirEdge, AirKind, MachineModel, NodeId};
use crate::units::{JoulesPerKelvin, KilogramsPerSecond, Seconds, WattsPerKelvin};

/// Propagates the fan's mass flow through the directed air-flow graph.
///
/// Every inlet sources the full fan mass flow (a machine with several
/// inlets models several fans). Processing nodes in topological order,
/// each node's inflow is the sum of its incoming edge flows and each
/// outgoing edge carries `inflow × fraction`.
///
/// Returns `(edge_flows, node_inflows)` indexed like
/// [`MachineModel::air_edges`] and [`MachineModel::nodes`] respectively.
///
/// Runs in O(nodes + edges): the edge list is first grouped by source
/// node (a counting sort that keeps declaration order within each
/// group), so the topological sweep touches each edge exactly once
/// instead of rescanning the full edge list per node. The per-node
/// accumulation order is identical to the naive rescan, so the results
/// are bit-for-bit unchanged.
pub fn air_flows(
    nodes_len: usize,
    air_edges: &[AirEdge],
    topo: &[NodeId],
    inlets: &[NodeId],
    fan_mass_flow: KilogramsPerSecond,
) -> (Vec<KilogramsPerSecond>, Vec<KilogramsPerSecond>) {
    // Group edge indices by source: out_off[i]..out_off[i+1] indexes the
    // edges leaving node i, in declaration order.
    let mut out_off = vec![0u32; nodes_len + 1];
    for e in air_edges {
        out_off[e.from.index() + 1] += 1;
    }
    for i in 0..nodes_len {
        out_off[i + 1] += out_off[i];
    }
    let mut out_edge = vec![0u32; air_edges.len()];
    let mut cursor: Vec<u32> = out_off[..nodes_len].to_vec();
    for (i, e) in air_edges.iter().enumerate() {
        out_edge[cursor[e.from.index()] as usize] = i as u32;
        cursor[e.from.index()] += 1;
    }

    let mut edge_flow = vec![KilogramsPerSecond(0.0); air_edges.len()];
    let mut inflow = vec![KilogramsPerSecond(0.0); nodes_len];
    let mut available = vec![0.0_f64; nodes_len];
    for inlet in inlets {
        available[inlet.index()] = fan_mass_flow.0;
    }
    for node in topo {
        let out = available[node.index()];
        if out <= 0.0 {
            continue;
        }
        for &i in &out_edge[out_off[node.index()] as usize..out_off[node.index() + 1] as usize] {
            let e = &air_edges[i as usize];
            let f = out * e.fraction;
            edge_flow[i as usize] = KilogramsPerSecond(f);
            inflow[e.to.index()].0 += f;
            available[e.to.index()] += f;
        }
    }
    (edge_flow, inflow)
}

/// Computes the number of sub-steps needed for one tick of `dt` seconds to
/// stay within the explicit-Euler stability limit.
///
/// Two families of rates are considered, in 1/s:
/// - conductive: `k / (m·c)` on each side of every heat edge, summed per
///   node (a node touched by several strong edges is faster than any single
///   edge suggests), and
/// - advective: `ṁ_in / m_air` for every air region.
///
/// The sub-step count is `ceil(dt · max_rate / limit)`, at least 1.
pub fn required_substeps(
    dt: Seconds,
    limit: f64,
    heat_edges: &[(usize, usize, WattsPerKelvin)],
    capacity: &[JoulesPerKelvin],
    inflow: &[KilogramsPerSecond],
    air_mass: &[Option<f64>],
) -> usize {
    let n = capacity.len();
    let mut conductive = vec![0.0_f64; n];
    for (a, b, k) in heat_edges {
        conductive[*a] += k.0 / capacity[*a].0;
        conductive[*b] += k.0 / capacity[*b].0;
    }
    let mut max_rate = conductive.iter().copied().fold(0.0_f64, f64::max);
    for (i, mass) in air_mass.iter().enumerate() {
        if let Some(m) = mass {
            if *m > 0.0 {
                max_rate = max_rate.max(inflow[i].0 / m);
            }
        }
    }
    let steps = (dt.0 * max_rate / limit).ceil();
    (steps as usize).max(1)
}

/// Dirty-tracked cache around [`air_flows`].
///
/// A kernel rebuild is triggered by *any* constant change — fan speed,
/// heat-transfer coefficient, air fraction — but the air-flow
/// distribution only depends on the fan's mass flow and the air-edge
/// fractions. The cache keys on exactly those inputs and replays the
/// stored `(edge_flows, node_inflows)` when they are unchanged, so e.g.
/// a `set_heat_k` fiddle no longer re-walks the flow graph and a fan
/// controller that commands the same speed twice pays nothing.
///
/// The recompute counter is observable via [`FlowCache::recomputes`]
/// (surfaced as the `mercury_solver_flow_recomputes_total` metric on
/// `Solver::metrics`) so tests can assert the invalidation contract: a
/// fan-speed change invalidates the cached flows exactly once.
#[derive(Debug, Clone, Default)]
pub struct FlowCache {
    valid: bool,
    /// Cache key: fan mass-flow bits plus every air edge as
    /// `(from, to, fraction bits)` in declaration order.
    key_fan: u64,
    key_edges: Vec<(u32, u32, u64)>,
    edge_flow: Vec<KilogramsPerSecond>,
    inflow: Vec<KilogramsPerSecond>,
    recomputes: u64,
}

impl FlowCache {
    /// Creates an empty (invalid) cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times the cached flows have been (re)computed since construction.
    pub fn recomputes(&self) -> u64 {
        self.recomputes
    }

    fn key_matches(&self, air_edges: &[AirEdge], fan_mass_flow: KilogramsPerSecond) -> bool {
        self.valid
            && self.key_fan == fan_mass_flow.0.to_bits()
            && self.key_edges.len() == air_edges.len()
            && self
                .key_edges
                .iter()
                .zip(air_edges)
                .all(|(&(from, to, frac), e)| {
                    from == e.from.0 && to == e.to.0 && frac == e.fraction.to_bits()
                })
    }

    /// Returns the flow distribution for the given graph, recomputing
    /// via [`air_flows`] only when the fan mass flow or an air-edge
    /// fraction actually changed since the last call.
    pub fn flows(
        &mut self,
        nodes_len: usize,
        air_edges: &[AirEdge],
        topo: &[NodeId],
        inlets: &[NodeId],
        fan_mass_flow: KilogramsPerSecond,
    ) -> (&[KilogramsPerSecond], &[KilogramsPerSecond]) {
        if !self.key_matches(air_edges, fan_mass_flow) {
            let (edge_flow, inflow) = air_flows(nodes_len, air_edges, topo, inlets, fan_mass_flow);
            self.edge_flow = edge_flow;
            self.inflow = inflow;
            self.key_fan = fan_mass_flow.0.to_bits();
            self.key_edges.clear();
            self.key_edges.extend(
                air_edges
                    .iter()
                    .map(|e| (e.from.0, e.to.0, e.fraction.to_bits())),
            );
            self.valid = true;
            self.recomputes += 1;
        }
        (&self.edge_flow, &self.inflow)
    }
}

/// Convenience: compute flows straight from a model at its nominal fan
/// speed. Used by tests and by the solver at construction.
pub fn model_air_flows(model: &MachineModel) -> (Vec<KilogramsPerSecond>, Vec<KilogramsPerSecond>) {
    let inlets: Vec<NodeId> = model
        .nodes()
        .iter()
        .enumerate()
        .filter(|(_, n)| n.is_air_kind(AirKind::Inlet))
        .map(|(i, _)| NodeId(i as u32))
        .collect();
    air_flows(
        model.nodes().len(),
        model.air_edges(),
        model.topo_order(),
        &inlets,
        model.fan().mass_flow(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MachineModel;

    /// Build the paper's intra-machine air-flow graph (Figure 1b) with the
    /// Table 1 fractions and check flow conservation.
    fn paper_airflow_model() -> MachineModel {
        let mut b = MachineModel::builder("m");
        b.inlet("inlet");
        for name in [
            "disk_air",
            "ps_air",
            "void_air",
            "disk_air_down",
            "ps_air_down",
            "cpu_air",
            "cpu_air_down",
        ] {
            b.air(name);
        }
        b.exhaust("exhaust");
        b.air_edge("inlet", "disk_air", 0.4).unwrap();
        b.air_edge("inlet", "ps_air", 0.5).unwrap();
        b.air_edge("inlet", "void_air", 0.1).unwrap();
        b.air_edge("disk_air", "disk_air_down", 1.0).unwrap();
        b.air_edge("disk_air_down", "void_air", 1.0).unwrap();
        b.air_edge("ps_air", "ps_air_down", 1.0).unwrap();
        b.air_edge("ps_air_down", "void_air", 0.85).unwrap();
        b.air_edge("ps_air_down", "cpu_air", 0.15).unwrap();
        b.air_edge("void_air", "cpu_air", 0.05).unwrap();
        b.air_edge("void_air", "exhaust", 0.95).unwrap();
        b.air_edge("cpu_air", "cpu_air_down", 1.0).unwrap();
        b.air_edge("cpu_air_down", "exhaust", 1.0).unwrap();
        b.fan_cfm(38.6);
        b.build().unwrap()
    }

    #[test]
    fn flows_are_conserved_through_the_paper_graph() {
        let model = paper_airflow_model();
        let (_, inflow) = model_air_flows(&model);
        let fan = model.fan().mass_flow().0;
        let at = |name: &str| inflow[model.node_id(name).unwrap().index()].0;

        assert!((at("disk_air") - 0.4 * fan).abs() < 1e-12);
        assert!((at("ps_air") - 0.5 * fan).abs() < 1e-12);
        // void = 0.1 (inlet) + 0.4 (disk chain) + 0.5*0.85 (ps chain)
        let void_expect = (0.1 + 0.4 + 0.5 * 0.85) * fan;
        assert!((at("void_air") - void_expect).abs() < 1e-12);
        // cpu air = ps_down 0.15 of 0.5 + void 0.05 of its inflow
        let cpu_expect = 0.5 * 0.15 * fan + 0.05 * void_expect;
        assert!((at("cpu_air") - cpu_expect).abs() < 1e-12);
        // everything reaches the exhaust: 0.95*void + cpu chain
        let exhaust_expect = 0.95 * void_expect + cpu_expect;
        assert!((at("exhaust") - exhaust_expect).abs() < 1e-12);
        // total conservation: exhaust receives the full fan flow
        assert!((exhaust_expect - fan).abs() < 1e-12);
    }

    #[test]
    fn substeps_scale_with_the_fastest_coupling() {
        // One slow edge: 0.75 W/K on 135 J/K -> rate ~0.0055/s -> 1 substep.
        let caps = vec![JoulesPerKelvin(135.296), JoulesPerKelvin(135.296)];
        let edges = vec![(0usize, 1usize, WattsPerKelvin(0.75))];
        let inflow = vec![KilogramsPerSecond(0.0); 2];
        let air = vec![None, None];
        assert_eq!(
            required_substeps(Seconds(1.0), 0.25, &edges, &caps, &inflow, &air),
            1
        );

        // A fast edge: 10 W/K on a 6 J/K air region -> rate 1.67/s -> 7 substeps.
        let caps = vec![JoulesPerKelvin(894.0), JoulesPerKelvin(6.0)];
        let edges = vec![(0usize, 1usize, WattsPerKelvin(10.0))];
        let n = required_substeps(Seconds(1.0), 0.25, &edges, &caps, &inflow, &air);
        assert_eq!(n, (10.0_f64 / 6.0 / 0.25).ceil() as usize);
    }

    #[test]
    fn substeps_account_for_advection() {
        let caps = vec![JoulesPerKelvin(6.0)];
        let inflow = vec![KilogramsPerSecond(0.02)];
        let air = vec![Some(0.006)];
        // advective rate = 0.02/0.006 = 3.33/s -> ceil(3.33/0.25) = 14.
        let n = required_substeps(Seconds(1.0), 0.25, &[], &caps, &inflow, &air);
        assert_eq!(n, 14);
    }

    #[test]
    fn substeps_never_below_one() {
        let caps = vec![JoulesPerKelvin(1000.0)];
        let n = required_substeps(
            Seconds(1.0),
            0.25,
            &[],
            &caps,
            &[KilogramsPerSecond(0.0)],
            &[None],
        );
        assert_eq!(n, 1);
    }

    #[test]
    fn flow_cache_recomputes_only_on_flow_affecting_changes() {
        let model = paper_airflow_model();
        let inlets: Vec<NodeId> = model.inlets();
        let mut cache = FlowCache::new();
        assert_eq!(cache.recomputes(), 0);

        let fan = model.fan().mass_flow();
        let (direct_edges, direct_inflow) = air_flows(
            model.nodes().len(),
            model.air_edges(),
            model.topo_order(),
            &inlets,
            fan,
        );
        let (edges, inflow) = cache.flows(
            model.nodes().len(),
            model.air_edges(),
            model.topo_order(),
            &inlets,
            fan,
        );
        assert_eq!(edges, direct_edges.as_slice());
        assert_eq!(inflow, direct_inflow.as_slice());
        assert_eq!(cache.recomputes(), 1);

        // Same inputs: served from cache.
        for _ in 0..5 {
            cache.flows(
                model.nodes().len(),
                model.air_edges(),
                model.topo_order(),
                &inlets,
                fan,
            );
        }
        assert_eq!(cache.recomputes(), 1);

        // A fan change invalidates exactly once.
        let faster = KilogramsPerSecond(fan.0 * 2.0);
        cache.flows(
            model.nodes().len(),
            model.air_edges(),
            model.topo_order(),
            &inlets,
            faster,
        );
        assert_eq!(cache.recomputes(), 2);
        cache.flows(
            model.nodes().len(),
            model.air_edges(),
            model.topo_order(),
            &inlets,
            faster,
        );
        assert_eq!(cache.recomputes(), 2);

        // A fraction change invalidates too.
        let mut edited = model.air_edges().to_vec();
        edited[0].fraction = 0.35;
        edited[1].fraction = 0.55;
        cache.flows(
            model.nodes().len(),
            &edited,
            model.topo_order(),
            &inlets,
            faster,
        );
        assert_eq!(cache.recomputes(), 3);
    }

    #[test]
    fn rates_sum_over_multiple_edges_on_one_node() {
        // Two edges of 1 W/K each into a 4 J/K node: combined rate 0.5/s.
        let caps = vec![
            JoulesPerKelvin(4.0),
            JoulesPerKelvin(1e9),
            JoulesPerKelvin(1e9),
        ];
        let edges = vec![
            (0usize, 1usize, WattsPerKelvin(1.0)),
            (0usize, 2usize, WattsPerKelvin(1.0)),
        ];
        let inflow = vec![KilogramsPerSecond(0.0); 3];
        let air = vec![None; 3];
        let n = required_substeps(Seconds(1.0), 0.25, &edges, &caps, &inflow, &air);
        assert_eq!(n, 2); // 0.5 / 0.25
    }
}
