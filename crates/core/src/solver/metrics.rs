//! Always-on solver telemetry: handle bundles for the machine and
//! cluster solvers.
//!
//! The solvers measure themselves unconditionally through detached
//! [`telemetry`] handles — relaxed atomics cheap enough to leave on in
//! production (the measured contract is ≤ 2 % on the 256-machine batched
//! tick; see `DESIGN.md` §"Telemetry"). Nothing is exported anywhere
//! until someone with a [`telemetry::Registry`] calls
//! [`SolverMetrics::register`] / [`ClusterMetrics::register`], which is
//! how `net::SolverService` builds its scrape surface without the
//! solvers knowing a network exists.
//!
//! Instrumentation must never perturb the physics: handles are updated
//! strictly *outside* the kernel arithmetic (tick prologues/epilogues
//! and plan rebuilds), so serial, parallel, and batched trajectories
//! stay bit-identical with telemetry on, off, or compiled out.
//!
//! A cluster shares **one** [`SolverMetrics`] across all of its machine
//! solvers (handles are `Arc`-backed, so sharing is cloning): the
//! interesting signal at room scale is "ticks per second across the
//! room", not 1024 separate counters.

use telemetry::{Counter, Gauge, Histogram, Registry};

/// How often a solo [`super::Solver::step`] samples its own latency: one
/// tick in 64. Sampling keeps two `Instant::now` calls off the common
/// tick while still collecting thousands of latency points per emulated
/// hour; counters are exact (every tick), only the histogram samples.
pub(crate) const TICK_LATENCY_SAMPLE: u64 = 64;

/// Whether a span of `ticks` ticks starting after `start` completed
/// ticks crosses a 1-in-[`TICK_LATENCY_SAMPLE`] sampling point — the
/// fused replay paths time the whole span (and observe the per-tick
/// mean) exactly when the per-tick path would have sampled.
pub(crate) fn span_samples(start: u64, ticks: usize) -> bool {
    let to_next = (TICK_LATENCY_SAMPLE - start % TICK_LATENCY_SAMPLE) % TICK_LATENCY_SAMPLE;
    to_next < ticks as u64
}

/// Metric handles shared by every machine solver of one emulated system.
///
/// All handles are cheap to clone and clones share their cells, so a
/// cluster hands one bundle to each of its machines.
#[derive(Debug, Clone, Default)]
pub struct SolverMetrics {
    /// `mercury_solver_ticks_total` — machine ticks completed, on either
    /// the solo or the batched path.
    pub ticks: Counter,
    /// `mercury_solver_tick_seconds` — sampled solo-path tick latency,
    /// recorded in nanoseconds (exposed in seconds). Batched machines
    /// are timed per cluster tick instead; see
    /// [`ClusterMetrics::tick_nanos`].
    pub tick_nanos: Histogram,
    /// `mercury_solver_substeps_total` — explicit-Euler sub-steps
    /// executed (ticks × the stability-limited sub-step count).
    pub substeps: Counter,
    /// `mercury_solver_flow_recomputes_total` — air-flow distribution
    /// recompilations, aggregated across machines. The initial compile
    /// counts as one; only changes that move the flows (fan speed, air
    /// fractions) add more.
    pub flow_recomputes: Counter,
    /// `mercury_solver_simd_lane_width` — `f64` lanes per vector block
    /// in the batched sweep's active SIMD backend (1 = scalar). Set at
    /// cluster construction and on
    /// [`super::ClusterSolver::set_simd_backend`].
    pub simd_lane_width: Gauge,
}

impl SolverMetrics {
    /// Fresh, detached handles (all zero).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the `mercury_solver_*` families on `registry`.
    pub fn register(&self, registry: &Registry) {
        registry.register_counter(
            "mercury_solver_ticks_total",
            "Machine-solver ticks completed (solo and batched paths)",
            &[],
            &self.ticks,
        );
        registry.register_histogram(
            "mercury_solver_tick_seconds",
            "Sampled latency of solo per-machine solver ticks",
            &[],
            &self.tick_nanos,
            1e-9,
        );
        registry.register_counter(
            "mercury_solver_substeps_total",
            "Explicit-Euler sub-steps executed across all machines",
            &[],
            &self.substeps,
        );
        registry.register_counter(
            "mercury_solver_flow_recomputes_total",
            "Air-flow distribution recompilations across all machines",
            &[],
            &self.flow_recomputes,
        );
        registry.register_gauge(
            "mercury_solver_simd_lane_width",
            "f64 lanes per vector block in the batched sweep's SIMD backend",
            &[],
            &self.simd_lane_width,
        );
    }

    /// Folds another bundle's counts into this one — used when a solver
    /// constructed with its own detached bundle is adopted into a
    /// cluster's shared bundle, so work done at construction (the
    /// initial flow pricing) is not lost. Histograms are not folded:
    /// nothing samples latency before adoption.
    pub(crate) fn absorb(&self, other: &SolverMetrics) {
        self.ticks.add(other.ticks.get());
        self.substeps.add(other.substeps.get());
        self.flow_recomputes.add(other.flow_recomputes.get());
    }
}

/// Metric handles owned by one [`super::ClusterSolver`].
#[derive(Debug, Clone, Default)]
pub struct ClusterMetrics {
    /// `mercury_cluster_ticks_total` — whole-room ticks completed.
    pub ticks: Counter,
    /// `mercury_cluster_tick_seconds` — full room-tick latency (mixing
    /// phases + machine stepping), recorded in nanoseconds every tick.
    pub tick_nanos: Histogram,
    /// `mercury_cluster_batched_machines` — machines on the batched SoA
    /// path in the latest tick.
    pub batched_machines: Gauge,
    /// `mercury_cluster_solo_machines` — machines on the per-machine
    /// path in the latest tick.
    pub solo_machines: Gauge,
    /// `mercury_cluster_batch_chunks` — chunks in the current plan.
    pub batch_chunks: Gauge,
    /// `mercury_cluster_chunk_occupancy` — lanes per chunk, observed
    /// each time the batch plan is rebuilt. A healthy replicated room
    /// shows a spike at `CHUNK_LANES`; fragmentation after heavy
    /// fiddling shows up as mass in the low buckets.
    pub chunk_occupancy: Histogram,
    /// `mercury_cluster_solo_demotions_total` — machines that left the
    /// batched path because they diverged from their source model or
    /// grew a force-pinned node.
    pub solo_demotions: Counter,
    /// `mercury_cluster_pool_workers` — persistent tick-pool workers
    /// currently alive (0 until the first parallel tick).
    pub pool_workers: Gauge,
    /// `mercury_cluster_pool_resizes_total` — tick-pool (re)spawns,
    /// including the initial spawn. A healthy run shows exactly one;
    /// churn here means someone is calling `set_threads` per tick.
    pub pool_resizes: Counter,
    /// `mercury_cluster_pool_queue_depth` — work items (solo machines +
    /// batch chunks) handed to the pool per parallel tick.
    pub pool_queue_depth: Histogram,
    /// `mercury_cluster_pool_busy_nanos_total` — summed worker wall time
    /// spent executing items, sampled 1-in-[`TICK_LATENCY_SAMPLE`] pool
    /// runs (the common run carries no worker clock reads).
    pub pool_busy_nanos: Counter,
    /// `mercury_cluster_pool_idle_nanos_total` — summed worker wall time
    /// spent waiting within sampled runs (`workers × run − busy`).
    /// `idle / (idle + busy)` is the pool's wasted-parallelism fraction.
    pub pool_idle_nanos: Counter,
    /// `mercury_cluster_fused_ticks_total` — ticks executed inside fused
    /// replay spans (see `ClusterSolver::step_for`), where plan/gather/
    /// scatter and sampled metrics are paid once per span.
    pub fused_ticks: Counter,
    /// `mercury_cluster_fused_span_ticks` — fused-span lengths, observed
    /// once per span.
    pub fused_spans: Histogram,
    /// The machine-level bundle shared by every solver in the cluster.
    pub solver: SolverMetrics,
}

impl ClusterMetrics {
    /// Fresh, detached handles (all zero).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the `mercury_cluster_*` families — and the shared
    /// `mercury_solver_*` families — on `registry`.
    pub fn register(&self, registry: &Registry) {
        self.solver.register(registry);
        registry.register_counter(
            "mercury_cluster_ticks_total",
            "Whole-room cluster ticks completed",
            &[],
            &self.ticks,
        );
        registry.register_histogram(
            "mercury_cluster_tick_seconds",
            "Full cluster tick latency (mixing + machine stepping)",
            &[],
            &self.tick_nanos,
            1e-9,
        );
        registry.register_gauge(
            "mercury_cluster_batched_machines",
            "Machines stepped on the batched SoA path in the latest tick",
            &[],
            &self.batched_machines,
        );
        registry.register_gauge(
            "mercury_cluster_solo_machines",
            "Machines stepped on the per-machine path in the latest tick",
            &[],
            &self.solo_machines,
        );
        registry.register_gauge(
            "mercury_cluster_batch_chunks",
            "Chunks in the current batch plan",
            &[],
            &self.batch_chunks,
        );
        registry.register_histogram(
            "mercury_cluster_chunk_occupancy",
            "Occupied lanes per batch chunk, observed at plan time",
            &[],
            &self.chunk_occupancy,
            1.0,
        );
        registry.register_counter(
            "mercury_cluster_solo_demotions_total",
            "Machines demoted from the batched to the per-machine path",
            &[],
            &self.solo_demotions,
        );
        registry.register_gauge(
            "mercury_cluster_pool_workers",
            "Persistent tick-pool workers currently alive",
            &[],
            &self.pool_workers,
        );
        registry.register_counter(
            "mercury_cluster_pool_resizes_total",
            "Tick-pool (re)spawns, including the initial spawn",
            &[],
            &self.pool_resizes,
        );
        registry.register_histogram(
            "mercury_cluster_pool_queue_depth",
            "Work items handed to the tick pool per parallel tick",
            &[],
            &self.pool_queue_depth,
            1.0,
        );
        registry.register_counter(
            "mercury_cluster_pool_busy_nanos_total",
            "Sampled worker wall time spent executing tick-pool items",
            &[],
            &self.pool_busy_nanos,
        );
        registry.register_counter(
            "mercury_cluster_pool_idle_nanos_total",
            "Sampled worker wall time spent idle within pool runs",
            &[],
            &self.pool_idle_nanos,
        );
        registry.register_counter(
            "mercury_cluster_fused_ticks_total",
            "Ticks executed inside fused replay spans",
            &[],
            &self.fused_ticks,
        );
        registry.register_histogram(
            "mercury_cluster_fused_span_ticks",
            "Fused replay span lengths, observed once per span",
            &[],
            &self.fused_spans,
            1.0,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_exposes_all_families() {
        let registry = Registry::new();
        let m = ClusterMetrics::new();
        m.register(&registry);
        m.ticks.inc();
        m.solver.ticks.add(4);
        let text = registry.render_prometheus();
        for family in [
            "mercury_solver_ticks_total",
            "mercury_solver_tick_seconds",
            "mercury_solver_substeps_total",
            "mercury_solver_flow_recomputes_total",
            "mercury_solver_simd_lane_width",
            "mercury_cluster_ticks_total",
            "mercury_cluster_tick_seconds",
            "mercury_cluster_batched_machines",
            "mercury_cluster_solo_machines",
            "mercury_cluster_batch_chunks",
            "mercury_cluster_chunk_occupancy",
            "mercury_cluster_solo_demotions_total",
            "mercury_cluster_pool_workers",
            "mercury_cluster_pool_resizes_total",
            "mercury_cluster_pool_queue_depth",
            "mercury_cluster_pool_busy_nanos_total",
            "mercury_cluster_pool_idle_nanos_total",
            "mercury_cluster_fused_ticks_total",
            "mercury_cluster_fused_span_ticks",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
    }

    #[test]
    fn absorb_folds_counters() {
        let shared = SolverMetrics::new();
        let own = SolverMetrics::new();
        own.flow_recomputes.inc();
        own.ticks.add(3);
        shared.absorb(&own);
        assert_eq!(shared.flow_recomputes.get(), 1);
        assert_eq!(shared.ticks.get(), 3);
    }
}
