//! The per-machine solver.

use super::kernel::StepKernel;
use super::metrics::{SolverMetrics, TICK_LATENCY_SAMPLE};
use crate::error::Error;
use crate::model::{AirKind, MachineModel, PowerModel};
use crate::units::{
    Celsius, CubicMetersPerSecond, Joules, JoulesPerKelvin, Seconds, Utilization, WattsPerKelvin,
};
use std::collections::HashMap;
use std::time::Instant;

/// Configuration of a [`Solver`].
#[derive(Debug, Clone, PartialEq)]
pub struct SolverConfig {
    /// Length of one tick. The paper computes "one iteration per second by
    /// default".
    pub dt: Seconds,
    /// Maximum fraction of a node's distance-to-equilibrium exchanged per
    /// internal sub-step (explicit-Euler stability margin). Smaller is more
    /// accurate but costs proportionally more sub-steps per tick.
    pub stability_limit: f64,
    /// Starting temperature for every node. `None` starts everything at
    /// the machine's inlet temperature — the paper's "user-defined initial
    /// air temperature".
    pub initial_temperature: Option<Celsius>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            dt: Seconds(1.0),
            stability_limit: 0.25,
            initial_temperature: None,
        }
    }
}

#[derive(Debug, Clone)]
enum NodeRt {
    Component { power: PowerModel, monitored: bool },
    Air { kind: AirKind, mass_kg: f64 },
}

/// Emulates the temperatures of one machine.
///
/// A `Solver` copies all constants out of a [`MachineModel`] at
/// construction, so runtime changes (fiddle commands, fan-speed changes)
/// never affect the source model. The stepping arithmetic itself lives in
/// the shared `solver::kernel` module: at construction (and again after
/// any topology-affecting change such as [`Solver::set_fan_cfm`]) the
/// solver compiles its graphs into a CSR-indexed [`StepKernel`] with
/// precomputed rate constants, and each [`Solver::step`] is a single
/// kernel tick over reused buffers. Temperatures are queried by node
/// name, exactly like probing a hardware sensor — or by dense index via
/// [`Solver::node_index`] / [`Solver::temperature_at`] when polling in a
/// tight loop:
///
/// ```
/// use mercury::presets;
/// use mercury::solver::{Solver, SolverConfig};
///
/// # fn main() -> Result<(), mercury::Error> {
/// let mut solver = Solver::new(&presets::validation_machine(), SolverConfig::default())?;
/// solver.set_utilization("cpu", 1.0)?;
/// solver.step_for(600);
/// println!("CPU air after 10 min: {}", solver.temperature("cpu_air")?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Solver {
    machine: String,
    names: Vec<String>,
    by_name: HashMap<String, usize>,
    kind: Vec<NodeRt>,
    capacity: Vec<JoulesPerKelvin>,
    utilization: Vec<Utilization>,
    temp: Vec<Celsius>,
    forced: Vec<Option<Celsius>>,
    heat_edges: Vec<(usize, usize, WattsPerKelvin)>,
    air_edges: Vec<(usize, usize, f64)>,
    topo: Vec<usize>,
    inlets: Vec<usize>,
    fan: CubicMetersPerSecond,
    inlet_temperature: Celsius,
    /// The compiled step kernel; rebuilt from the edge lists above
    /// whenever `dirty` is set.
    kernel: StepKernel,
    /// Scratch refilled each tick: boundary flags (forced nodes and
    /// inlets) and per-sub-step generated heat per node.
    fixed: Vec<bool>,
    power_q: Vec<f64>,
    dirty: bool,
    /// Set when the per-tick inputs (boundary flags, generated heat) or
    /// externally written temperature state may have changed since the
    /// last [`Solver::fill_tick_inputs`]; cleared there. While clear,
    /// stepping reuses the priced inputs, and the batched cluster kernel
    /// additionally skips re-gathering this machine's non-boundary rows.
    inputs_dirty: bool,
    /// Structural fingerprint of the source model
    /// ([`MachineModel::structural_fingerprint`]), captured at
    /// construction for batch grouping.
    fingerprint: u64,
    /// Set once any kernel constant diverges from the source model
    /// (fan speed, heat k, air fraction). A diverged solver steps on the
    /// per-machine path; it never rejoins a batch group.
    diverged: bool,
    cfg: SolverConfig,
    time: Seconds,
    generated_last_tick: Joules,
    /// Always-on metric handles. A standalone solver owns a detached
    /// bundle; a cluster member shares its cluster's bundle (see
    /// [`Solver::share_metrics`]).
    metrics: SolverMetrics,
    /// Solo-path ticks stepped, used to sample tick latency 1-in-
    /// [`TICK_LATENCY_SAMPLE`].
    ticks_stepped: u64,
    /// Runtime instrumentation switch (default on). Exists for overhead
    /// A/B measurements within one binary; the compile-time switch is
    /// the `instrument` cargo feature.
    instrumented: bool,
}

impl Solver {
    /// Creates a solver for the given model.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the configuration is unusable
    /// (non-positive `dt` or stability limit outside `(0, 1]`).
    pub fn new(model: &MachineModel, cfg: SolverConfig) -> Result<Self, Error> {
        if !cfg.dt.is_finite() || cfg.dt.0 <= 0.0 {
            return Err(Error::invalid_input(format!(
                "solver dt {} must be positive",
                cfg.dt
            )));
        }
        if !(cfg.stability_limit > 0.0 && cfg.stability_limit <= 1.0) {
            return Err(Error::invalid_input(format!(
                "stability limit {} outside (0, 1]",
                cfg.stability_limit
            )));
        }
        let n = model.nodes().len();
        let mut names = Vec::with_capacity(n);
        let mut kind = Vec::with_capacity(n);
        let mut capacity = Vec::with_capacity(n);
        for node in model.nodes() {
            names.push(node.name().to_string());
            capacity.push(node.capacity());
            kind.push(match node {
                crate::model::NodeSpec::Component(c) => NodeRt::Component {
                    power: c.power.clone(),
                    monitored: c.monitored,
                },
                crate::model::NodeSpec::Air(a) => NodeRt::Air {
                    kind: a.kind,
                    mass_kg: a.mass_kg,
                },
            });
        }
        let by_name = names
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i))
            .collect();
        let initial = cfg.initial_temperature.unwrap_or(model.inlet_temperature());
        let inlets: Vec<usize> = model.inlets().iter().map(|id| id.index()).collect();
        let mut solver = Solver {
            machine: model.name().to_string(),
            names,
            by_name,
            kind,
            capacity,
            utilization: vec![Utilization::IDLE; n],
            temp: vec![initial; n],
            forced: vec![None; n],
            heat_edges: model
                .heat_edges()
                .iter()
                .map(|e| (e.a.index(), e.b.index(), e.k))
                .collect(),
            air_edges: model
                .air_edges()
                .iter()
                .map(|e| (e.from.index(), e.to.index(), e.fraction))
                .collect(),
            topo: model.topo_order().iter().map(|id| id.index()).collect(),
            inlets,
            fan: model.fan(),
            inlet_temperature: model.inlet_temperature(),
            kernel: StepKernel::new(cfg.dt, cfg.stability_limit),
            fixed: vec![false; n],
            power_q: vec![0.0; n],
            dirty: true,
            inputs_dirty: true,
            fingerprint: model.structural_fingerprint(),
            diverged: false,
            cfg,
            time: Seconds(0.0),
            generated_last_tick: Joules(0.0),
            metrics: SolverMetrics::new(),
            ticks_stepped: 0,
            instrumented: true,
        };
        solver.refresh();
        // Inlets start at the boundary temperature even when
        // `initial_temperature` differs.
        for &i in &solver.inlets.clone() {
            solver.temp[i] = solver.inlet_temperature;
        }
        Ok(solver)
    }

    /// The machine name this solver emulates.
    pub fn machine_name(&self) -> &str {
        &self.machine
    }

    /// Emulated time elapsed since construction.
    pub fn time(&self) -> Seconds {
        self.time
    }

    /// Length of one tick.
    pub fn dt(&self) -> Seconds {
        self.cfg.dt
    }

    /// All node names, in model order.
    pub fn node_names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }

    /// Names of the monitored components (the ones that accept
    /// [`Solver::set_utilization`]).
    pub fn monitored_components(&self) -> Vec<&str> {
        self.kind
            .iter()
            .enumerate()
            .filter(|(_, k)| {
                matches!(
                    k,
                    NodeRt::Component {
                        monitored: true,
                        ..
                    }
                )
            })
            .map(|(i, _)| self.names[i].as_str())
            .collect()
    }

    /// Whether the named node is an inlet air region.
    pub fn is_inlet(&self, name: &str) -> bool {
        self.by_name
            .get(name)
            .map(|&i| {
                matches!(
                    self.kind[i],
                    NodeRt::Air {
                        kind: AirKind::Inlet,
                        ..
                    }
                )
            })
            .unwrap_or(false)
    }

    /// Whether the named node is an exhaust air region.
    pub fn is_exhaust(&self, name: &str) -> bool {
        self.by_name
            .get(name)
            .map(|&i| {
                matches!(
                    self.kind[i],
                    NodeRt::Air {
                        kind: AirKind::Exhaust,
                        ..
                    }
                )
            })
            .unwrap_or(false)
    }

    /// Sub-steps the solver currently performs per tick (diagnostic).
    pub fn substeps_per_tick(&mut self) -> usize {
        if self.dirty {
            self.refresh();
        }
        self.kernel.substeps()
    }

    /// Heat generated by all components during the most recent tick.
    pub fn generated_last_tick(&self) -> Joules {
        self.generated_last_tick
    }

    /// Total heat content relative to 0 °C, `Σ m·c·T` — used by
    /// conservation tests.
    pub fn heat_content(&self) -> Joules {
        Joules(
            self.temp
                .iter()
                .zip(&self.capacity)
                .map(|(t, c)| t.0 * c.0)
                .sum(),
        )
    }

    fn index(&self, name: &str) -> Result<usize, Error> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| Error::unknown_node(name))
    }

    /// The current temperature of a node.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNode`] for names not in the model.
    pub fn temperature(&self, name: &str) -> Result<Celsius, Error> {
        Ok(self.temp[self.index(name)?])
    }

    /// Snapshot of every node's temperature, in model order.
    pub fn temperatures(&self) -> Vec<(String, Celsius)> {
        self.names
            .iter()
            .cloned()
            .zip(self.temp.iter().copied())
            .collect()
    }

    /// Stable dense index of a node, for repeated access without name
    /// hashing. Indices follow model order and never change over the
    /// solver's lifetime; resolve once, then poll with
    /// [`Solver::temperature_at`] on the hot path.
    pub fn node_index(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// The current temperature of the node at `index` (from
    /// [`Solver::node_index`]).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn temperature_at(&self, index: usize) -> Celsius {
        self.temp[index]
    }

    /// Sets the utilization of a monitored component.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNode`] for unknown names and
    /// [`Error::InvalidInput`] when the node is not a monitored component.
    pub fn set_utilization(
        &mut self,
        name: &str,
        utilization: impl Into<Utilization>,
    ) -> Result<(), Error> {
        let i = self.index(name)?;
        self.set_utilization_at(i, utilization)
    }

    /// Sets the utilization of the monitored component at `index` (from
    /// [`Solver::node_index`]) — the hot-path variant of
    /// [`Solver::set_utilization`] for callers feeding utilizations every
    /// tick.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] when the node is not a monitored
    /// component.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_utilization_at(
        &mut self,
        index: usize,
        utilization: impl Into<Utilization>,
    ) -> Result<(), Error> {
        match &self.kind[index] {
            NodeRt::Component {
                monitored: true, ..
            } => {
                self.utilization[index] = utilization.into();
                self.inputs_dirty = true;
                Ok(())
            }
            NodeRt::Component {
                monitored: false, ..
            } => Err(Error::invalid_input(format!(
                "component `{}` is not monitored; its power draw is fixed",
                self.names[index]
            ))),
            NodeRt::Air { .. } => Err(Error::invalid_input(format!(
                "`{}` is an air region, not a component",
                self.names[index]
            ))),
        }
    }

    /// The current utilization of a component.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNode`] for unknown names.
    pub fn utilization(&self, name: &str) -> Result<Utilization, Error> {
        Ok(self.utilization[self.index(name)?])
    }

    /// Sets the inlet boundary temperature (all inlet nodes).
    pub fn set_inlet_temperature(&mut self, t: Celsius) {
        self.inlet_temperature = t;
        for &i in &self.inlets {
            if self.forced[i].is_none() {
                self.temp[i] = t;
            }
        }
    }

    /// The current inlet boundary temperature.
    pub fn inlet_temperature(&self) -> Celsius {
        self.inlet_temperature
    }

    /// Pins a node at a temperature until [`Solver::release_temperature`].
    /// This is how `fiddle` simulates e.g. a blocked inlet or a failed fan
    /// sensor.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNode`] for unknown names.
    pub fn force_temperature(&mut self, name: &str, t: Celsius) -> Result<(), Error> {
        let i = self.index(name)?;
        self.forced[i] = Some(t);
        self.temp[i] = t;
        self.inputs_dirty = true;
        Ok(())
    }

    /// Releases a pinned node; it resumes evolving from the pinned value.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNode`] for unknown names.
    pub fn release_temperature(&mut self, name: &str) -> Result<(), Error> {
        let i = self.index(name)?;
        self.forced[i] = None;
        if self.inlets.contains(&i) {
            self.temp[i] = self.inlet_temperature;
        }
        self.inputs_dirty = true;
        Ok(())
    }

    /// Overwrites a node's temperature once (it keeps evolving afterwards).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNode`] for unknown names.
    pub fn set_temperature(&mut self, name: &str, t: Celsius) -> Result<(), Error> {
        let i = self.index(name)?;
        self.temp[i] = t;
        self.inputs_dirty = true;
        Ok(())
    }

    /// Changes the fan's volumetric flow (multi-speed fans, §2.2).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] for non-positive flows.
    pub fn set_fan_cfm(&mut self, cfm: f64) -> Result<(), Error> {
        if !cfm.is_finite() || cfm <= 0.0 {
            return Err(Error::invalid_input(format!(
                "fan flow {cfm} cfm must be positive"
            )));
        }
        self.fan = CubicMetersPerSecond::from_cfm(cfm);
        self.dirty = true;
        self.diverged = true;
        Ok(())
    }

    /// The fan's current volumetric flow.
    pub fn fan(&self) -> CubicMetersPerSecond {
        self.fan
    }

    /// Changes the heat-transfer coefficient of an existing heat edge.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNode`] if either endpoint is unknown,
    /// [`Error::InvalidInput`] if the edge does not exist or `k` is not
    /// positive.
    pub fn set_heat_k(&mut self, a: &str, b: &str, k: f64) -> Result<(), Error> {
        if !k.is_finite() || k <= 0.0 {
            return Err(Error::invalid_input(format!("heat k {k} must be positive")));
        }
        let ia = self.index(a)?;
        let ib = self.index(b)?;
        for edge in &mut self.heat_edges {
            if (edge.0 == ia && edge.1 == ib) || (edge.0 == ib && edge.1 == ia) {
                edge.2 = WattsPerKelvin(k);
                self.dirty = true;
                self.diverged = true;
                return Ok(());
            }
        }
        Err(Error::invalid_input(format!(
            "no heat edge between `{a}` and `{b}`"
        )))
    }

    /// Changes the fraction of an existing air edge. The fractions leaving
    /// the upstream node must still sum to at most 1.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNode`] / [`Error::InvalidInput`] analogous
    /// to [`Solver::set_heat_k`].
    pub fn set_air_fraction(&mut self, from: &str, to: &str, fraction: f64) -> Result<(), Error> {
        if !(fraction > 0.0 && fraction <= 1.0) {
            return Err(Error::invalid_input(format!(
                "air fraction {fraction} outside (0, 1]"
            )));
        }
        let ifrom = self.index(from)?;
        let ito = self.index(to)?;
        let mut found = false;
        let mut total = 0.0;
        for edge in &mut self.air_edges {
            if edge.0 == ifrom {
                if edge.1 == ito {
                    found = true;
                    total += fraction;
                } else {
                    total += edge.2;
                }
            }
        }
        if !found {
            return Err(Error::invalid_input(format!(
                "no air edge `{from}` -> `{to}`"
            )));
        }
        if total > 1.0 + 1e-9 {
            return Err(Error::invalid_input(format!(
                "air fractions leaving `{from}` would sum to {total:.4} > 1"
            )));
        }
        for edge in &mut self.air_edges {
            if edge.0 == ifrom && edge.1 == ito {
                edge.2 = fraction;
            }
        }
        self.dirty = true;
        self.diverged = true;
        Ok(())
    }

    /// Replaces a component's power model (emulating e.g. voltage/frequency
    /// scaling or clock throttling, §7).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNode`] for unknown names,
    /// [`Error::InvalidInput`] for air regions or invalid models.
    pub fn set_power_model(&mut self, name: &str, model: PowerModel) -> Result<(), Error> {
        model.validate().map_err(Error::invalid_input)?;
        let i = self.index(name)?;
        match &mut self.kind[i] {
            NodeRt::Component { power, .. } => {
                *power = model;
                self.inputs_dirty = true;
                Ok(())
            }
            NodeRt::Air { .. } => Err(Error::invalid_input(format!(
                "`{name}` is an air region, not a component"
            ))),
        }
    }

    /// Recompiles the kernel from the current edge lists and fan speed.
    fn refresh(&mut self) {
        let air_mass: Vec<Option<f64>> = self
            .kind
            .iter()
            .map(|k| match k {
                NodeRt::Air { mass_kg, .. } => Some(*mass_kg),
                NodeRt::Component { .. } => None,
            })
            .collect();
        let recomputes_before = self.kernel.flow_recomputes();
        self.kernel.rebuild(
            &self.heat_edges,
            &self.air_edges,
            &self.topo,
            &self.inlets,
            self.fan.mass_flow(),
            &self.capacity,
            &air_mass,
        );
        if self.instrumented {
            self.metrics
                .flow_recomputes
                .add(self.kernel.flow_recomputes() - recomputes_before);
        }
        self.dirty = false;
        // A rebuild can change the sub-step length, which the generated
        // heat is priced against.
        self.inputs_dirty = true;
    }

    /// This solver's always-on metric handles. Register them on a
    /// [`telemetry::Registry`] to export them; for a cluster member the
    /// bundle is shared room-wide (see [`ClusterMetrics`]'s docs).
    ///
    /// [`ClusterMetrics`]: super::ClusterMetrics
    pub fn metrics(&self) -> &SolverMetrics {
        &self.metrics
    }

    /// Adopts a shared metric bundle (a cluster's), folding whatever
    /// this solver already counted — notably the initial flow compile —
    /// into it so no work goes unreported.
    pub(crate) fn share_metrics(&mut self, shared: &SolverMetrics) {
        shared.absorb(&self.metrics);
        self.metrics = shared.clone();
    }

    /// Runtime switch for metric updates (default on). Off makes the
    /// solver skip handle updates and latency sampling entirely — used
    /// by the overhead benchmark to A/B within one binary. The
    /// compile-time equivalent is building without the `instrument`
    /// feature.
    pub fn set_instrumentation(&mut self, on: bool) {
        self.instrumented = on;
    }

    /// Prices this tick's per-machine inputs exactly as [`Solver::step`]
    /// does: recompiles the kernel if dirty, then fills the boundary
    /// flags and the per-sub-step generated heat. The batched cluster
    /// kernel calls this before gathering the machine's state so both
    /// paths run the identical preamble.
    ///
    /// The inputs only change when a setter ran since the last pricing
    /// (utilization, power model, forced nodes, a kernel rebuild), so
    /// unchanged inputs are reused. Returns whether a repricing happened
    /// — the batch gather uses this to skip re-reading rows it already
    /// holds.
    pub(crate) fn fill_tick_inputs(&mut self) -> bool {
        if self.dirty {
            self.refresh();
        }
        if !self.inputs_dirty {
            return false;
        }
        let dts = self.kernel.dt_sub();
        for i in 0..self.names.len() {
            self.fixed[i] = self.forced[i].is_some()
                || matches!(
                    self.kind[i],
                    NodeRt::Air {
                        kind: AirKind::Inlet,
                        ..
                    }
                );
            self.power_q[i] = match &self.kind[i] {
                NodeRt::Component { power, .. } => {
                    crate::physics::heat_generated(power, self.utilization[i], dts).0
                }
                NodeRt::Air { .. } => 0.0,
            };
        }
        self.inputs_dirty = false;
        true
    }

    /// Books the results of one tick stepped outside this solver (by the
    /// batched cluster kernel): heat accounting and the time advance —
    /// the exact epilogue of [`Solver::step`].
    pub(crate) fn finish_tick(&mut self, generated: f64) {
        self.generated_last_tick = Joules(generated);
        self.time.0 += self.cfg.dt.0;
    }

    /// Books `span` ticks stepped outside this solver in one fused
    /// replay span. Time advances by repeated addition — the bit-exact
    /// trajectory `span` calls of [`Solver::finish_tick`] would produce
    /// — and `generated` is the per-tick heat (constant across the span,
    /// so the last tick's value equals every tick's).
    pub(crate) fn finish_tick_span(&mut self, generated: f64, span: usize) {
        self.generated_last_tick = Joules(generated);
        for _ in 0..span {
            self.time.0 += self.cfg.dt.0;
        }
    }

    /// One repricing-free kernel tick, for fused replay of a solo
    /// machine: the caller (the cluster's fused span) guarantees the
    /// tick inputs were priced by a preceding [`Solver::step`] and that
    /// no setter ran since — repricing would reproduce the same bits, so
    /// skipping it is exact. Heat accounting lands immediately; the time
    /// advance and tick bookkeeping are booked once per span via
    /// [`Solver::finish_span`].
    pub(crate) fn tick_fused(&mut self) {
        let generated = self.kernel.tick(&mut self.temp, &self.fixed, &self.power_q);
        self.generated_last_tick = Joules(generated);
    }

    /// Epilogue for `span` [`Solver::tick_fused`] ticks: the time
    /// advance, the tick counter, and the changed-state flag that makes
    /// a batch chunk re-gather this machine's lane.
    pub(crate) fn finish_span(&mut self, span: usize) {
        for _ in 0..span {
            self.time.0 += self.cfg.dt.0;
        }
        self.ticks_stepped += span as u64;
        self.inputs_dirty = true;
    }

    /// Overwrites the inlet boundary field without touching node
    /// temperatures — the fused span writes inlet rows directly into the
    /// chunk matrices and syncs the field once at span end.
    pub(crate) fn set_inlet_field(&mut self, t: Celsius) {
        self.inlet_temperature = t;
    }

    /// Node indices of the inlet air regions, in model order.
    pub(crate) fn inlet_nodes(&self) -> &[usize] {
        &self.inlets
    }

    /// Sub-steps per tick of the currently compiled kernel, without the
    /// laziness of [`Solver::substeps_per_tick`] — callers inside a
    /// fused span know no rebuild can be pending.
    pub(crate) fn current_substeps(&self) -> usize {
        self.kernel.substeps()
    }

    /// Structural fingerprint of the source model, for batch grouping.
    pub(crate) fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Whether this machine may step on the batched path this tick: its
    /// kernel constants still match the source model and no node is
    /// force-pinned (pinning changes the boundary-flag pattern, which a
    /// batch group shares structurally).
    pub(crate) fn batch_eligible(&self) -> bool {
        !self.diverged && self.forced.iter().all(Option::is_none)
    }

    /// Recompiles the kernel if a change is pending, then exposes it
    /// (the batch group copies the representative's assembled operator).
    pub(crate) fn compiled_kernel(&mut self) -> &StepKernel {
        if self.dirty {
            self.refresh();
        }
        &self.kernel
    }

    /// The per-tick inputs priced by [`Solver::fill_tick_inputs`].
    pub(crate) fn tick_inputs(&self) -> (&[bool], &[f64]) {
        (&self.fixed, &self.power_q)
    }

    /// Raw temperature state, for the batch gather.
    pub(crate) fn temps(&self) -> &[Celsius] {
        &self.temp
    }

    /// Raw temperature state, for the batch scatter.
    pub(crate) fn temps_mut(&mut self) -> &mut [Celsius] {
        &mut self.temp
    }

    /// Serializes this machine's mutable state into a `mercury-ckpt-v1`
    /// blob (see `trace::checkpoint` for the layout and contract).
    ///
    /// Only state a tick can change is written: structural data (names,
    /// edge topology, kernels) is rebuilt deterministically from the
    /// model at restore time. Heat-edge conductances and air fractions
    /// *are* written because fiddle commands retune them at runtime.
    pub(crate) fn write_ckpt(&self, w: &mut crate::trace::checkpoint::CkptWriter) {
        w.name(&self.machine);
        w.f64(self.time.0);
        w.u64(self.ticks_stepped);
        w.f64(self.generated_last_tick.0);
        w.f64(self.fan.0);
        w.f64(self.inlet_temperature.0);
        w.u8(u8::from(self.diverged));
        w.u32(self.temp.len() as u32);
        for i in 0..self.temp.len() {
            w.f64(self.temp[i].0);
            w.f64(self.utilization[i].fraction());
            w.opt_f64(self.forced[i].map(|t| t.0));
        }
        w.u32(self.heat_edges.len() as u32);
        for &(_, _, k) in &self.heat_edges {
            w.f64(k.0);
        }
        w.u32(self.air_edges.len() as u32);
        for &(_, _, fraction) in &self.air_edges {
            w.f64(fraction);
        }
    }

    /// Restores state written by [`Solver::write_ckpt`] into this solver,
    /// which must have been built from the same machine model.
    ///
    /// Marks the kernel dirty and the tick inputs stale so the next step
    /// recompiles from the restored edge constants and re-prices power —
    /// recompilation is deterministic, so a restored solver continues the
    /// checkpointed trajectory bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] when the blob is truncated or was
    /// taken from a differently shaped machine.
    pub(crate) fn read_ckpt(
        &mut self,
        r: &mut crate::trace::checkpoint::CkptReader<'_>,
    ) -> Result<(), Error> {
        let name = r.name("machine")?;
        if name != self.machine {
            return Err(Error::invalid_input(format!(
                "checkpoint machine `{name}` does not match target machine `{}`",
                self.machine
            )));
        }
        self.time = Seconds(r.f64("machine time")?);
        self.ticks_stepped = r.u64("ticks stepped")?;
        self.generated_last_tick = Joules(r.f64("generated heat")?);
        self.fan = CubicMetersPerSecond(r.f64("fan")?);
        self.inlet_temperature = Celsius(r.f64("inlet temperature")?);
        self.diverged = match r.u8("diverged flag")? {
            0 => false,
            1 => true,
            other => {
                return Err(Error::invalid_input(format!(
                    "checkpoint diverged flag is {other}, not 0/1"
                )));
            }
        };
        r.count("node", self.temp.len())?;
        for i in 0..self.temp.len() {
            self.temp[i] = Celsius(r.f64("node temperature")?);
            self.utilization[i] = Utilization::new(r.f64("node utilization")?);
            self.forced[i] = r.opt_f64("forced temperature")?.map(Celsius);
        }
        r.count("heat edge", self.heat_edges.len())?;
        for edge in &mut self.heat_edges {
            edge.2 = WattsPerKelvin(r.f64("heat conductance")?);
        }
        r.count("air edge", self.air_edges.len())?;
        for edge in &mut self.air_edges {
            edge.2 = r.f64("air fraction")?;
        }
        // Force a kernel rebuild and input re-pricing on the next tick;
        // both are pure functions of the state restored above.
        self.dirty = true;
        self.inputs_dirty = true;
        Ok(())
    }

    /// Advances the emulation by one tick of [`SolverConfig::dt`] seconds.
    ///
    /// The graph arithmetic (Equations 2, 3, and 5 plus advection) runs in
    /// the compiled [`StepKernel`]; this method only refreshes the kernel
    /// when dirty and prices the per-tick inputs — boundary flags and the
    /// per-sub-step generated heat, both constant within a tick.
    pub fn step(&mut self) {
        // Latency is sampled 1-in-TICK_LATENCY_SAMPLE so the common tick
        // carries no clock reads; counters are exact. Neither touches
        // the arithmetic, so trajectories are identical either way.
        let timed = telemetry::enabled()
            && self.instrumented
            && self.ticks_stepped.is_multiple_of(TICK_LATENCY_SAMPLE);
        let started = if timed { Some(Instant::now()) } else { None };
        self.fill_tick_inputs();
        let generated = self.kernel.tick(&mut self.temp, &self.fixed, &self.power_q);
        self.finish_tick(generated);
        // A direct step rewrites this solver's temperatures outside any
        // batch chunk; if the solver is a chunk member, the chunk must
        // re-gather the lane before reusing it.
        self.inputs_dirty = true;
        self.ticks_stepped += 1;
        if self.instrumented {
            self.metrics.ticks.inc();
            self.metrics.substeps.add(self.kernel.substeps() as u64);
            if let Some(started) = started {
                let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                self.metrics.tick_nanos.observe(nanos);
            }
        }
    }

    /// Advances the emulation by `ticks` ticks.
    ///
    /// For `ticks ≥ 2` this is a fused fast path: the inputs are priced
    /// once and the kernel runs all `ticks × substeps` sweeps back to
    /// back ([`StepKernel::tick_span`]), hoisting the per-tick
    /// temperature copies and the (idempotent) repricing out of the
    /// loop. No setter can run mid-call, so the inputs are provably
    /// stable for the whole span and the trajectory is bit-identical to
    /// calling [`Solver::step`] in a loop. Tick latency is sampled once
    /// per span (as the per-tick mean) instead of 1-in-64 ticks;
    /// counters stay exact.
    pub fn step_for(&mut self, ticks: usize) {
        if ticks < 2 {
            if ticks == 1 {
                self.step();
            }
            return;
        }
        let timed = telemetry::enabled()
            && self.instrumented
            && super::metrics::span_samples(self.ticks_stepped, ticks);
        let started = if timed { Some(Instant::now()) } else { None };
        self.fill_tick_inputs();
        let generated = self
            .kernel
            .tick_span(&mut self.temp, &self.fixed, &self.power_q, ticks);
        self.generated_last_tick = Joules(generated);
        for _ in 0..ticks {
            self.time.0 += self.cfg.dt.0;
        }
        // Same epilogue as `step`: externally visible state changed, so
        // any batch chunk holding this machine must re-gather its lane.
        self.inputs_dirty = true;
        self.ticks_stepped += ticks as u64;
        if self.instrumented {
            self.metrics.ticks.add(ticks as u64);
            self.metrics
                .substeps
                .add((self.kernel.substeps() * ticks) as u64);
            if let Some(started) = started {
                let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                self.metrics.tick_nanos.observe(nanos / ticks as u64);
            }
        }
    }

    /// Advances the emulation by `ticks` ticks, delivering each tick's
    /// probed temperatures to `sink` — the recorded variant of
    /// [`Solver::step_for`] for replays that need per-tick history.
    /// `probes` holds dense node indices from [`Solver::node_index`];
    /// `sink` receives the post-tick time and the probed temperatures in
    /// probe order. The trajectory is bit-identical to
    /// [`Solver::step_for`] (inputs are priced once; each tick is the
    /// same kernel sweep); only the observation differs.
    ///
    /// # Panics
    ///
    /// Panics if a probe index is out of range.
    pub fn step_for_recorded<F>(&mut self, ticks: usize, probes: &[usize], mut sink: F)
    where
        F: FnMut(Seconds, &[Celsius]),
    {
        if ticks == 0 {
            return;
        }
        let timed = telemetry::enabled()
            && self.instrumented
            && super::metrics::span_samples(self.ticks_stepped, ticks);
        let started = if timed { Some(Instant::now()) } else { None };
        self.fill_tick_inputs();
        let mut scratch = vec![Celsius(0.0); probes.len()];
        let mut generated = 0.0;
        for _ in 0..ticks {
            generated = self.kernel.tick(&mut self.temp, &self.fixed, &self.power_q);
            self.time.0 += self.cfg.dt.0;
            for (s, &p) in scratch.iter_mut().zip(probes) {
                *s = self.temp[p];
            }
            sink(self.time, &scratch);
        }
        self.generated_last_tick = Joules(generated);
        self.inputs_dirty = true;
        self.ticks_stepped += ticks as u64;
        if self.instrumented {
            self.metrics.ticks.add(ticks as u64);
            self.metrics
                .substeps
                .add((self.kernel.substeps() * ticks) as u64);
            if let Some(started) = started {
                let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                self.metrics.tick_nanos.observe(nanos / ticks as u64);
            }
        }
    }

    /// Steps until every temperature changes by less than `tolerance`
    /// Kelvin per tick, or until `max_ticks` elapse. Returns the number of
    /// ticks taken and whether the run converged.
    pub fn run_to_steady_state(&mut self, tolerance: f64, max_ticks: usize) -> (usize, bool) {
        let mut prev: Vec<f64> = self.temp.iter().map(|t| t.0).collect();
        for tick in 1..=max_ticks {
            self.step();
            let max_delta = self
                .temp
                .iter()
                .zip(&prev)
                .map(|(t, p)| (t.0 - p).abs())
                .fold(0.0_f64, f64::max);
            if max_delta < tolerance {
                return (tick, true);
            }
            prev.iter_mut().zip(&self.temp).for_each(|(p, t)| *p = t.0);
        }
        (max_ticks, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MachineModel;

    fn two_body_model() -> MachineModel {
        // A closed system: two components coupled by one heat edge, no air.
        let mut b = MachineModel::builder("closed");
        b.component("hot")
            .mass_kg(1.0)
            .specific_heat(1000.0)
            .constant_power(0.0);
        b.component("cold")
            .mass_kg(1.0)
            .specific_heat(1000.0)
            .constant_power(0.0);
        b.heat_edge("hot", "cold", 5.0).unwrap();
        b.build().unwrap()
    }

    fn flow_model() -> MachineModel {
        let mut b = MachineModel::builder("flow");
        b.component("cpu")
            .mass_kg(0.151)
            .specific_heat(896.0)
            .power_range(7.0, 31.0);
        b.inlet("inlet");
        b.air("cpu_air");
        b.exhaust("exhaust");
        b.heat_edge("cpu", "cpu_air", 0.75).unwrap();
        b.air_edge("inlet", "cpu_air", 1.0).unwrap();
        b.air_edge("cpu_air", "exhaust", 1.0).unwrap();
        b.fan_cfm(38.6);
        b.inlet_temperature_c(21.6);
        b.build().unwrap()
    }

    #[test]
    fn closed_system_conserves_energy_and_equalizes() {
        let model = two_body_model();
        let mut s = Solver::new(&model, SolverConfig::default()).unwrap();
        s.set_temperature("hot", Celsius(80.0)).unwrap();
        s.set_temperature("cold", Celsius(20.0)).unwrap();
        let before = s.heat_content();
        s.step_for(5000);
        let after = s.heat_content();
        assert!(
            (before.0 - after.0).abs() < 1e-6,
            "energy drifted by {}",
            after.0 - before.0
        );
        let hot = s.temperature("hot").unwrap().0;
        let cold = s.temperature("cold").unwrap().0;
        assert!((hot - 50.0).abs() < 0.01, "hot settled at {hot}");
        assert!((cold - 50.0).abs() < 0.01, "cold settled at {cold}");
    }

    #[test]
    fn heat_always_flows_hot_to_cold() {
        let model = two_body_model();
        let mut s = Solver::new(&model, SolverConfig::default()).unwrap();
        s.set_temperature("hot", Celsius(80.0)).unwrap();
        s.set_temperature("cold", Celsius(20.0)).unwrap();
        let mut prev_hot = 80.0;
        let mut prev_cold = 20.0;
        for _ in 0..100 {
            s.step();
            let hot = s.temperature("hot").unwrap().0;
            let cold = s.temperature("cold").unwrap().0;
            assert!(hot <= prev_hot + 1e-12);
            assert!(cold >= prev_cold - 1e-12);
            assert!(hot >= cold - 1e-12, "temperatures crossed: {hot} < {cold}");
            prev_hot = hot;
            prev_cold = cold;
        }
    }

    #[test]
    fn cpu_air_steady_state_matches_analytic_rise() {
        // With the full fan flow over the CPU air, the steady-state air
        // rise is P / (ṁ·c) and the CPU sits k⁻¹·P above its air.
        let model = flow_model();
        let mut s = Solver::new(&model, SolverConfig::default()).unwrap();
        s.set_utilization("cpu", 1.0).unwrap();
        let (_, converged) = s.run_to_steady_state(1e-6, 20_000);
        assert!(converged);
        let m_dot = model.fan().mass_flow().0;
        let expected_air = 21.6 + 31.0 / (m_dot * 1005.0);
        let air = s.temperature("cpu_air").unwrap().0;
        assert!(
            (air - expected_air).abs() < 0.05,
            "air {air} vs analytic {expected_air}"
        );
        let cpu = s.temperature("cpu").unwrap().0;
        let expected_cpu = expected_air + 31.0 / 0.75;
        assert!(
            (cpu - expected_cpu).abs() < 0.1,
            "cpu {cpu} vs analytic {expected_cpu}"
        );
    }

    #[test]
    fn utilization_changes_power_and_temperature() {
        let model = flow_model();
        let mut s = Solver::new(&model, SolverConfig::default()).unwrap();
        s.set_utilization("cpu", 0.0).unwrap();
        s.run_to_steady_state(1e-6, 20_000);
        let idle = s.temperature("cpu").unwrap().0;
        s.set_utilization("cpu", 1.0).unwrap();
        s.run_to_steady_state(1e-6, 20_000);
        let busy = s.temperature("cpu").unwrap().0;
        assert!(busy > idle + 20.0, "idle {idle}, busy {busy}");
    }

    #[test]
    fn inlet_temperature_shift_propagates_downstream() {
        let model = flow_model();
        let mut s = Solver::new(&model, SolverConfig::default()).unwrap();
        s.set_utilization("cpu", 0.5).unwrap();
        s.run_to_steady_state(1e-6, 20_000);
        let before = s.temperature("cpu").unwrap().0;
        s.set_inlet_temperature(Celsius(30.0));
        s.run_to_steady_state(1e-6, 20_000);
        let after = s.temperature("cpu").unwrap().0;
        // An 8.4 K inlet rise moves the whole chain up by ~8.4 K.
        assert!(
            (after - before - 8.4).abs() < 0.1,
            "before {before}, after {after}"
        );
    }

    #[test]
    fn forced_temperature_pins_until_release() {
        let model = flow_model();
        let mut s = Solver::new(&model, SolverConfig::default()).unwrap();
        s.force_temperature("cpu", Celsius(99.0)).unwrap();
        s.step_for(100);
        assert_eq!(s.temperature("cpu").unwrap(), Celsius(99.0));
        s.release_temperature("cpu").unwrap();
        s.step_for(500);
        assert!(s.temperature("cpu").unwrap().0 < 99.0);
    }

    #[test]
    fn faster_fan_cools_the_cpu() {
        let model = flow_model();
        let mut s = Solver::new(&model, SolverConfig::default()).unwrap();
        s.set_utilization("cpu", 1.0).unwrap();
        s.run_to_steady_state(1e-6, 20_000);
        let slow = s.temperature("cpu").unwrap().0;
        s.set_fan_cfm(77.2).unwrap();
        s.run_to_steady_state(1e-6, 20_000);
        let fast = s.temperature("cpu").unwrap().0;
        // Doubling the flow halves the air-side rise (P/(ṁ·c) ≈ 1.4 K at
        // 38.6 cfm); the die-to-air drop is k-limited and flow-independent
        // in this model, so the total improvement is modest but real.
        assert!(fast < slow - 0.5, "slow fan {slow}, fast fan {fast}");
    }

    #[test]
    fn set_heat_k_and_air_fraction_validate() {
        let model = flow_model();
        let mut s = Solver::new(&model, SolverConfig::default()).unwrap();
        assert!(s.set_heat_k("cpu", "cpu_air", 1.5).is_ok());
        assert!(s.set_heat_k("cpu", "exhaust", 1.0).is_err());
        assert!(s.set_heat_k("cpu", "cpu_air", 0.0).is_err());
        assert!(s.set_air_fraction("inlet", "cpu_air", 0.9).is_ok());
        assert!(s.set_air_fraction("inlet", "exhaust", 0.5).is_err());
        assert!(s.set_air_fraction("cpu_air", "exhaust", 1.1).is_err());
    }

    #[test]
    fn air_fraction_overcommit_is_rejected_at_runtime() {
        let mut b = MachineModel::builder("m");
        b.inlet("inlet");
        b.air("a");
        b.air("b");
        b.exhaust("exhaust");
        b.air_edge("inlet", "a", 0.5).unwrap();
        b.air_edge("inlet", "b", 0.5).unwrap();
        b.air_edge("a", "exhaust", 1.0).unwrap();
        b.air_edge("b", "exhaust", 1.0).unwrap();
        let model = b.build().unwrap();
        let mut s = Solver::new(&model, SolverConfig::default()).unwrap();
        // raising inlet->a to 0.6 would overcommit 0.6+0.5.
        assert!(s.set_air_fraction("inlet", "a", 0.6).is_err());
        assert!(s.set_air_fraction("inlet", "a", 0.4).is_ok());
    }

    #[test]
    fn unknown_names_error() {
        let model = flow_model();
        let mut s = Solver::new(&model, SolverConfig::default()).unwrap();
        assert!(matches!(
            s.temperature("ghost"),
            Err(Error::UnknownNode { .. })
        ));
        assert!(s.set_utilization("ghost", 0.5).is_err());
        assert!(s.set_utilization("cpu_air", 0.5).is_err());
        assert!(s.force_temperature("ghost", Celsius(1.0)).is_err());
    }

    #[test]
    fn config_validation() {
        let model = flow_model();
        let bad = SolverConfig {
            dt: Seconds(0.0),
            ..SolverConfig::default()
        };
        assert!(Solver::new(&model, bad).is_err());
        let bad = SolverConfig {
            stability_limit: 0.0,
            ..SolverConfig::default()
        };
        assert!(Solver::new(&model, bad).is_err());
        let bad = SolverConfig {
            stability_limit: 2.0,
            ..SolverConfig::default()
        };
        assert!(Solver::new(&model, bad).is_err());
    }

    #[test]
    fn time_advances_by_dt() {
        let model = flow_model();
        let mut s = Solver::new(&model, SolverConfig::default()).unwrap();
        s.step_for(10);
        assert!((s.time().0 - 10.0).abs() < 1e-12);
        let cfg = SolverConfig {
            dt: Seconds(0.5),
            ..SolverConfig::default()
        };
        let mut s = Solver::new(&model, cfg).unwrap();
        s.step_for(10);
        assert!((s.time().0 - 5.0).abs() < 1e-12);
    }

    #[test]
    fn smaller_dt_agrees_with_default_dt() {
        // The sub-stepping should make tick size nearly irrelevant.
        let model = flow_model();
        let mut coarse = Solver::new(&model, SolverConfig::default()).unwrap();
        let fine_cfg = SolverConfig {
            dt: Seconds(0.1),
            ..SolverConfig::default()
        };
        let mut fine = Solver::new(&model, fine_cfg).unwrap();
        coarse.set_utilization("cpu", 0.8).unwrap();
        fine.set_utilization("cpu", 0.8).unwrap();
        coarse.step_for(300);
        fine.step_for(3000);
        let tc = coarse.temperature("cpu").unwrap().0;
        let tf = fine.temperature("cpu").unwrap().0;
        assert!((tc - tf).abs() < 0.05, "coarse {tc} vs fine {tf}");
    }

    #[test]
    fn generated_heat_accounting() {
        let model = flow_model();
        let mut s = Solver::new(&model, SolverConfig::default()).unwrap();
        s.set_utilization("cpu", 1.0).unwrap();
        s.step();
        // CPU at 31 W for 1 s.
        assert!((s.generated_last_tick().0 - 31.0).abs() < 1e-9);
    }

    #[test]
    fn monitored_components_listing() {
        let model = flow_model();
        let s = Solver::new(&model, SolverConfig::default()).unwrap();
        assert_eq!(s.monitored_components(), vec!["cpu"]);
        assert_eq!(s.machine_name(), "flow");
        assert_eq!(s.node_names().count(), 4);
    }
}
