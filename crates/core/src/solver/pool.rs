//! The persistent tick pool: long-lived workers for cluster stepping.
//!
//! Before this module existed, `ClusterSolver::step` spawned fresh OS
//! threads through `std::thread::scope` on *every tick* — at a 1 s tick
//! over a 10k-tick trace replay that is tens of thousands of
//! `clone(2)`/`join` round trips that contribute nothing to the physics.
//! Worse, solo machines and batch chunks were each sliced into `threads`
//! scoped threads, so a tick with both kinds of work oversubscribed the
//! host with up to `2 × threads` runnable threads.
//!
//! [`TickPool`] replaces both problems with one mechanism:
//!
//! - **Workers are spawned once** (on the first parallel tick) and parked
//!   on a condvar between ticks. A tick hands them work through an
//!   epoch/barrier handshake: the driver publishes a work list under the
//!   pool mutex, bumps the epoch, and wakes the workers; each worker
//!   drains items off a shared atomic cursor and the last one out signals
//!   the driver. The driver blocks until the barrier closes, so the
//!   borrowed work items never outlive the call.
//! - **One unified item queue.** A work item is either one solo machine's
//!   tick or one batch chunk's tick ([`WorkItem`]). Exactly
//!   `worker_count` threads drain the queue, so concurrency is capped at
//!   the configured thread count no matter how the tick's work divides
//!   between solos and chunks.
//! - **Determinism is untouched.** Which worker runs an item never
//!   affects that item's arithmetic: solo machines own their state, and
//!   chunks own their matrices while sharing a read-only operator. The
//!   item *list* is built in a fixed order from the batch plan, but items
//!   may retire in any order — results are written in place, so there is
//!   no reduction whose order could vary.
//!
//! # Safety
//!
//! Work items borrow the cluster's solvers and chunks, but worker
//! threads are `'static`. The pool bridges the gap the same way
//! `std::thread::scope` does: the item slice is published as a raw
//! pointer and the driver *always* waits for every worker to pass the
//! completion barrier before [`TickPool::run`] returns, so no worker can
//! observe the items after the borrow ends. All item access is by unique
//! index from the shared cursor, so no item is aliased.

use super::batch::{Chunk, SharedOp};
use super::machine::Solver;
use std::borrow::Cow;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use telemetry::Tracer;

/// One unit of independent per-tick work.
pub(crate) enum WorkItem<'a> {
    /// A full [`Solver::step`] of one solo machine (per-tick path).
    Step(&'a mut Solver),
    /// A repricing-free kernel tick of one solo machine (fused replay).
    FusedStep(&'a mut Solver),
    /// One batch chunk's tick against its group's shared operator.
    Chunk {
        op: &'a SharedOp,
        chunk: &'a mut Chunk,
    },
}

impl WorkItem<'_> {
    fn run(&mut self) {
        match self {
            WorkItem::Step(solver) => solver.step(),
            WorkItem::FusedStep(solver) => solver.tick_fused(),
            WorkItem::Chunk { op, chunk } => chunk.tick(op),
        }
    }
}

// The raw-pointer hand-off below moves `WorkItem`s across threads
// without the compiler's help; keep the obligation checked.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<WorkItem<'static>>();
};

/// What the driver learns from a sampled [`TickPool::run`].
pub(crate) struct RunSample {
    /// Summed worker wall time spent executing items.
    pub busy_nanos: u64,
    /// Driver wall time for the whole run (publish → barrier closed).
    pub run_nanos: u64,
}

#[derive(Default)]
struct State {
    /// Bumped once per run; workers use it to tell a fresh run from a
    /// spurious wakeup.
    epoch: u64,
    /// The published work list: `base` is `*mut WorkItem` as usize.
    base: usize,
    len: usize,
    /// Workers that have not yet passed the completion barrier.
    active: usize,
    /// Whether workers should time themselves this run.
    sample: bool,
    /// Span id the workers' busy spans parent to this run (0 = don't
    /// record busy spans).
    trace_parent: u64,
    /// The span tracer worker busy spans record into (detached by
    /// default; see [`TickPool::set_tracer`]).
    tracer: Tracer,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Driver → workers: a new epoch (or shutdown) is available.
    work: Condvar,
    /// Workers → driver: the last worker passed the barrier.
    done: Condvar,
    /// Item cursor for the current epoch.
    next: AtomicUsize,
    /// Summed busy nanos for the current (sampled) epoch.
    busy_nanos: AtomicU64,
    /// Set if any item panicked; the driver re-panics after the barrier.
    panicked: AtomicBool,
}

/// A persistent pool of tick workers. Created empty; workers are spawned
/// by the first [`TickPool::run`] and resized whenever a run asks for a
/// different thread count. Dropping the pool joins every worker.
pub(crate) struct TickPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    resizes: u64,
    /// Kept on the pool so a resize can seed the fresh shared state.
    tracer: Tracer,
}

impl std::fmt::Debug for TickPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TickPool")
            .field("workers", &self.workers.len())
            .field("resizes", &self.resizes)
            .finish()
    }
}

impl TickPool {
    pub(crate) fn new() -> Self {
        TickPool {
            shared: Self::fresh_shared(),
            workers: Vec::new(),
            resizes: 0,
            tracer: Tracer::default(),
        }
    }

    /// Attaches the span tracer worker busy spans record into. Workers
    /// pick it up at their next epoch; a detached tracer (the default)
    /// makes the busy-span sites free.
    pub(crate) fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer.clone();
        let mut state = self.shared.state.lock().unwrap();
        state.tracer = tracer;
    }

    fn fresh_shared() -> Arc<Shared> {
        Arc::new(Shared {
            state: Mutex::new(State::default()),
            work: Condvar::new(),
            done: Condvar::new(),
            next: AtomicUsize::new(0),
            busy_nanos: AtomicU64::new(0),
            panicked: AtomicBool::new(false),
        })
    }

    /// Workers currently alive (0 before the first parallel run).
    pub(crate) fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Times the pool has been (re)sized, including the initial spawn.
    pub(crate) fn resizes(&self) -> u64 {
        self.resizes
    }

    /// Ensures exactly `threads` workers are alive. A resize tears the
    /// old pool down (worker state is trivial, and resizes are rare —
    /// an explicit `set_threads` call, not a per-tick event).
    fn resize(&mut self, threads: usize) {
        if self.workers.len() == threads {
            return;
        }
        self.teardown();
        self.shared = Self::fresh_shared();
        self.shared.state.lock().unwrap().tracer = self.tracer.clone();
        self.workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&self.shared);
                std::thread::Builder::new()
                    .name(format!("mercury-tick-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn tick worker")
            })
            .collect();
        self.resizes += 1;
    }

    fn teardown(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
            self.shared.work.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Executes every item once across exactly `threads` workers and
    /// returns when all are done. With `sample` set, workers time their
    /// busy span and the result carries a [`RunSample`]. A nonzero
    /// `trace_parent` asks each worker to record its busy interval as a
    /// `pool.worker` span under that parent (a no-op unless a tracer is
    /// attached and active).
    ///
    /// # Panics
    ///
    /// Re-raises (as a panic) any panic that occurred inside an item.
    pub(crate) fn run(
        &mut self,
        items: &mut [WorkItem<'_>],
        threads: usize,
        sample: bool,
        trace_parent: u64,
    ) -> Option<RunSample> {
        debug_assert!(threads > 0, "a parallel run needs at least one worker");
        self.resize(threads);
        let started = if sample { Some(Instant::now()) } else { None };
        {
            let mut state = self.shared.state.lock().unwrap();
            // SAFETY: the pointer is only dereferenced by workers between
            // this publish and the barrier below, during which `items` is
            // exclusively borrowed by this call.
            state.base = items.as_mut_ptr() as usize;
            state.len = items.len();
            state.active = self.workers.len();
            state.sample = sample;
            state.trace_parent = trace_parent;
            state.epoch += 1;
            self.shared.next.store(0, Ordering::Relaxed);
            if sample {
                self.shared.busy_nanos.store(0, Ordering::Relaxed);
            }
            self.shared.work.notify_all();
            // Barrier: wait for the last worker of this epoch.
            while state.active > 0 {
                state = self.shared.done.wait(state).unwrap();
            }
        }
        if self.shared.panicked.swap(false, Ordering::Relaxed) {
            panic!("a tick-pool work item panicked");
        }
        started.map(|t| RunSample {
            busy_nanos: self.shared.busy_nanos.load(Ordering::Relaxed),
            run_nanos: u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX),
        })
    }
}

impl Drop for TickPool {
    fn drop(&mut self) {
        self.teardown();
    }
}

// The crate denies `unsafe_code`; this function is the one sanctioned
// exception (see the module-level # Safety section and `lib.rs`).
#[allow(unsafe_code)]
fn worker_loop(shared: &Shared, index: usize) {
    let mut seen = 0u64;
    loop {
        // Park until a new epoch (or shutdown) is published.
        let (base, len, sample, trace_parent, tracer) = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen {
                    seen = state.epoch;
                    break (
                        state.base,
                        state.len,
                        state.sample,
                        state.trace_parent,
                        state.tracer.clone(),
                    );
                }
                state = shared.work.wait(state).unwrap();
            }
        };
        // Busy-span tracing: one `pool.worker` span per sampled epoch,
        // on this worker's own display lane (tid `1 + index`).
        let mut local = if trace_parent != 0 && tracer.is_active() {
            Some(tracer.local(1 + index as u32))
        } else {
            None
        };
        let busy_span = local
            .as_ref()
            .map(|l| l.start("pool.worker", "solver", trace_parent));
        let started = if sample { Some(Instant::now()) } else { None };
        let mut ran = 0u64;
        loop {
            let i = shared.next.fetch_add(1, Ordering::Relaxed);
            if i >= len {
                break;
            }
            ran += 1;
            // SAFETY: `i` is unique to this worker (fetch_add), in
            // bounds, and the driver keeps the slice alive until the
            // barrier below — so this is an unaliased &mut.
            let item = unsafe { &mut *(base as *mut WorkItem<'static>).add(i) };
            if catch_unwind(AssertUnwindSafe(|| item.run())).is_err() {
                shared.panicked.store(true, Ordering::Relaxed);
            }
        }
        if let Some(started) = started {
            let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            shared.busy_nanos.fetch_add(nanos, Ordering::Relaxed);
        }
        if let (Some(local), Some(span)) = (local.as_mut(), busy_span) {
            local.end_with_args(span, vec![(Cow::Borrowed("items"), ran.to_string())]);
            // Flush before the barrier so the driver sees this epoch's
            // spans as soon as `run` returns.
            local.flush();
        }
        // Completion barrier: the mutex write-release here is also what
        // publishes this worker's item writes to the driver.
        let mut state = shared.state.lock().unwrap();
        state.active -= 1;
        if state.active == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::solver::SolverConfig;

    fn solver() -> Solver {
        Solver::new(&presets::validation_machine(), SolverConfig::default()).unwrap()
    }

    #[test]
    fn pool_steps_items_and_reuses_workers() {
        let mut a = solver();
        let mut b = solver();
        let mut reference = solver();
        let mut pool = TickPool::new();
        for _ in 0..5 {
            let mut items = [WorkItem::Step(&mut a), WorkItem::Step(&mut b)];
            pool.run(&mut items, 2, false, 0);
            reference.step();
        }
        assert_eq!(pool.worker_count(), 2);
        assert_eq!(pool.resizes(), 1, "five runs, one spawn");
        for ((_, x), (_, y)) in a.temperatures().iter().zip(reference.temperatures()) {
            assert_eq!(x.0.to_bits(), y.0.to_bits());
        }
        for ((_, x), (_, y)) in b.temperatures().iter().zip(reference.temperatures()) {
            assert_eq!(x.0.to_bits(), y.0.to_bits());
        }
    }

    #[test]
    fn pool_resizes_on_demand() {
        let mut a = solver();
        let mut pool = TickPool::new();
        pool.run(&mut [WorkItem::Step(&mut a)], 3, false, 0);
        assert_eq!(pool.worker_count(), 3);
        pool.run(&mut [WorkItem::Step(&mut a)], 1, false, 0);
        assert_eq!(pool.worker_count(), 1);
        assert_eq!(pool.resizes(), 2);
    }

    #[test]
    fn sampled_run_reports_busy_time() {
        let mut a = solver();
        let mut b = solver();
        let mut pool = TickPool::new();
        let stats = pool
            .run(
                &mut [WorkItem::Step(&mut a), WorkItem::Step(&mut b)],
                2,
                true,
                0,
            )
            .expect("sampled run returns stats");
        assert!(stats.run_nanos > 0);
        assert!(stats.busy_nanos > 0);
    }

    #[test]
    fn empty_run_completes() {
        let mut pool = TickPool::new();
        assert!(pool.run(&mut [], 2, false, 0).is_none());
    }

    #[test]
    #[cfg(feature = "instrument")]
    fn workers_record_busy_spans_under_the_given_parent() {
        let tracer = Tracer::new(256);
        let mut a = solver();
        let mut b = solver();
        let mut pool = TickPool::new();
        pool.set_tracer(tracer.clone());
        pool.run(
            &mut [WorkItem::Step(&mut a), WorkItem::Step(&mut b)],
            2,
            false,
            42,
        );
        let spans = tracer.recent(10);
        assert_eq!(spans.len(), 2, "one busy span per worker");
        let mut tids: Vec<u32> = spans.iter().map(|s| s.tid).collect();
        tids.sort_unstable();
        assert_eq!(tids, [1, 2], "workers use their own display lanes");
        for s in &spans {
            assert_eq!(s.name, "pool.worker");
            assert_eq!(s.parent, 42);
            assert!(s.args.iter().any(|(k, _)| k == "items"));
        }
        // A zero trace parent suppresses busy spans entirely.
        pool.run(&mut [WorkItem::Step(&mut a)], 2, false, 0);
        assert_eq!(tracer.recent(10).len(), 2);
    }
}
