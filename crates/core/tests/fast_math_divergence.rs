//! Bounded-divergence suite for the fast-math lane mode.
//!
//! Fast-math sweeps ([`ClusterSolver::set_fast_math`]) trade the repo's
//! bit-identity invariant for FMA contraction in the batched chunk
//! kernel. These tests pin down what replaces that invariant: over
//! multi-thousand-tick replays, every node temperature must stay within
//! [`EPSILON_CELSIUS`] of the exact scalar-kernel trajectory — the
//! epsilon whose derivation lives in `DESIGN.md` §"Vectorized lane
//! sweeps". An FMA replaces `round(round(a·b) + c)` with
//! `round(a·b + c)`, perturbing each sub-step by at most one ulp of the
//! operand (~1e-14 °C at room temperatures); the sub-step operator is a
//! convex mix (weights sum to 1 on air nodes, below 1 on components),
//! so perturbations do not amplify and the accumulated gap stays orders
//! of magnitude below the documented bound.
//!
//! Test names contain `fast_math` so CI can run exactly this suite
//! (`cargo test -p mercury --release --test fast_math_divergence`).

use mercury::presets::{self, nodes};
use mercury::solver::{ClusterSolver, SimdBackend, SolverConfig};
use proptest::prelude::*;

/// The documented fast-math divergence bound: the maximum per-node
/// temperature gap between a fast-math and an exact trajectory over a
/// ≥5000-tick replay. Measured worst case on AVX-512/AVX2/NEON hosts is
/// below 1e-10 °C; the contract leaves two orders of magnitude of
/// margin. Keep in sync with `DESIGN.md` §"Vectorized lane sweeps".
const EPSILON_CELSIUS: f64 = 1e-8;

/// Runs `ticks` ticks of a scripted replay and returns the largest
/// per-node absolute temperature gap between the exact per-machine
/// scalar path and the batched fast-math path on `backend`.
fn max_divergence(
    cluster: &mercury::model::ClusterModel,
    backend: SimdBackend,
    utils: &[f64],
    ticks: usize,
) -> f64 {
    let run = |fast: bool| {
        let mut s = ClusterSolver::new(cluster, SolverConfig::default()).unwrap();
        if fast {
            s.set_simd_backend(backend).unwrap();
            s.set_fast_math(true);
        } else {
            // The exact baseline is the scalar kernel itself: batching
            // off, so every machine steps through its own StepKernel.
            s.set_batching(false);
        }
        let names: Vec<String> = s.machine_names().iter().map(|n| n.to_string()).collect();
        for (i, name) in names.iter().enumerate() {
            let u = utils[i % utils.len()];
            s.set_utilization(name, nodes::CPU, u).unwrap();
            s.set_utilization(name, nodes::DISK_PLATTERS, 1.0 - u)
                .unwrap();
        }
        s.step_for(ticks);
        s
    };
    let exact = run(false);
    let fast = run(true);
    assert!(
        fast.batched_machines() == fast.len(),
        "fast-math run must engage the batched path"
    );
    let mut worst = 0.0f64;
    for m in 0..exact.len() {
        let ta = exact.machine_at(m).temperatures();
        let tb = fast.machine_at(m).temperatures();
        for ((_, x), (_, y)) in ta.iter().zip(&tb) {
            assert!(y.0.is_finite(), "fast-math produced a non-finite value");
            worst = worst.max((x.0 - y.0).abs());
        }
    }
    worst
}

/// Fast-math divergence from the exact scalar kernel stays within the
/// documented epsilon over a long replay on every supported vector
/// backend, at lane counts covering full and remainder chunks.
#[test]
fn fast_math_divergence_bounded_over_5k_tick_replays() {
    let utils = [0.95, 0.1, 0.7, 0.4];
    for machines in [8usize, 33] {
        let cluster = presets::validation_cluster(machines);
        for backend in SimdBackend::ALL.into_iter().filter(|b| b.supported()) {
            let worst = max_divergence(&cluster, backend, &utils, 5000);
            eprintln!(
                "fast-math divergence: {machines} machines, {}: {worst:.3e} °C",
                backend.name()
            );
            assert!(
                worst <= EPSILON_CELSIUS,
                "{} on {machines} machines diverged {worst:.3e} °C (bound {EPSILON_CELSIUS:.0e})",
                backend.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The divergence bound holds on randomized utilization mixes over
    /// 5000-tick replays with the host's best backend.
    #[test]
    fn fast_math_divergence_bounded_on_random_loads(
        utils in proptest::collection::vec(0.0f64..1.0, 3..6),
        machines in 4usize..10,
    ) {
        let cluster = presets::validation_cluster(machines);
        let worst = max_divergence(&cluster, SimdBackend::detect(), &utils, 5000);
        prop_assert!(
            worst <= EPSILON_CELSIUS,
            "diverged {worst:.3e} °C (bound {EPSILON_CELSIUS:.0e})"
        );
    }
}

/// The scalar backend has no FMA to contract: fast-math on scalar is
/// bit-identical to the exact path, and turning fast-math off restores
/// bit-identity on any backend from the next replan.
#[test]
fn fast_math_on_scalar_backend_is_bit_identical() {
    let cluster = presets::validation_cluster(12);
    let run = |configure: &dyn Fn(&mut ClusterSolver)| {
        let mut s = ClusterSolver::new(&cluster, SolverConfig::default()).unwrap();
        configure(&mut s);
        s.set_utilization("machine1", nodes::CPU, 0.9).unwrap();
        s.set_utilization("machine5", nodes::CPU, 0.3).unwrap();
        s.step_for(200);
        s
    };
    let exact = run(&|s| s.set_batching(false));
    let scalar_fast = run(&|s| {
        s.set_simd_backend(SimdBackend::Scalar).unwrap();
        s.set_fast_math(true);
    });
    assert!(!scalar_fast.fast_math() || scalar_fast.simd_backend() == SimdBackend::Scalar);
    let vector_off = run(&|s| {
        s.set_fast_math(true);
        s.set_fast_math(false);
        assert!(!s.fast_math());
    });
    for (s, context) in [
        (&scalar_fast, "scalar+fast"),
        (&vector_off, "fast toggled off"),
    ] {
        for m in 0..exact.len() {
            let ta = exact.machine_at(m).temperatures();
            let tb = s.machine_at(m).temperatures();
            for ((name, x), (_, y)) in ta.iter().zip(&tb) {
                assert_eq!(
                    x.0.to_bits(),
                    y.0.to_bits(),
                    "{context}: machine {m} node {name}"
                );
            }
        }
    }
}
