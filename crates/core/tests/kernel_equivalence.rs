//! Equivalence tests for the CSR step kernel.
//!
//! `ReferenceSolver` below is a line-for-line port of the original
//! scan-based step loop (per-sub-step edge-list scans, division by the
//! heat capacity) built purely on the public API. The property tests
//! drive it and the production [`Solver`] over random machine models and
//! require agreement within 1e-9 °C per node over a hundred-plus ticks —
//! the kernel's only numerical deviation is multiplying by a precomputed
//! `1/(m·c)` instead of dividing, worth less than an ulp per sub-step.
//!
//! The cluster-side guarantee is stronger: serial and multi-threaded
//! stepping must be *bit-identical*, because machines within a tick are
//! independent.

// The reference port deliberately mirrors the seed's indexed loops.
#![allow(clippy::needless_range_loop)]

use mercury::model::{AirKind, MachineModel};
use mercury::physics;
use mercury::presets;
use mercury::solver::{air_flows, required_substeps, ClusterSolver, Solver, SolverConfig};
use mercury::units::{Celsius, KilogramsPerSecond, Seconds, Utilization, WattsPerKelvin};
use proptest::prelude::*;

/// The original scan-based stepper, kept as the oracle the kernel is
/// measured against.
struct ReferenceSolver {
    names: Vec<String>,
    power: Vec<Option<mercury::model::PowerModel>>,
    air_mass: Vec<Option<f64>>,
    fixed: Vec<bool>,
    capacity: Vec<f64>,
    utilization: Vec<Utilization>,
    temp: Vec<f64>,
    heat_edges: Vec<(usize, usize, WattsPerKelvin)>,
    air_edges: Vec<(usize, usize, f64)>,
    edge_flow: Vec<KilogramsPerSecond>,
    topo: Vec<usize>,
    substeps: usize,
    dt: Seconds,
}

impl ReferenceSolver {
    fn new(model: &MachineModel) -> Self {
        let cfg = SolverConfig::default();
        let n = model.nodes().len();
        let names: Vec<String> = model.nodes().iter().map(|x| x.name().to_string()).collect();
        let power = model
            .nodes()
            .iter()
            .map(|x| x.as_component().map(|c| c.power.clone()))
            .collect();
        let air_mass: Vec<Option<f64>> = model
            .nodes()
            .iter()
            .map(|x| x.as_air().map(|a| a.mass_kg))
            .collect();
        let fixed: Vec<bool> = model
            .nodes()
            .iter()
            .map(|x| x.is_air_kind(AirKind::Inlet))
            .collect();
        let capacity: Vec<f64> = model.nodes().iter().map(|x| x.capacity().0).collect();
        let heat_edges: Vec<(usize, usize, WattsPerKelvin)> = model
            .heat_edges()
            .iter()
            .map(|e| (e.a.index(), e.b.index(), e.k))
            .collect();
        let air_edges: Vec<(usize, usize, f64)> = model
            .air_edges()
            .iter()
            .map(|e| (e.from.index(), e.to.index(), e.fraction))
            .collect();
        let inlets = model.inlets();
        let (edge_flow, inflow) = air_flows(
            n,
            model.air_edges(),
            model.topo_order(),
            &inlets,
            model.fan().mass_flow(),
        );
        let caps: Vec<mercury::units::JoulesPerKelvin> =
            model.nodes().iter().map(|x| x.capacity()).collect();
        let substeps = required_substeps(
            cfg.dt,
            cfg.stability_limit,
            &heat_edges,
            &caps,
            &inflow,
            &air_mass,
        );
        ReferenceSolver {
            names,
            power,
            air_mass,
            fixed,
            capacity,
            utilization: vec![Utilization::IDLE; n],
            temp: vec![model.inlet_temperature().0; n],
            heat_edges,
            air_edges,
            edge_flow,
            topo: model.topo_order().iter().map(|id| id.index()).collect(),
            substeps,
            dt: cfg.dt,
        }
    }

    fn set_utilization(&mut self, name: &str, u: f64) {
        let i = self.names.iter().position(|x| x == name).unwrap();
        self.utilization[i] = u.into();
    }

    fn step(&mut self) {
        let n = self.names.len();
        let dts = Seconds(self.dt.0 / self.substeps as f64);
        let mut dq = vec![0.0_f64; n];
        let mut adv = vec![0.0_f64; n];
        for _ in 0..self.substeps {
            dq.iter_mut().for_each(|q| *q = 0.0);
            adv.iter_mut().for_each(|q| *q = 0.0);
            for i in 0..n {
                if let Some(power) = &self.power[i] {
                    dq[i] += physics::heat_generated(power, self.utilization[i], dts).0;
                }
            }
            for &(a, b, k) in &self.heat_edges {
                let q =
                    physics::heat_transfer(k, Celsius(self.temp[a]), Celsius(self.temp[b]), dts);
                dq[a] -= q.0;
                dq[b] += q.0;
            }
            for &node in &self.topo {
                if self.fixed[node] {
                    continue;
                }
                let Some(mass_kg) = self.air_mass[node] else {
                    continue;
                };
                let mut streams_mass = 0.0;
                let mut streams_heat = 0.0;
                for (ei, &(from, to, _)) in self.air_edges.iter().enumerate() {
                    if to == node {
                        streams_mass += self.edge_flow[ei].0;
                        streams_heat += self.edge_flow[ei].0 * self.temp[from];
                    }
                }
                if streams_mass > 0.0 {
                    let t_mix = streams_heat / streams_mass;
                    let alpha = physics::replacement_fraction(
                        KilogramsPerSecond(streams_mass),
                        mass_kg,
                        dts,
                    );
                    adv[node] = alpha * (t_mix - self.temp[node]);
                }
            }
            for i in 0..n {
                if !self.fixed[i] {
                    self.temp[i] += dq[i] / self.capacity[i] + adv[i];
                }
            }
        }
    }
}

/// A random but always-valid machine: an air chain from inlet to exhaust
/// with optional skip edges, and components heat-tied to random regions.
fn random_machine() -> impl Strategy<Value = (MachineModel, Vec<f64>)> {
    (1usize..5, 1usize..5).prop_flat_map(|(airs, comps)| {
        (
            proptest::collection::vec(0.004f64..0.02, airs..=airs), // region masses
            proptest::collection::vec(0.3f64..0.9, airs + 1..=airs + 1), // chain fractions
            proptest::collection::vec(0.05f64..2.0, comps..=comps), // component masses
            proptest::collection::vec(0.2f64..8.0, comps..=comps),  // heat ks
            proptest::collection::vec(0usize..airs, comps..=comps), // component placement
            proptest::collection::vec(0.0f64..1.0, comps..=comps),  // utilizations
            proptest::collection::vec(3.0f64..60.0, comps..=comps), // max powers
            (20.0f64..80.0, any::<bool>()),                         // fan cfm, skip edges
        )
            .prop_map(
                move |(masses, fracs, cmasses, ks, placement, utils, powers, (cfm, skips))| {
                    let mut b = MachineModel::builder("random");
                    b.inlet("inlet");
                    for (i, m) in masses.iter().enumerate() {
                        b.air_with_mass(format!("a{i}"), *m, AirKind::Internal);
                    }
                    b.exhaust("exhaust");
                    let node_name = |i: usize| {
                        if i == 0 {
                            "inlet".to_string()
                        } else if i <= airs {
                            format!("a{}", i - 1)
                        } else {
                            "exhaust".to_string()
                        }
                    };
                    // Chain inlet -> a0 -> ... -> exhaust. With skip edges
                    // on, each chain hop carries `f` and a skip edge to the
                    // node after next carries most of the remainder, so no
                    // source ever exceeds a fraction sum of 1.
                    for i in 0..=airs {
                        let f = if skips { fracs[i] } else { 1.0 };
                        b.air_edge(&node_name(i), &node_name(i + 1), f).unwrap();
                        if skips && i + 2 <= airs + 1 {
                            b.air_edge(&node_name(i), &node_name(i + 2), (1.0 - fracs[i]) * 0.9)
                                .unwrap();
                        }
                    }
                    for c in 0..cmasses.len() {
                        b.component(format!("c{c}"))
                            .mass_kg(cmasses[c])
                            .specific_heat(896.0)
                            .power_range(powers[c] * 0.2, powers[c]);
                        b.heat_edge(&format!("c{c}"), &format!("a{}", placement[c]), ks[c])
                            .unwrap();
                    }
                    b.fan_cfm(cfm).inlet_temperature_c(21.6);
                    (b.build().unwrap(), utils)
                },
            )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The kernel-based solver agrees with the scan-based reference to
    /// 1e-9 °C on every node, over 120 ticks of a random machine.
    #[test]
    fn kernel_matches_reference_stepper((model, utils) in random_machine()) {
        let mut reference = ReferenceSolver::new(&model);
        let mut solver = Solver::new(&model, SolverConfig::default()).unwrap();
        for (c, u) in utils.iter().enumerate() {
            let name = format!("c{c}");
            reference.set_utilization(&name, *u);
            solver.set_utilization(&name, *u).unwrap();
        }
        for tick in 0..120 {
            reference.step();
            solver.step();
            for (i, name) in reference.names.iter().enumerate() {
                let got = solver.temperature(name).unwrap().0;
                let want = reference.temp[i];
                prop_assert!(
                    (got - want).abs() <= 1e-9,
                    "tick {tick}, node {name}: kernel {got} vs reference {want}"
                );
            }
        }
    }

    /// Changing utilization mid-run keeps the two steppers in agreement
    /// (the kernel re-prices its per-tick power inputs every step).
    #[test]
    fn kernel_tracks_utilization_changes((model, utils) in random_machine(), flip in 1usize..100) {
        let mut reference = ReferenceSolver::new(&model);
        let mut solver = Solver::new(&model, SolverConfig::default()).unwrap();
        for tick in 0..100 {
            if tick == flip {
                for (c, u) in utils.iter().enumerate() {
                    let name = format!("c{c}");
                    reference.set_utilization(&name, *u);
                    solver.set_utilization(&name, *u).unwrap();
                }
            }
            reference.step();
            solver.step();
        }
        for (i, name) in reference.names.iter().enumerate() {
            let got = solver.temperature(name).unwrap().0;
            prop_assert!(
                (got - reference.temp[i]).abs() <= 1e-9,
                "node {name}: kernel {got} vs reference {}", reference.temp[i]
            );
        }
    }
}

/// Serial and parallel cluster stepping must produce bit-identical
/// trajectories — inter-machine mixing happens before the per-tick
/// fan-out, so thread count can never reorder a floating-point operation.
#[test]
fn cluster_thread_count_is_bit_invariant() {
    let model = presets::validation_cluster(12);
    let mut serial = ClusterSolver::new(&model, SolverConfig::default()).unwrap();
    let mut threaded = ClusterSolver::new(&model, SolverConfig::default()).unwrap();
    serial.set_threads(1);
    threaded.set_threads(4);
    for m in 0..12 {
        let u = 0.05 + 0.08 * m as f64;
        let name = format!("machine{}", m + 1);
        serial.set_utilization(&name, "cpu", u).unwrap();
        threaded.set_utilization(&name, "cpu", u).unwrap();
    }
    serial.step_for(50);
    threaded.step_for(50);
    assert_eq!(serial.effective_threads(), 1);
    assert!(
        threaded.effective_threads() > 1
            || std::thread::available_parallelism().unwrap().get() == 1
    );
    for m in 0..12 {
        let a = serial.machine_at(m).temperatures();
        let b = threaded.machine_at(m).temperatures();
        for ((name, ta), (_, tb)) in a.iter().zip(&b) {
            assert_eq!(
                ta.0.to_bits(),
                tb.0.to_bits(),
                "machine {m} node {name}: {} vs {}",
                ta.0,
                tb.0
            );
        }
    }
}

/// The paper's Table 1 machine, end to end: kernel vs reference.
#[test]
fn validation_machine_matches_reference() {
    let model = presets::validation_machine();
    let mut reference = ReferenceSolver::new(&model);
    let mut solver = Solver::new(&model, SolverConfig::default()).unwrap();
    for name in model
        .nodes()
        .iter()
        .filter_map(|n| n.as_component().map(|c| c.name.clone()))
    {
        if solver.set_utilization(&name, 0.7).is_ok() {
            reference.set_utilization(&name, 0.7);
        }
    }
    for _ in 0..300 {
        reference.step();
        solver.step();
    }
    for (i, name) in reference.names.iter().enumerate() {
        let got = solver.temperature(name).unwrap().0;
        let want = reference.temp[i];
        assert!(
            (got - want).abs() <= 1e-9,
            "node {name}: kernel {got} vs reference {want}"
        );
    }
}
