//! Equivalence tests for batched cluster stepping.
//!
//! The cluster solver's batched path (structure-sharing SoA sweeps over
//! fingerprint-identical machines) must be *bit-identical* to the
//! per-machine path, at every thread count, on clusters that mix
//! replicated machines, structurally unique machines, and machines
//! fiddled away from their source model mid-run. These tests drive both
//! paths over the same inputs and compare every node temperature bitwise.
//!
//! Test names contain `batch` so CI can run exactly this suite in
//! release mode (`cargo test -p mercury --release -- batch`), where the
//! vectorized sweep actually engages.

use mercury::presets::{self, nodes};
use mercury::solver::{ClusterSolver, SimdBackend, Solver, SolverConfig};
use mercury::units::Celsius;
use proptest::prelude::*;

/// Bitwise comparison of every node temperature on every machine.
fn assert_bit_identical(a: &ClusterSolver, b: &ClusterSolver, context: &str) {
    assert_eq!(a.len(), b.len());
    for m in 0..a.len() {
        let ta = a.machine_at(m).temperatures();
        let tb = b.machine_at(m).temperatures();
        for ((name, x), (_, y)) in ta.iter().zip(&tb) {
            assert_eq!(
                x.0.to_bits(),
                y.0.to_bits(),
                "{context}: machine {m} node {name}: {} vs {}",
                x.0,
                y.0
            );
        }
    }
}

/// One scripted run: identical inputs pushed into a solver configured
/// with (batching, threads). Exercises replica fan-fiddles mid-run (a
/// machine leaving its batch group), per-variant utilizations, and a
/// forced inlet. `backend` forces the batched lane sweeps onto one
/// SIMD backend (`None` keeps the host default).
#[allow(clippy::too_many_arguments)]
fn scripted_run(
    cluster: &mercury::model::ClusterModel,
    batching: bool,
    threads: usize,
    backend: Option<SimdBackend>,
    utils: &[f64],
    fiddle_machine: usize,
    fiddle_tick: usize,
    ticks: usize,
) -> ClusterSolver {
    let mut s = ClusterSolver::new(cluster, SolverConfig::default()).unwrap();
    s.set_batching(batching);
    s.set_threads(threads);
    if let Some(backend) = backend {
        s.set_simd_backend(backend).unwrap();
    }
    let names: Vec<String> = s.machine_names().iter().map(|n| n.to_string()).collect();
    for (i, name) in names.iter().enumerate() {
        let u = utils[i % utils.len()];
        s.set_utilization(name, nodes::CPU, u).unwrap();
        s.set_utilization(name, nodes::DISK_PLATTERS, 1.0 - u)
            .unwrap();
    }
    s.force_inlet(&names[0], Celsius(24.0)).unwrap();
    for tick in 0..ticks {
        if tick == fiddle_tick {
            // Kick one machine off the batched path mid-run: a fan-speed
            // fiddle diverges its kernel from the source model.
            let name = &names[fiddle_machine % names.len()];
            s.machine_mut(name).unwrap().set_fan_cfm(30.0).unwrap();
        }
        s.step();
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Batched and per-machine stepping are bit-identical on a mixed
    /// cluster (replicas + structural variants + a mid-run fan fiddle +
    /// a forced inlet), at thread counts 1, 2 and 3, on every SIMD
    /// backend the host supports (unsupported draws fall back to
    /// scalar, so every backend index is a valid case everywhere).
    #[test]
    fn batched_matches_per_machine_on_mixed_clusters(
        replicated in 3usize..8,
        unique in 0usize..3,
        utils in proptest::collection::vec(0.0f64..1.0, 3..6),
        fiddle_machine in 0usize..8,
        fiddle_tick in 1usize..25,
        threads in 1usize..4,
        backend_idx in 0usize..SimdBackend::ALL.len(),
    ) {
        let backend = SimdBackend::ALL[backend_idx];
        let backend = if backend.supported() { backend } else { SimdBackend::Scalar };
        let cluster = presets::mixed_cluster(replicated, unique);
        let baseline = scripted_run(
            &cluster, false, 1, None, &utils, fiddle_machine, fiddle_tick, 30,
        );
        prop_assert_eq!(baseline.batched_machines(), 0);
        let batched = scripted_run(
            &cluster, true, threads, Some(backend), &utils, fiddle_machine,
            fiddle_tick, 30,
        );
        // The batched run really used the batched path (the replicas
        // minus at most the fiddled one still form a group of >= 2).
        prop_assert!(
            batched.batched_machines() >= replicated - 1,
            "only {} machines batched out of {} replicas",
            batched.batched_machines(),
            replicated
        );
        assert_bit_identical(
            &baseline,
            &batched,
            &format!("mixed cluster on {}", batched.simd_backend().name()),
        );
    }
}

/// Every supported SIMD backend is bit-identical to the per-machine
/// path at lane counts that stress remainder handling: cluster sizes
/// 2, 3, 31, 32 and 33 produce chunks of 1 (the 33rd machine's
/// remainder chunk), 2, 3, 31 and a full 32 lanes, covering every
/// `lanes % width` residue for 2-, 4- and 8-wide blocks.
#[test]
fn batched_backends_match_at_odd_lane_counts() {
    let utils = [0.85, 0.15, 0.6, 0.4, 0.95];
    for machines in [2usize, 3, 31, 32, 33] {
        let cluster = presets::validation_cluster(machines);
        let baseline = scripted_run(&cluster, false, 1, None, &utils, 1, 9, 25);
        for backend in SimdBackend::ALL.into_iter().filter(|b| b.supported()) {
            let batched = scripted_run(&cluster, true, 1, Some(backend), &utils, 1, 9, 25);
            assert_eq!(batched.simd_backend(), backend);
            // After the mid-run fiddle demotes one machine, the rest
            // still batch — unless that leaves fewer than the 2-machine
            // group minimum (the `machines == 2` case, whose 2-lane
            // chunks were exercised by the pre-fiddle ticks).
            let expect_batched = if machines > 2 { machines - 1 } else { 0 };
            assert!(
                batched.batched_machines() >= expect_batched,
                "{machines} machines on {}: only {} batched",
                backend.name(),
                batched.batched_machines()
            );
            assert_bit_identical(
                &baseline,
                &batched,
                &format!("{machines} machines on {}", backend.name()),
            );
        }
    }
}

/// Forcing an unsupported backend is a checked error; the selected
/// backend and the lane-width gauge stay put.
#[test]
fn batch_backend_selection_is_validated() {
    let cluster = presets::validation_cluster(4);
    let mut s = ClusterSolver::new(&cluster, SolverConfig::default()).unwrap();
    let host_default = s.simd_backend();
    assert!(host_default.supported());
    // Scalar is supported everywhere; at least one of the vector
    // backends must be rejected on any single-architecture host.
    s.set_simd_backend(SimdBackend::Scalar).unwrap();
    assert_eq!(s.simd_backend(), SimdBackend::Scalar);
    let unsupported: Vec<SimdBackend> = SimdBackend::ALL
        .into_iter()
        .filter(|b| !b.supported())
        .collect();
    assert!(!unsupported.is_empty(), "no host supports every backend");
    for backend in unsupported {
        assert!(s.set_simd_backend(backend).is_err());
        assert_eq!(
            s.simd_backend(),
            SimdBackend::Scalar,
            "rejected switch stuck"
        );
    }
}

/// The replicated fast path engages on a homogeneous cluster and stays
/// bit-identical to the per-machine path across thread counts.
#[test]
fn batched_replicated_cluster_is_bit_identical_at_all_thread_counts() {
    let cluster = presets::validation_cluster(40);
    let utils = [0.9, 0.2, 0.55, 0.7];
    let baseline = scripted_run(&cluster, false, 1, None, &utils, 5, 10, 40);
    for threads in [1, 2, 3, 4] {
        let batched = scripted_run(&cluster, true, threads, None, &utils, 5, 10, 40);
        // 40 replicas, one fiddled away mid-run.
        assert_eq!(batched.batched_machines(), 39);
        assert_bit_identical(&baseline, &batched, &format!("{threads} threads"));
    }
}

/// A machine whose fan is fiddled leaves the batch group; the rest stay.
#[test]
fn batch_membership_follows_divergence() {
    let cluster = presets::validation_cluster(12);
    let mut s = ClusterSolver::new(&cluster, SolverConfig::default()).unwrap();
    assert_eq!(s.batched_machines(), 0, "no plan before the first tick");
    s.step();
    assert_eq!(s.batched_machines(), 12);
    s.machine_mut("machine3")
        .unwrap()
        .set_fan_cfm(20.0)
        .unwrap();
    s.step();
    assert_eq!(s.batched_machines(), 11);
    // Disabling batching clears the plan; re-enabling rebuilds it.
    s.set_batching(false);
    s.step();
    assert_eq!(s.batched_machines(), 0);
    s.set_batching(true);
    s.step();
    assert_eq!(s.batched_machines(), 11);
}

/// A mid-run fan-speed change invalidates the cached air flows exactly
/// once: the flows are recomputed on the next step and then served from
/// cache again, and re-commanding the *same* speed recomputes nothing.
#[test]
fn batch_flow_cache_invalidated_exactly_once_by_fan_change() {
    let mut s = Solver::new(&presets::validation_machine(), SolverConfig::default()).unwrap();
    let recomputes = s.metrics().flow_recomputes.clone();
    assert_eq!(recomputes.get(), 1, "construction prices the flows once");
    for _ in 0..10 {
        s.step();
    }
    assert_eq!(recomputes.get(), 1, "steady stepping hits the cache");

    s.set_fan_cfm(50.0).unwrap();
    for _ in 0..10 {
        s.step();
    }
    assert_eq!(recomputes.get(), 2, "fan change recomputes exactly once");

    s.set_fan_cfm(50.0).unwrap();
    s.step();
    assert_eq!(
        recomputes.get(),
        2,
        "same speed re-commanded is a cache hit"
    );

    // A heat-k fiddle rebuilds the operator but leaves air flows alone.
    s.set_heat_k(nodes::CPU, nodes::CPU_AIR, 0.9).unwrap();
    s.step();
    assert_eq!(recomputes.get(), 2, "heat-k fiddle does not touch flows");

    // An air-fraction fiddle *does* change the flow distribution.
    s.set_air_fraction(nodes::VOID_AIR, nodes::EXHAUST, 0.9)
        .unwrap();
    s.step();
    assert_eq!(recomputes.get(), 3);
}
