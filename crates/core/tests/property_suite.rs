//! Property tests for the Mercury core: physics invariants over random
//! graphs, protocol totality, and fiddle grammar round-trips.

use mercury::fiddle::{FiddleCommand, FiddleScript};
use mercury::model::MachineModel;
use mercury::net::proto::{self, Request};
use mercury::solver::{Solver, SolverConfig};
use mercury::units::Celsius;
use proptest::prelude::*;

/// A random closed system: `n` components fully mixed by a random
/// spanning tree of heat edges (no air, no boundary, no power).
fn closed_system() -> impl Strategy<Value = (MachineModel, Vec<f64>)> {
    (2usize..7).prop_flat_map(|n| {
        (
            proptest::collection::vec(0.05f64..3.0, n..=n), // masses
            proptest::collection::vec(0.1f64..15.0, n - 1..=n - 1), // tree edge ks
            proptest::collection::vec(-20.0f64..90.0, n..=n), // initial temps
        )
            .prop_map(move |(masses, ks, temps)| {
                let mut b = MachineModel::builder("closed");
                for (i, mass) in masses.iter().enumerate() {
                    b.component(format!("c{i}"))
                        .mass_kg(*mass)
                        .specific_heat(900.0)
                        .constant_power(0.0);
                }
                for (i, k) in ks.iter().enumerate() {
                    // A path graph keeps everything connected and acyclic.
                    b.heat_edge(&format!("c{i}"), &format!("c{}", i + 1), *k)
                        .unwrap();
                }
                (b.build().unwrap(), temps)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Energy conservation over arbitrary closed chains.
    #[test]
    fn random_closed_chains_conserve_energy((model, temps) in closed_system(), ticks in 1usize..300) {
        let mut solver = Solver::new(&model, SolverConfig::default()).unwrap();
        for (i, t) in temps.iter().enumerate() {
            solver.set_temperature(&format!("c{i}"), Celsius(*t)).unwrap();
        }
        let before = solver.heat_content().0;
        solver.step_for(ticks);
        let after = solver.heat_content().0;
        prop_assert!(
            (before - after).abs() <= 1e-6 * before.abs().max(1.0),
            "energy drifted {before} -> {after}"
        );
    }

    /// Maximum principle: in a closed system with no sources, every
    /// temperature stays inside the initial [min, max] envelope forever.
    #[test]
    fn closed_chains_obey_the_maximum_principle((model, temps) in closed_system()) {
        let mut solver = Solver::new(&model, SolverConfig::default()).unwrap();
        for (i, t) in temps.iter().enumerate() {
            solver.set_temperature(&format!("c{i}"), Celsius(*t)).unwrap();
        }
        let lo = temps.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = temps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for _ in 0..300 {
            solver.step();
            for (name, t) in solver.temperatures() {
                prop_assert!(
                    t.0 >= lo - 1e-9 && t.0 <= hi + 1e-9,
                    "{name} escaped [{lo}, {hi}]: {t}"
                );
            }
        }
    }

    /// Equilibrium: the chain converges to the energy-weighted mean.
    #[test]
    fn closed_chains_converge_to_the_weighted_mean((model, temps) in closed_system()) {
        let mut solver = Solver::new(&model, SolverConfig::default()).unwrap();
        let mut total_energy = 0.0;
        let mut total_capacity = 0.0;
        for (i, t) in temps.iter().enumerate() {
            solver.set_temperature(&format!("c{i}"), Celsius(*t)).unwrap();
        }
        for node in model.nodes() {
            let capacity = node.capacity().0;
            let i: usize = node.name()[1..].parse().unwrap();
            total_energy += capacity * temps[i];
            total_capacity += capacity;
        }
        let expected = total_energy / total_capacity;
        let (_, converged) = solver.run_to_steady_state(1e-9, 2_000_000);
        prop_assume!(converged);
        for (name, t) in solver.temperatures() {
            prop_assert!(
                (t.0 - expected).abs() < 0.01,
                "{name} settled at {t}, expected {expected:.3}"
            );
        }
    }

    /// The wire protocol decoder is total: arbitrary bytes never panic.
    #[test]
    fn protocol_decoders_are_total(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = proto::decode_request(&bytes);
        let _ = proto::decode_reply(&bytes);
    }

    /// Utilization updates round-trip for arbitrary names and values.
    #[test]
    fn utilization_updates_round_trip(
        machine in "[a-zA-Z0-9_.-]{0,30}",
        pairs in proptest::collection::vec(("[a-zA-Z0-9_]{1,20}", 0.0f32..=1.0), 0..8),
    ) {
        let request = Request::UtilizationUpdate {
            machine,
            utilizations: pairs,
        };
        let decoded = proto::decode_request(&proto::encode_request(&request)).unwrap();
        prop_assert_eq!(decoded, request);
    }

    /// Every fiddle command's display form parses back to itself, for
    /// random identifiers and finite values.
    #[test]
    fn fiddle_commands_round_trip(
        machine in "[a-zA-Z][a-zA-Z0-9_]{0,12}",
        node in "[a-zA-Z][a-zA-Z0-9_]{0,12}",
        value in 0.001f64..1000.0,
        which in 0usize..6,
    ) {
        let command = match which {
            0 => FiddleCommand::Temperature { machine, node, celsius: value },
            1 => FiddleCommand::Release { machine, node },
            2 => FiddleCommand::FanSpeed { machine, cfm: value },
            3 => FiddleCommand::Power {
                machine,
                component: node,
                base_w: value,
                max_w: value * 2.0,
            },
            4 => FiddleCommand::HeatK { machine, a: node.clone(), b: format!("{node}_x"), k: value },
            _ => FiddleCommand::AirFraction {
                machine,
                from: node.clone(),
                to: format!("{node}_x"),
                fraction: (value % 1.0).max(0.001),
            },
        };
        let script = FiddleScript::parse(&command.to_string()).unwrap();
        prop_assert_eq!(&script.events()[0].command, &command);
    }

    /// The fiddle script parser is total on arbitrary text.
    #[test]
    fn fiddle_parser_is_total(text in "\\PC{0,300}") {
        let _ = FiddleScript::parse(&text);
    }
}
