//! End-to-end tests of the binary trace pipeline: CSV ↔ `.events`
//! round-trips under the quantization contract, strict decode rejection,
//! out-of-core replay equivalence (mapped vs buffered vs hand-rolled
//! per-tick feeding) with flat decode memory, and checkpointed
//! time-segment replay held bitwise-identical to the serial run at
//! several thread counts.

use mercury::presets;
use mercury::solver::{ClusterSolver, SolverConfig};
use mercury::trace::events::{self, quantize, QUANT_BOUND};
use mercury::trace::stream::{ClusterBinding, EventsStream};
use mercury::trace::UtilizationTrace;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monitored components of the Table 1 validation server, in a fixed
/// order shared by every trace in these tests.
const COMPONENTS: [&str; 2] = ["cpu", "disk_platters"];

fn unique_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "mercury-pipeline-{}-{n}-{tag}.events",
        std::process::id()
    ))
}

/// A scope guard that deletes the file on drop, pass or fail.
struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn write_events(traces: &[UtilizationTrace], tag: &str) -> (PathBuf, Cleanup) {
    let (bytes, _) = events::encode_to_vec(traces).unwrap();
    let path = unique_path(tag);
    std::fs::write(&path, bytes).unwrap();
    (path.clone(), Cleanup(path))
}

/// Builds one trace per machine over [`COMPONENTS`] from raw fractions.
/// `rows[t][m * COMPONENTS.len() + c]` is machine `m`, component `c` at
/// tick `t`.
fn traces_from_rows(machines: usize, rows: &[Vec<f64>]) -> Vec<UtilizationTrace> {
    (0..machines)
        .map(|m| {
            let mut t = UtilizationTrace::new(
                format!("machine{}", m + 1),
                1.0,
                COMPONENTS.iter().map(|c| c.to_string()).collect(),
            )
            .unwrap();
            for row in rows {
                let w = COMPONENTS.len();
                t.push_row(&row[m * w..(m + 1) * w]).unwrap();
            }
            t
        })
        .collect()
}

/// A blocky random workload: utilizations change only at segment
/// boundaries so the encoder has real HOLD runs to find.
fn blocky_rows() -> impl Strategy<Value = (usize, Vec<Vec<f64>>)> {
    (2usize..5, 1usize..6).prop_flat_map(|(machines, blocks)| {
        let width = machines * COMPONENTS.len();
        (
            Just(machines),
            proptest::collection::vec(
                (
                    proptest::collection::vec(0.0f64..1.0, width..=width),
                    1usize..12,
                ),
                blocks..=blocks,
            ),
        )
            .prop_map(|(machines, blocks)| {
                let rows = blocks
                    .into_iter()
                    .flat_map(|(row, repeat)| std::iter::repeat_n(row, repeat))
                    .collect::<Vec<_>>();
                (machines, rows)
            })
    })
}

fn cluster(n: usize, threads: usize) -> ClusterSolver {
    let mut c = ClusterSolver::new(&presets::validation_cluster(n), SolverConfig::default())
        .expect("preset cluster builds");
    c.set_threads(threads);
    c
}

fn temps_bits(c: &ClusterSolver) -> Vec<u64> {
    (0..c.len())
        .flat_map(|i| {
            c.machine_at(i)
                .temperatures()
                .into_iter()
                .map(|(_, t)| t.0.to_bits())
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CSV ↔ `.events` ↔ CSV: one pass through the quantizer, then every
    /// further conversion is bit-exact, and re-encoding a decode gives
    /// back the identical byte stream (the encoder is canonical).
    #[test]
    fn csv_events_csv_round_trip((machines, rows) in blocky_rows()) {
        let originals = traces_from_rows(machines, &rows);
        let (bytes, stats) = events::encode_to_vec(&originals).unwrap();
        prop_assert_eq!(stats.ticks as usize, rows.len());
        let decoded = events::decode(&bytes).unwrap();
        prop_assert_eq!(decoded.len(), originals.len());

        for (original, roundtrip) in originals.iter().zip(&decoded) {
            prop_assert_eq!(original.machine(), roundtrip.machine());
            prop_assert_eq!(original.len(), roundtrip.len());
            for t in 0..original.len() {
                let time = mercury::units::Seconds(t as f64);
                let a = original.at(time).unwrap();
                let b = roundtrip.at(time).unwrap();
                for (x, y) in a.iter().zip(b) {
                    // The one lossy step: off-grid values move by at most
                    // the quantization bound...
                    prop_assert!((x.fraction() - y.fraction()).abs() <= QUANT_BOUND);
                    // ...and land exactly on the dequantized grid.
                    prop_assert_eq!(
                        y.fraction().to_bits(),
                        events::dequantize(quantize(x.fraction())).to_bits()
                    );
                }
            }
        }

        // Canonical encoder: decode → encode is the identity on bytes.
        let (bytes2, _) = events::encode_to_vec(&decoded).unwrap();
        prop_assert_eq!(&bytes, &bytes2);

        // CSV is exact from here on: decoded → CSV → parsed is bit-equal.
        for trace in &decoded {
            let mut csv = Vec::new();
            trace.write_csv(&mut csv).unwrap();
            let parsed = UtilizationTrace::read_csv_from(&csv[..]).unwrap();
            prop_assert_eq!(parsed.machine(), trace.machine());
            prop_assert_eq!(parsed.len(), trace.len());
            for t in 0..trace.len() {
                let time = mercury::units::Seconds(t as f64);
                let a = trace.at(time).unwrap();
                let b = parsed.at(time).unwrap();
                for (x, y) in a.iter().zip(b) {
                    prop_assert_eq!(x.fraction().to_bits(), y.fraction().to_bits());
                }
            }
        }

        // And the `.events` encoding of the CSV round-trip is again the
        // same byte stream.
        let reparsed: Vec<_> = decoded
            .iter()
            .map(|t| {
                let mut csv = Vec::new();
                t.write_csv(&mut csv).unwrap();
                UtilizationTrace::read_csv_from(&csv[..]).unwrap()
            })
            .collect();
        let (bytes3, _) = events::encode_to_vec(&reparsed).unwrap();
        prop_assert_eq!(&bytes, &bytes3);
    }
}

#[test]
fn stream_rejects_corrupt_files() {
    let rows: Vec<Vec<f64>> = (0..20)
        .map(|t| vec![0.5, 0.25, (t / 7) as f64 * 0.1, 0.75])
        .collect();
    let traces = traces_from_rows(2, &rows);
    let (bytes, _) = events::encode_to_vec(&traces).unwrap();

    type Opener = fn(&std::path::Path) -> Result<EventsStream, mercury::Error>;
    let modes: [Opener; 2] = [
        |p| EventsStream::open_mapped(p),
        |p| EventsStream::open_buffered(p),
    ];

    // Truncations must fail at open (header) or during replay (records),
    // never succeed silently — in both modes.
    for cut in [4usize, 20, bytes.len() / 2, bytes.len() - 1] {
        let path = unique_path("corrupt");
        let _guard = Cleanup(path.clone());
        std::fs::write(&path, &bytes[..cut]).unwrap();
        for open in modes {
            let outcome = open(&path).and_then(|mut s| {
                let mut c = cluster(2, 1);
                let binding = ClusterBinding::new(s.header(), &c)?;
                s.replay(&binding, &mut c).map(|_| ())
            });
            assert!(outcome.is_err(), "truncation at {cut} bytes was accepted");
        }
    }

    // Bad magic and bad version fail at open in both modes.
    for (offset, value) in [(0usize, 0xffu8), (8, 99)] {
        let mut bad = bytes.clone();
        bad[offset] ^= value;
        let path = unique_path("corrupt");
        let _guard = Cleanup(path.clone());
        std::fs::write(&path, &bad).unwrap();
        assert!(EventsStream::open_mapped(&path).is_err());
        assert!(EventsStream::open_buffered(&path).is_err());
    }

    // Trailing garbage after the declared tick count fails during replay.
    let mut padded = bytes.clone();
    padded.extend_from_slice(&[0x03, 1, 0, 0, 0]); // one extra HOLD tick
    let path = unique_path("corrupt");
    let _guard = Cleanup(path.clone());
    std::fs::write(&path, &padded).unwrap();
    for open in modes {
        let mut s = open(&path).unwrap();
        let mut c = cluster(2, 1);
        let binding = ClusterBinding::new(s.header(), &c).unwrap();
        assert!(s.replay(&binding, &mut c).is_err());
    }
}

#[test]
fn binding_validates_shape_and_interval() {
    let rows = vec![vec![0.5, 0.5]; 4];
    let traces = traces_from_rows(1, &rows);
    let (bytes, _) = events::encode_to_vec(&traces).unwrap();
    let header = events::EventsHeader::parse(&bytes).unwrap().0;

    // Unknown machine name.
    let two = cluster(2, 1);
    assert!(ClusterBinding::new(&header, &two).is_ok());
    let mut renamed = header.clone();
    renamed.machines[0] = "no-such-machine".into();
    assert!(ClusterBinding::new(&renamed, &two).is_err());

    // Unmonitored component and unknown node.
    let mut shell = header.clone();
    shell.components[0] = "disk_shell".into();
    assert!(ClusterBinding::new(&shell, &two).is_err());
    let mut ghost = header.clone();
    ghost.components[0] = "no-such-node".into();
    assert!(ClusterBinding::new(&ghost, &two).is_err());

    // Interval must match dt bit-for-bit.
    let mut coarse = header;
    coarse.interval_s = 2.0;
    assert!(ClusterBinding::new(&coarse, &two).is_err());
}

/// The replay core: mapped replay, buffered replay, and a hand-rolled
/// per-tick `set_utilization` loop over the decoded trace all produce
/// bitwise-identical trajectories, and the stream's decode memory stays
/// flat from the first tick to the last.
#[test]
fn mapped_and_buffered_replay_match_per_tick_feeding() {
    let rows: Vec<Vec<f64>> = (0..240)
        .map(|t| {
            let phase = t / 40; // six 40-tick blocks → real HOLD spans
            vec![
                0.1 * phase as f64,
                0.9 - 0.1 * phase as f64,
                if phase % 2 == 0 { 1.0 } else { 0.2 },
                0.5,
                0.33,
                0.66,
            ]
        })
        .collect();
    let traces = traces_from_rows(3, &rows);
    let (path, _guard) = write_events(&traces, "equiv");

    // Ground truth: decode in RAM and feed tick by tick.
    let mut truth = cluster(3, 1);
    let decoded = events::decode(&std::fs::read(&path).unwrap()).unwrap();
    for t in 0..rows.len() {
        for trace in &decoded {
            let row = trace.at(mercury::units::Seconds(t as f64)).unwrap();
            let row: Vec<f64> = row.iter().map(|u| u.fraction()).collect();
            for (c, component) in COMPONENTS.iter().enumerate() {
                truth
                    .machine_mut(trace.machine())
                    .unwrap()
                    .set_utilization(component, row[c])
                    .unwrap();
            }
        }
        truth.step_for(1);
    }

    type Opener = fn(&PathBuf) -> Result<EventsStream, mercury::Error>;
    let modes: [(&str, Opener); 2] = [
        ("mapped", |p| EventsStream::open_mapped(p)),
        ("buffered", |p| EventsStream::open_buffered(p)),
    ];
    for (mode, open) in modes {
        let mut stream = open(&path).unwrap();
        assert_eq!(stream.is_mapped(), mode == "mapped");
        let mut c = cluster(3, 1);
        let binding = ClusterBinding::new(stream.header(), &c).unwrap();
        let flat = stream.memory_bytes();
        // Replay in uneven chunks so spans split across calls.
        let mut done = 0u64;
        for chunk in [7u64, 64, 1, 500] {
            let stats = stream.replay_ticks(&binding, &mut c, chunk).unwrap();
            done += stats.ticks;
            assert_eq!(
                stream.memory_bytes(),
                flat,
                "{mode} decode memory grew mid-replay"
            );
        }
        assert_eq!(done, rows.len() as u64);
        assert_eq!(stream.position(), rows.len() as u64);
        assert_eq!(
            temps_bits(&truth),
            temps_bits(&c),
            "{mode} replay diverged from per-tick feeding"
        );
        assert_eq!(c.time(), truth.time());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Checkpointed time-segment replay is bitwise-identical to the
    /// uninterrupted serial run, at 1, 2, and 8 threads: cut the trace at
    /// random boundaries, checkpoint the serial run at each cut, then
    /// replay every segment from its checkpoint in parallel workers and
    /// compare final (and per-boundary) state bit for bit.
    #[test]
    fn segmented_checkpoint_replay_is_bit_identical(
        (machines, rows) in blocky_rows(),
        cut_seed in 0usize..97,
    ) {
        let traces = traces_from_rows(machines, &rows);
        let (path, _guard) = write_events(&traces, "segments");
        let ticks = rows.len() as u64;

        // Deterministic pseudo-random cut points inside (0, ticks).
        let mut cuts: Vec<u64> = (1..ticks)
            .filter(|t| (t * 31 + cut_seed as u64).is_multiple_of(5))
            .take(3)
            .collect();
        cuts.dedup();
        let mut bounds = vec![0u64];
        bounds.append(&mut cuts);
        bounds.push(ticks);

        for threads in [1usize, 2, 8] {
            // Serial reference run, checkpointing at every boundary.
            let mut serial = cluster(machines, threads);
            let mut stream = EventsStream::open(&path).unwrap();
            let binding = ClusterBinding::new(stream.header(), &serial).unwrap();
            let mut blobs = vec![serial.checkpoint()];
            for pair in bounds.windows(2) {
                stream
                    .replay_ticks(&binding, &mut serial, pair[1] - pair[0])
                    .unwrap();
                blobs.push(serial.checkpoint());
            }

            // Parallel segment workers: restore blob i, seek, replay the
            // segment, and return the end-of-segment checkpoint.
            let ends: Vec<Vec<u8>> = std::thread::scope(|scope| {
                let handles: Vec<_> = bounds
                    .windows(2)
                    .enumerate()
                    .map(|(i, pair)| {
                        let (start, end) = (pair[0], pair[1]);
                        let blob = &blobs[i];
                        let path = &path;
                        scope.spawn(move || {
                            let mut c = cluster(machines, threads);
                            c.restore_checkpoint(blob).unwrap();
                            let mut s = EventsStream::open(path).unwrap();
                            let b = ClusterBinding::new(s.header(), &c).unwrap();
                            s.seek(start).unwrap();
                            let stats = s.replay_ticks(&b, &mut c, end - start).unwrap();
                            assert_eq!(stats.ticks, end - start);
                            c.checkpoint()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });

            for (i, end_blob) in ends.iter().enumerate() {
                prop_assert!(
                    end_blob == &blobs[i + 1],
                    "segment {} of {} diverged at {} threads",
                    i,
                    bounds.len() - 1,
                    threads
                );
            }
        }
    }
}
