//! Equivalence tests for the persistent tick pool and fused replay.
//!
//! Four ways of advancing a cluster must be *bit-identical*: serial
//! per-machine stepping, pool-parallel stepping (the persistent-worker
//! default), legacy spawn-per-tick stepping, and fused multi-tick
//! replay (`step_for`). These tests drive all four over the same
//! scripted inputs — mixed solo/batched clusters, mid-run fiddles that
//! break fused spans and demote machines from the batch, and
//! `set_threads` resizes mid-run — and compare every node temperature
//! bitwise at 1, 2 and 8 threads.
//!
//! Test names contain `pool` so CI can run exactly this suite in
//! release mode (`cargo test -p mercury --release -- batch pool`).

use mercury::presets::{self, nodes};
use mercury::solver::{ClusterSolver, SimdBackend, SolverConfig, TickScheduler};
use mercury::units::Celsius;
use proptest::prelude::*;

/// How a run advances time between script events.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Drive {
    /// One `step()` call per tick.
    PerTick,
    /// One `step_for(segment)` call per script segment (fused spans).
    Fused,
}

/// Bitwise comparison of every node temperature on every machine.
fn assert_bit_identical(a: &ClusterSolver, b: &ClusterSolver, context: &str) {
    assert_eq!(a.len(), b.len());
    assert_eq!(
        a.time().0.to_bits(),
        b.time().0.to_bits(),
        "{context}: clock drift"
    );
    for m in 0..a.len() {
        let ta = a.machine_at(m).temperatures();
        let tb = b.machine_at(m).temperatures();
        for ((name, x), (_, y)) in ta.iter().zip(&tb) {
            assert_eq!(
                x.0.to_bits(),
                y.0.to_bits(),
                "{context}: machine {m} node {name}: {} vs {}",
                x.0,
                y.0
            );
        }
    }
}

/// One scripted run in three segments. Between segments — the only
/// places external mutation is allowed, and therefore natural fused
/// span breaks — the script fiddles one machine's fan (demoting it
/// from the batch) and optionally resizes the thread pool.
#[allow(clippy::too_many_arguments)]
fn scripted_run(
    cluster: &mercury::model::ClusterModel,
    drive: Drive,
    scheduler: TickScheduler,
    batching: bool,
    threads: usize,
    resize_to: Option<usize>,
    utils: &[f64],
    fiddle_machine: usize,
    segments: [usize; 3],
) -> ClusterSolver {
    let mut s = ClusterSolver::new(cluster, SolverConfig::default()).unwrap();
    s.set_batching(batching);
    s.set_scheduler(scheduler);
    s.set_threads(threads);
    let names: Vec<String> = s.machine_names().iter().map(|n| n.to_string()).collect();
    for (i, name) in names.iter().enumerate() {
        let u = utils[i % utils.len()];
        s.set_utilization(name, nodes::CPU, u).unwrap();
        s.set_utilization(name, nodes::DISK_PLATTERS, 1.0 - u)
            .unwrap();
    }
    s.force_inlet(&names[0], Celsius(24.0)).unwrap();
    let advance = |s: &mut ClusterSolver, ticks: usize| match drive {
        Drive::PerTick => (0..ticks).for_each(|_| s.step()),
        Drive::Fused => s.step_for(ticks),
    };
    advance(&mut s, segments[0]);
    // Mid-run divergence: a fan-speed fiddle kicks one machine off the
    // batched path and invalidates its flow cache.
    let name = &names[fiddle_machine % names.len()];
    s.machine_mut(name).unwrap().set_fan_cfm(30.0).unwrap();
    advance(&mut s, segments[1]);
    if let Some(t) = resize_to {
        s.set_threads(t);
    }
    advance(&mut s, segments[2]);
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Serial, pool-parallel, spawn-per-tick, and fused-replay stepping
    /// are bit-identical on mixed clusters with a mid-run fan fiddle, a
    /// forced inlet, and a mid-run `set_threads` resize, at 1, 2 and 8
    /// threads.
    #[test]
    fn pool_fused_and_spawn_match_serial_on_mixed_clusters(
        replicated in 3usize..8,
        unique in 0usize..3,
        utils in proptest::collection::vec(0.0f64..1.0, 3..6),
        fiddle_machine in 0usize..8,
        threads in prop_oneof![Just(1usize), Just(2usize), Just(8usize)],
        resize_to in prop_oneof![Just(1usize), Just(2usize), Just(8usize)],
        seg0 in 1usize..12,
        seg1 in 1usize..12,
        seg2 in 1usize..12,
    ) {
        let segments = [seg0, seg1, seg2];
        let cluster = presets::mixed_cluster(replicated, unique);
        let serial = scripted_run(
            &cluster, Drive::PerTick, TickScheduler::Pool, false, 1, None,
            &utils, fiddle_machine, segments,
        );
        prop_assert_eq!(serial.batched_machines(), 0);
        let pooled = scripted_run(
            &cluster, Drive::PerTick, TickScheduler::Pool, true, threads,
            Some(resize_to), &utils, fiddle_machine, segments,
        );
        // The pool resizes lazily at the next *parallel* tick: after a
        // resize to > 1 threads the worker count matches; a resize to 1
        // goes serial, leaving the earlier segment's workers parked.
        if resize_to > 1 {
            prop_assert_eq!(pooled.pool_workers(), pooled.effective_threads());
        } else {
            prop_assert!(pooled.pool_workers() <= pooled.len().min(threads));
        }
        let spawned = scripted_run(
            &cluster, Drive::PerTick, TickScheduler::SpawnPerTick, true,
            threads, Some(resize_to), &utils, fiddle_machine, segments,
        );
        let fused = scripted_run(
            &cluster, Drive::Fused, TickScheduler::Pool, true, threads,
            Some(resize_to), &utils, fiddle_machine, segments,
        );
        // The parallel runs really engaged the batched path (replicas
        // minus at most the fiddled one still group).
        prop_assert!(fused.batched_machines() >= replicated - 1);
        assert_bit_identical(&serial, &pooled, "pool vs serial");
        assert_bit_identical(&serial, &spawned, "spawn vs serial");
        assert_bit_identical(&serial, &fused, "fused vs serial");
    }
}

/// Fused replay with a recording sink observes exactly the per-tick
/// trajectory: the recorded history is bit-identical to stepping one
/// tick at a time and reading the probed nodes after each tick.
#[test]
fn pool_fused_recorded_history_matches_per_tick_reads() {
    let cluster = presets::validation_cluster(24);
    let mut reference = ClusterSolver::new(&cluster, SolverConfig::default()).unwrap();
    let mut fused = ClusterSolver::new(&cluster, SolverConfig::default()).unwrap();
    for s in [&mut reference, &mut fused] {
        s.set_threads(2);
        s.set_utilization("machine3", nodes::CPU, 0.8).unwrap();
        s.set_utilization("machine7", nodes::DISK_PLATTERS, 0.5)
            .unwrap();
    }
    // One batched probe, one solo probe (machine11 leaves the batch).
    fused
        .machine_mut("machine11")
        .unwrap()
        .set_fan_cfm(32.0)
        .unwrap();
    reference
        .machine_mut("machine11")
        .unwrap()
        .set_fan_cfm(32.0)
        .unwrap();
    let probes = [
        fused.probe("machine3", nodes::CPU).unwrap(),
        fused.probe("machine11", nodes::CPU_AIR).unwrap(),
    ];

    let mut expected = Vec::new();
    for _ in 0..50 {
        reference.step();
        expected.push((
            reference.time().0,
            reference.temperature("machine3", nodes::CPU).unwrap().0,
            reference
                .temperature("machine11", nodes::CPU_AIR)
                .unwrap()
                .0,
        ));
    }

    let mut recorded = Vec::new();
    fused.step_for_recorded(50, &probes, |time, temps| {
        recorded.push((time.0, temps[0].0, temps[1].0));
    });

    assert_eq!(recorded.len(), expected.len());
    for (tick, (r, e)) in recorded.iter().zip(&expected).enumerate() {
        assert_eq!(r.0.to_bits(), e.0.to_bits(), "tick {tick}: time");
        assert_eq!(r.1.to_bits(), e.1.to_bits(), "tick {tick}: batched probe");
        assert_eq!(r.2.to_bits(), e.2.to_bits(), "tick {tick}: solo probe");
    }
    assert_bit_identical(&reference, &fused, "after recorded replay");
}

/// Regression for the historical oversubscription bug: a tick whose
/// work mixes solo machines and batch chunks must run on exactly the
/// configured number of workers, not `2 × threads`.
#[test]
fn pool_worker_count_stays_at_configured_threads_with_mixed_work() {
    let cluster = presets::validation_cluster(16);
    let mut s = ClusterSolver::new(&cluster, SolverConfig::default()).unwrap();
    s.set_threads(2);
    // Demote two machines so every tick carries solos *and* chunks.
    s.machine_mut("machine2")
        .unwrap()
        .set_fan_cfm(30.0)
        .unwrap();
    s.machine_mut("machine9")
        .unwrap()
        .set_fan_cfm(28.0)
        .unwrap();
    for _ in 0..4 {
        s.step();
    }
    assert!(s.batched_machines() >= 14, "batched path engaged");
    assert_eq!(
        s.pool_workers(),
        2,
        "solo + chunk work shares one queue on exactly `threads` workers"
    );
    s.step_for(16);
    assert_eq!(s.pool_workers(), 2, "fused spans reuse the same pool");
}

/// Every supported SIMD backend stays bit-identical to serial scalar
/// stepping under pool-parallel execution and fused replay at 1, 2 and
/// 8 threads — the vector sweep may not interact with how chunks are
/// distributed across workers.
#[test]
fn pool_parallel_and_fused_match_on_every_simd_backend() {
    let cluster = presets::validation_cluster(40);
    let utils = [0.9, 0.25, 0.6];
    let run = |backend: Option<SimdBackend>, threads: usize, fused: bool| {
        let mut s = ClusterSolver::new(&cluster, SolverConfig::default()).unwrap();
        s.set_threads(threads);
        if let Some(b) = backend {
            s.set_simd_backend(b).unwrap();
        } else {
            s.set_batching(false);
        }
        let names: Vec<String> = s.machine_names().iter().map(|n| n.to_string()).collect();
        for (i, name) in names.iter().enumerate() {
            s.set_utilization(name, nodes::CPU, utils[i % utils.len()])
                .unwrap();
        }
        // Demote one machine so chunks and solos share the queue.
        s.machine_mut("machine17")
            .unwrap()
            .set_fan_cfm(30.0)
            .unwrap();
        if fused {
            s.step_for(35);
        } else {
            for _ in 0..35 {
                s.step();
            }
        }
        s
    };
    let serial = run(None, 1, false);
    for backend in SimdBackend::ALL.into_iter().filter(|b| b.supported()) {
        for threads in [1usize, 2, 8] {
            let parallel = run(Some(backend), threads, false);
            assert!(parallel.batched_machines() >= 39);
            assert_bit_identical(
                &serial,
                &parallel,
                &format!("per-tick {} at {threads} threads", backend.name()),
            );
            let fused = run(Some(backend), threads, true);
            assert_bit_identical(
                &serial,
                &fused,
                &format!("fused {} at {threads} threads", backend.name()),
            );
        }
    }
}

/// `set_threads(0)` means "pick for me": the pool sizes itself to the
/// host's available parallelism (capped by machine count).
#[test]
fn pool_auto_thread_selection_tracks_available_parallelism() {
    let cluster = presets::validation_cluster(12);
    let mut s = ClusterSolver::new(&cluster, SolverConfig::default()).unwrap();
    s.set_threads(0);
    let auto = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(12);
    assert_eq!(s.effective_threads(), auto);
    s.step();
    if auto > 1 {
        assert_eq!(s.pool_workers(), auto);
    } else {
        assert_eq!(s.pool_workers(), 0, "serial ticks never spawn workers");
    }
}
