//! Offered-load profiles over time.

use serde::{Deserialize, Serialize};

/// A valley→peak→valley load curve over one period — the "well-known
/// traffic pattern of most Internet services" the paper's trace mimics.
///
/// The curve is a raised cosine rising from `valley_rps` to `peak_rps`,
/// with the peak placed at `peak_position` (a fraction of the period, 0.5
/// by default) and an asymmetric rise/fall so afternoon peaks can arrive
/// late in the day, as in the paper's Figure 11 where load subsides around
/// t = 1500 s of a 2000 s run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiurnalProfile {
    period_s: f64,
    valley_rps: f64,
    peak_rps: f64,
    peak_position: f64,
    /// Width of the flat top around the peak, as a fraction of the period.
    plateau: f64,
}

impl DiurnalProfile {
    /// Creates a profile with the peak at mid-period.
    ///
    /// Non-finite or negative rates are clamped to zero; a non-positive
    /// period is clamped to one second.
    pub fn new(period_s: f64, valley_rps: f64, peak_rps: f64) -> Self {
        let clamp = |v: f64| if v.is_finite() { v.max(0.0) } else { 0.0 };
        DiurnalProfile {
            period_s: if period_s.is_finite() {
                period_s.max(1.0)
            } else {
                1.0
            },
            valley_rps: clamp(valley_rps),
            peak_rps: clamp(peak_rps).max(clamp(valley_rps)),
            peak_position: 0.5,
            plateau: 0.0,
        }
    }

    /// Moves the peak to `fraction` of the period (clamped to
    /// `[0.05, 0.95]`).
    pub fn with_peak_at(mut self, fraction: f64) -> Self {
        self.peak_position = fraction.clamp(0.05, 0.95);
        self
    }

    /// Holds the load flat at the peak for `fraction` of the period,
    /// centered on the peak position (clamped to `[0, 0.8]`) — afternoon
    /// peaks are sustained, not instantaneous.
    pub fn with_plateau(mut self, fraction: f64) -> Self {
        self.plateau = fraction.clamp(0.0, 0.8);
        self
    }

    /// The profile's period.
    pub fn period_s(&self) -> f64 {
        self.period_s
    }

    /// The valley request rate.
    pub fn valley_rps(&self) -> f64 {
        self.valley_rps
    }

    /// The peak request rate.
    pub fn peak_rps(&self) -> f64 {
        self.peak_rps
    }

    /// Offered load at time `t` seconds (periodic).
    pub fn rps_at(&self, t: f64) -> f64 {
        let phase = (t.rem_euclid(self.period_s)) / self.period_s;
        // Piecewise raised cosine: 0 at the period edges, 1 across the
        // (possibly zero-width) plateau around the peak.
        let half = self.plateau / 2.0;
        let rise_end = (self.peak_position - half).clamp(1e-6, 1.0);
        let fall_start = (self.peak_position + half).clamp(0.0, 1.0 - 1e-6);
        let shape = if phase <= rise_end {
            0.5 * (1.0 - (std::f64::consts::PI * (phase / rise_end)).cos())
        } else if phase < fall_start {
            1.0
        } else {
            let fall = (phase - fall_start) / (1.0 - fall_start);
            0.5 * (1.0 + (std::f64::consts::PI * fall).cos())
        };
        self.valley_rps + (self.peak_rps - self.valley_rps) * shape
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valley_at_edges_peak_at_position() {
        let p = DiurnalProfile::new(2000.0, 40.0, 300.0).with_peak_at(0.65);
        assert!((p.rps_at(0.0) - 40.0).abs() < 1e-9);
        assert!((p.rps_at(2000.0) - 40.0).abs() < 1e-9);
        assert!((p.rps_at(1300.0) - 300.0).abs() < 1e-9);
    }

    #[test]
    fn curve_is_monotone_up_then_down() {
        let p = DiurnalProfile::new(1000.0, 10.0, 100.0).with_peak_at(0.5);
        let mut last = p.rps_at(0.0);
        for t in 1..=500 {
            let v = p.rps_at(t as f64);
            assert!(v >= last - 1e-9, "dip on the way up at t={t}");
            last = v;
        }
        for t in 501..=1000 {
            let v = p.rps_at(t as f64);
            assert!(v <= last + 1e-9, "bump on the way down at t={t}");
            last = v;
        }
    }

    #[test]
    fn profile_is_periodic() {
        let p = DiurnalProfile::new(500.0, 5.0, 50.0).with_peak_at(0.3);
        for t in [0.0, 123.0, 250.0, 499.0] {
            assert!((p.rps_at(t) - p.rps_at(t + 500.0)).abs() < 1e-9);
            assert!((p.rps_at(t) - p.rps_at(t - 500.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn values_stay_within_valley_and_peak() {
        let p = DiurnalProfile::new(777.0, 12.0, 88.0).with_peak_at(0.8);
        for t in 0..777 {
            let v = p.rps_at(t as f64);
            assert!(
                (12.0..=88.0 + 1e-9).contains(&v),
                "out of range at {t}: {v}"
            );
        }
    }

    #[test]
    fn bad_inputs_are_clamped() {
        let p = DiurnalProfile::new(-3.0, f64::NAN, -1.0);
        assert_eq!(p.period_s(), 1.0);
        assert_eq!(p.valley_rps(), 0.0);
        assert_eq!(p.peak_rps(), 0.0);
        let p = DiurnalProfile::new(100.0, 50.0, 10.0);
        // Peak below valley is raised to the valley.
        assert_eq!(p.peak_rps(), 50.0);
        let p = DiurnalProfile::new(100.0, 0.0, 1.0).with_peak_at(2.0);
        assert!((p.rps_at(95.0) - p.rps_at(95.0)).abs() < 1e-12); // no panic
    }
}
