//! Seeded arrival generation and pre-generated traces.

use crate::mix::RequestMix;
use crate::profile::DiurnalProfile;
use cluster_sim::{Request, RequestKind};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Generates Poisson arrivals second by second, following a profile.
///
/// The generator is deterministic for a given `(profile, mix, seed)`
/// triple — the ChaCha8 stream is stable across platforms — so every
/// policy under comparison can be driven by the *same* trace, which is
/// the whole point of emulation ("enables repeatable experiments").
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    profile: DiurnalProfile,
    mix: RequestMix,
    rng: ChaCha8Rng,
}

impl WorkloadGenerator {
    /// Creates a generator with the given seed.
    pub fn new(profile: DiurnalProfile, mix: RequestMix, seed: u64) -> Self {
        WorkloadGenerator {
            profile,
            mix,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// The load profile.
    pub fn profile(&self) -> &DiurnalProfile {
        &self.profile
    }

    /// The request mix.
    pub fn mix(&self) -> &RequestMix {
        &self.mix
    }

    /// Draws the arrivals for second `t`.
    pub fn arrivals_at(&mut self, t: u64) -> Vec<Request> {
        let lambda = self.profile.rps_at(t as f64);
        let count = poisson(&mut self.rng, lambda);
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let kind = if self.rng.gen::<f64>() < self.mix.dynamic_fraction {
                RequestKind::Dynamic
            } else {
                RequestKind::Static
            };
            out.push(self.mix.request(kind));
        }
        out
    }

    /// Pre-generates `duration_s` seconds into a compact trace.
    pub fn generate(&mut self, duration_s: u64) -> WorkloadTrace {
        let mut seconds = Vec::with_capacity(duration_s as usize);
        for t in 0..duration_s {
            let arrivals = self.arrivals_at(t);
            let dynamic = arrivals
                .iter()
                .filter(|r| r.kind() == RequestKind::Dynamic)
                .count() as u32;
            seconds.push(SecondCounts {
                static_count: (arrivals.len() as u32) - dynamic,
                dynamic_count: dynamic,
            });
        }
        WorkloadTrace {
            mix: self.mix.clone(),
            seconds,
        }
    }
}

/// Sample a Poisson variate. Knuth's product method below λ=30, normal
/// approximation above (clamped at zero) — accurate enough for load
/// generation and allocation-free.
fn poisson(rng: &mut ChaCha8Rng, lambda: f64) -> usize {
    if lambda.is_nan() || lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0usize;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
            if k > 10_000 {
                return k; // numerical safety net
            }
        }
    } else {
        // Box-Muller normal approximation N(λ, λ).
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = lambda + lambda.sqrt() * z;
        v.round().max(0.0) as usize
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct SecondCounts {
    static_count: u32,
    dynamic_count: u32,
}

/// A pre-generated arrival schedule: per-second static/dynamic counts,
/// materialized back into [`Request`] values at replay time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadTrace {
    mix: RequestMix,
    seconds: Vec<SecondCounts>,
}

impl WorkloadTrace {
    /// Length of the trace, seconds.
    pub fn duration_s(&self) -> u64 {
        self.seconds.len() as u64
    }

    /// The mix requests are materialized with.
    pub fn mix(&self) -> &RequestMix {
        &self.mix
    }

    /// The arrivals of second `t` (empty past the end).
    pub fn arrivals_at(&self, t: u64) -> Vec<Request> {
        match self.seconds.get(t as usize) {
            None => Vec::new(),
            Some(counts) => {
                let mut out =
                    Vec::with_capacity((counts.static_count + counts.dynamic_count) as usize);
                for _ in 0..counts.dynamic_count {
                    out.push(self.mix.request(RequestKind::Dynamic));
                }
                for _ in 0..counts.static_count {
                    out.push(self.mix.request(RequestKind::Static));
                }
                out
            }
        }
    }

    /// Total requests in the trace.
    pub fn total_requests(&self) -> u64 {
        self.seconds
            .iter()
            .map(|s| (s.static_count + s.dynamic_count) as u64)
            .sum()
    }

    /// Fraction of requests that are dynamic.
    pub fn dynamic_fraction(&self) -> f64 {
        let total = self.total_requests();
        if total == 0 {
            return 0.0;
        }
        let dynamic: u64 = self.seconds.iter().map(|s| s.dynamic_count as u64).sum();
        dynamic as f64 / total as f64
    }

    /// Offered requests during second `t`.
    pub fn offered_at(&self, t: u64) -> u32 {
        self.seconds
            .get(t as usize)
            .map(|s| s.static_count + s.dynamic_count)
            .unwrap_or(0)
    }

    /// Serializes the trace to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("traces contain only plain data")
    }

    /// Reads a trace back from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error for malformed input.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Converts the offered load to a component-utilization series: the
    /// mean offered rate over each `interval_s`-second bucket divided by
    /// `peak_rps` (the rate that saturates the component), clamped to
    /// `[0, 1]`. This is how `mercury-traceconv` turns a generated
    /// workload into solver inputs without this crate depending on the
    /// solver.
    ///
    /// # Panics
    ///
    /// Panics when `interval_s` is zero or `peak_rps` is not a positive
    /// finite number.
    pub fn utilization_series(&self, interval_s: u64, peak_rps: f64) -> Vec<f64> {
        assert!(interval_s > 0, "interval must be at least one second");
        assert!(
            peak_rps.is_finite() && peak_rps > 0.0,
            "peak rate must be positive"
        );
        let buckets = self.duration_s().div_ceil(interval_s);
        (0..buckets)
            .map(|b| {
                let start = b * interval_s;
                let end = (start + interval_s).min(self.duration_s());
                let offered: u64 = (start..end).map(|t| u64::from(self.offered_at(t))).sum();
                let mean = offered as f64 / (end - start) as f64;
                (mean / peak_rps).clamp(0.0, 1.0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_generator(seed: u64) -> WorkloadGenerator {
        let mix = RequestMix::paper();
        let peak = mix.rps_for_cpu_utilization(0.7, 4, 1000.0);
        let profile = DiurnalProfile::new(2000.0, peak * 0.15, peak).with_peak_at(0.65);
        WorkloadGenerator::new(profile, mix, seed)
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let t1 = paper_generator(7).generate(500);
        let t2 = paper_generator(7).generate(500);
        assert_eq!(t1, t2);
        let t3 = paper_generator(8).generate(500);
        assert_ne!(t1, t3);
    }

    #[test]
    fn utilization_series_buckets_and_clamps() {
        let trace = paper_generator(42).generate(100);
        // A saturation rate well below the offered load clamps at 1.
        assert!(trace.utilization_series(10, 1e-3).iter().all(|u| *u == 1.0));
        // Bucketing conserves the offered total (peak chosen so nothing
        // clamps; a 1 s bucket is just offered/peak).
        let peak = 10.0 * trace.total_requests() as f64;
        let per_second = trace.utilization_series(1, peak);
        assert_eq!(per_second.len(), 100);
        for (t, u) in per_second.iter().enumerate() {
            assert_eq!(*u, f64::from(trace.offered_at(t as u64)) / peak);
        }
        // A coarse bucket is the mean of its seconds.
        let coarse = trace.utilization_series(25, peak);
        assert_eq!(coarse.len(), 4);
        let mean: f64 = per_second[..25].iter().sum::<f64>() / 25.0;
        assert!((coarse[0] - mean).abs() < 1e-12);
    }

    #[test]
    fn dynamic_share_approximates_30_percent() {
        let trace = paper_generator(42).generate(2000);
        let share = trace.dynamic_fraction();
        assert!((share - 0.3).abs() < 0.02, "dynamic share {share}");
    }

    #[test]
    fn offered_load_follows_the_profile_shape() {
        let trace = paper_generator(42).generate(2000);
        let window = |center: u64| -> f64 {
            let lo = center.saturating_sub(50);
            (lo..center + 50)
                .map(|t| trace.offered_at(t) as f64)
                .sum::<f64>()
                / 100.0
        };
        let valley = window(60);
        let peak = window(1300);
        let late = window(1900);
        assert!(peak > 3.0 * valley, "valley {valley}, peak {peak}");
        assert!(
            late < peak / 2.0,
            "load did not subside: peak {peak}, late {late}"
        );
    }

    #[test]
    fn peak_rate_matches_the_70_percent_sizing() {
        let trace = paper_generator(42).generate(2000);
        let peak_avg: f64 = (1250..1350)
            .map(|t| trace.offered_at(t) as f64)
            .sum::<f64>()
            / 100.0;
        let expected = RequestMix::paper().rps_for_cpu_utilization(0.7, 4, 1000.0);
        assert!(
            (peak_avg - expected).abs() < expected * 0.1,
            "peak average {peak_avg} vs sized {expected}"
        );
    }

    #[test]
    fn replay_materializes_the_same_counts() {
        let trace = paper_generator(1).generate(100);
        for t in [0u64, 50, 99] {
            let arrivals = trace.arrivals_at(t);
            assert_eq!(arrivals.len() as u32, trace.offered_at(t));
        }
        assert!(trace.arrivals_at(100).is_empty());
        assert_eq!(trace.offered_at(100), 0);
    }

    #[test]
    fn json_round_trip() {
        let trace = paper_generator(3).generate(50);
        let json = trace.to_json();
        let back = WorkloadTrace::from_json(&json).unwrap();
        assert_eq!(trace, back);
        assert!(WorkloadTrace::from_json("{broken").is_err());
    }

    #[test]
    fn poisson_sampler_hits_the_mean_in_both_regimes() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for lambda in [0.5, 5.0, 25.0, 80.0, 300.0] {
            let n = 3000;
            let total: usize = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
            let mean = total as f64 / n as f64;
            let tolerance = 4.0 * (lambda / n as f64).sqrt() + 0.5;
            assert!(
                (mean - lambda).abs() < tolerance,
                "lambda {lambda}: sampled mean {mean}"
            );
        }
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -3.0), 0);
        assert_eq!(poisson(&mut rng, f64::NAN), 0);
    }

    #[test]
    fn arrivals_at_uses_profile_rate() {
        // A flat profile (valley == peak) should produce ~lambda arrivals.
        let profile = DiurnalProfile::new(100.0, 50.0, 50.0);
        let mut generator = WorkloadGenerator::new(profile, RequestMix::paper(), 11);
        let total: usize = (0..500).map(|t| generator.arrivals_at(t).len()).sum();
        let mean = total as f64 / 500.0;
        assert!((mean - 50.0).abs() < 2.0, "mean arrivals {mean}");
    }
}
