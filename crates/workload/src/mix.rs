//! The static/dynamic request blend.

use cluster_sim::{Request, RequestKind};
use serde::{Deserialize, Serialize};

/// How requests divide between static files and CGI scripts, and what
/// each kind demands from the CPU and disk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestMix {
    /// Fraction of requests that are dynamic, in `[0, 1]`.
    pub dynamic_fraction: f64,
    /// CPU demand of a dynamic request, ms.
    pub dynamic_cpu_ms: f64,
    /// Disk demand of a dynamic request, ms.
    pub dynamic_disk_ms: f64,
    /// CPU demand of a static request, ms.
    pub static_cpu_ms: f64,
    /// Disk demand of a static request, ms.
    pub static_disk_ms: f64,
}

impl RequestMix {
    /// The paper's trace: 30% dynamic, 25 ms CGI compute.
    pub fn paper() -> Self {
        RequestMix {
            dynamic_fraction: 0.3,
            dynamic_cpu_ms: cluster_sim::Request::dynamic().cpu_ms(),
            dynamic_disk_ms: cluster_sim::Request::dynamic().disk_ms(),
            static_cpu_ms: cluster_sim::Request::static_file().cpu_ms(),
            static_disk_ms: cluster_sim::Request::static_file().disk_ms(),
        }
    }

    /// Mean CPU demand per request, ms.
    pub fn mean_cpu_ms(&self) -> f64 {
        self.dynamic_fraction * self.dynamic_cpu_ms
            + (1.0 - self.dynamic_fraction) * self.static_cpu_ms
    }

    /// Mean disk demand per request, ms.
    pub fn mean_disk_ms(&self) -> f64 {
        self.dynamic_fraction * self.dynamic_disk_ms
            + (1.0 - self.dynamic_fraction) * self.static_disk_ms
    }

    /// The request rate that produces `target` average CPU utilization on
    /// `servers` machines of `cpu_capacity_ms` ms/s each — how the paper
    /// sizes its peak ("70% utilization with 4 servers").
    pub fn rps_for_cpu_utilization(
        &self,
        target: f64,
        servers: usize,
        cpu_capacity_ms: f64,
    ) -> f64 {
        let budget = target.clamp(0.0, 1.0) * servers as f64 * cpu_capacity_ms;
        let mean = self.mean_cpu_ms();
        if mean <= 0.0 {
            0.0
        } else {
            budget / mean
        }
    }

    /// Materializes a request of the given kind with this mix's demands.
    pub fn request(&self, kind: RequestKind) -> Request {
        match kind {
            RequestKind::Dynamic => Request::new(
                RequestKind::Dynamic,
                self.dynamic_cpu_ms,
                self.dynamic_disk_ms,
            ),
            RequestKind::Static => {
                Request::new(RequestKind::Static, self.static_cpu_ms, self.static_disk_ms)
            }
        }
    }
}

impl Default for RequestMix {
    fn default() -> Self {
        RequestMix::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mix_is_30_percent_cgi() {
        let mix = RequestMix::paper();
        assert_eq!(mix.dynamic_fraction, 0.3);
        assert_eq!(mix.dynamic_cpu_ms, 25.0);
        // 0.3·25 + 0.7·2 = 8.9 ms mean CPU.
        assert!((mix.mean_cpu_ms() - 8.9).abs() < 1e-9);
    }

    #[test]
    fn peak_sizing_matches_hand_arithmetic() {
        let mix = RequestMix::paper();
        // 70% of 4×1000 ms = 2800 ms budget / 8.9 ms mean ≈ 314.6 rps.
        let rps = mix.rps_for_cpu_utilization(0.7, 4, 1000.0);
        assert!((rps - 2800.0 / 8.9).abs() < 1e-9);
        // Degenerate mean -> 0.
        let silly = RequestMix {
            dynamic_cpu_ms: 0.0,
            static_cpu_ms: 0.0,
            ..RequestMix::paper()
        };
        assert_eq!(silly.rps_for_cpu_utilization(0.7, 4, 1000.0), 0.0);
    }

    #[test]
    fn materialized_requests_carry_the_mix_demands() {
        let mix = RequestMix {
            dynamic_cpu_ms: 40.0,
            ..RequestMix::paper()
        };
        let r = mix.request(RequestKind::Dynamic);
        assert_eq!(r.cpu_ms(), 40.0);
        let r = mix.request(RequestKind::Static);
        assert_eq!(r.kind(), RequestKind::Static);
    }
}
