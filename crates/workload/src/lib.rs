//! # workload-gen — synthetic web workloads
//!
//! The paper could not find a public web trace with dynamic-content
//! requests, so it built a synthetic one (§5): 30% of requests hit a CGI
//! script that computes for 25 ms, the rest are static files, and "the
//! timing of the requests mimics the well-known traffic pattern of most
//! Internet services, consisting of recurring load valleys (over night)
//! followed by load peaks (in the afternoon). The load peak is set at 70%
//! utilization with 4 servers."
//!
//! This crate reproduces that recipe deterministically:
//!
//! * [`RequestMix`] — the static/dynamic blend and per-kind demands;
//! * [`DiurnalProfile`] — valley→peak→valley offered load over time;
//! * [`WorkloadGenerator`] — seeded Poisson arrivals following a profile;
//! * [`WorkloadTrace`] — a pre-generated, serializable arrival schedule
//!   (so an experiment and its baseline see the *identical* request
//!   sequence).
//!
//! ```
//! use workload_gen::{DiurnalProfile, RequestMix, WorkloadGenerator};
//!
//! let mix = RequestMix::paper();
//! // Peak sized for 70% CPU utilization on 4 stock servers.
//! let peak = mix.rps_for_cpu_utilization(0.7, 4, 1000.0);
//! let profile = DiurnalProfile::new(2000.0, peak * 0.15, peak).with_peak_at(0.65);
//! let mut generator = WorkloadGenerator::new(profile, mix, 42);
//! let trace = generator.generate(2000);
//! assert_eq!(trace.duration_s(), 2000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod gen;
mod mix;
mod profile;

pub use gen::{WorkloadGenerator, WorkloadTrace};
pub use mix::RequestMix;
pub use profile::DiurnalProfile;
