//! # mercury-tools — the Mercury suite as command-line programs
//!
//! The paper deploys Mercury as cooperating processes (Figure 2): the
//! solver on its own machine, a `monitord` per emulated server, the
//! sensor library linked into applications, and `fiddle` run by the
//! experimenter. This crate packages those as binaries:
//!
//! | binary | role |
//! |--------|------|
//! | `mercury-solverd` | loads a model (built-in preset or a `.mdl` file) and serves the UDP protocol |
//! | `mercury-monitord` | samples Linux `/proc` (or a synthetic load) and streams utilization updates |
//! | `mercury-fiddle` | sends one fiddle command, or replays a script, against a running solver |
//! | `mercury-sensor` | the Figure 3 client: open, read (optionally repeatedly), close |
//! | `mercury-stats` | scrapes a running solver's telemetry registry and pretty-prints (or dumps) the Prometheus exposition |
//! | `mercury-trace` | fetches a solver's span buffer and converts dumps/incident bundles to Chrome trace-event JSON |
//! | `mercury-top` | live terminal console over the solver's sampled history: cluster heatmap, hottest machines with sparklines, activity rates |
//!
//! A three-terminal session:
//!
//! ```text
//! $ mercury-solverd --bind 0.0.0.0:8367 --model assets/server.mdl --machine server
//! $ mercury-monitord --solver solvermachine:8367 --machine server --cpu cpu --disk disk_platters sda
//! $ mercury-sensor --solver solvermachine:8367 --node disk_shell --watch 1
//! $ mercury-fiddle --solver solvermachine:8367 server temperature inlet 30
//! ```
//!
//! The small argument-parsing helpers live here so all four binaries
//! share one vocabulary and error style.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::time::Duration;

use mercury::net::proto::{self, Reply, Request};

/// A parsed `--key value` style argument list.
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: Vec<(String, Option<String>)>,
    positional: Vec<String>,
}

/// Flags that never take a value (everything else is `--key value`).
const BOOLEAN_FLAGS: &[&str] = &["list", "verbose", "help", "raw", "trace", "jsonl", "once"];

impl Args {
    /// Parses the process arguments: `--key value` pairs, a fixed set of
    /// boolean flags (`list`, `verbose`, `help`), and positional words.
    pub fn parse(raw: impl Iterator<Item = String>) -> Args {
        let mut args = Args::default();
        let mut raw = raw.peekable();
        while let Some(word) = raw.next() {
            if let Some(key) = word.strip_prefix("--") {
                let value = if BOOLEAN_FLAGS.contains(&key) {
                    None
                } else {
                    match raw.peek() {
                        Some(next) if !next.starts_with("--") => raw.next(),
                        _ => None,
                    }
                };
                args.flags.push((key.to_string(), value));
            } else {
                args.positional.push(word);
            }
        }
        args
    }

    /// The value of `--key`, if present with a value.
    pub fn value(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_deref())
    }

    /// Whether `--key` was given at all.
    pub fn has(&self, key: &str) -> bool {
        self.flags.iter().any(|(k, _)| k == key)
    }

    /// Positional words, in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// The value of `--key`, or an error message naming it.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.value(key)
            .ok_or_else(|| format!("missing required --{key} <value>"))
    }
}

/// Resolves a `host:port` string to a socket address.
///
/// # Errors
///
/// Returns a human-readable message when resolution fails.
pub fn resolve(addr: &str) -> Result<SocketAddr, String> {
    addr.to_socket_addrs()
        .map_err(|e| format!("cannot resolve `{addr}`: {e}"))?
        .next()
        .ok_or_else(|| format!("`{addr}` resolved to no addresses"))
}

/// Loads a machine model: either a built-in preset name
/// (`table1`/`validation` or `freon`) or a path to a `.mdl` file (in
/// which case `machine` selects which machine the file defines).
///
/// # Errors
///
/// Returns a message for unknown presets, unreadable files, parse
/// failures, or a missing machine name.
pub fn load_machine(
    model: &str,
    machine: Option<&str>,
) -> Result<mercury::model::MachineModel, String> {
    match model {
        "table1" | "validation" => Ok(mercury::presets::validation_machine()),
        "freon" => Ok(mercury::presets::freon_machine()),
        path => {
            let source = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read model file `{path}`: {e}"))?;
            let library = mercury_graphdl::parse(&source).map_err(|e| format!("{path}: {e}"))?;
            match machine {
                Some(name) => library
                    .machine(name)
                    .cloned()
                    .ok_or_else(|| format!("`{path}` defines no machine `{name}`")),
                None if library.machines().len() == 1 => Ok(library.machines()[0].clone()),
                None => Err(format!(
                    "`{path}` defines {} machines; pick one with --machine",
                    library.machines().len()
                )),
            }
        }
    }
}

/// Loads a cluster model from a `.mdl` file, or the built-in Figure 1c
/// room (`room:<n>` / `freon-room:<n>`).
///
/// # Errors
///
/// As [`load_machine`].
pub fn load_cluster(
    model: &str,
    cluster: Option<&str>,
) -> Result<mercury::model::ClusterModel, String> {
    if let Some(n) = model.strip_prefix("room:") {
        let n: usize = n
            .parse()
            .map_err(|_| format!("bad machine count in `{model}`"))?;
        return Ok(mercury::presets::validation_cluster(n));
    }
    if let Some(n) = model.strip_prefix("freon-room:") {
        let n: usize = n
            .parse()
            .map_err(|_| format!("bad machine count in `{model}`"))?;
        return Ok(mercury::presets::freon_cluster(n));
    }
    let source = std::fs::read_to_string(model)
        .map_err(|e| format!("cannot read model file `{model}`: {e}"))?;
    let library = mercury_graphdl::parse(&source).map_err(|e| format!("{model}: {e}"))?;
    match cluster {
        Some(name) => library
            .cluster(name)
            .cloned()
            .ok_or_else(|| format!("`{model}` defines no cluster `{name}`")),
        None if library.clusters().len() == 1 => Ok(library.clusters()[0].1.clone()),
        None => Err(format!(
            "`{model}` defines {} clusters; pick one with --cluster",
            library.clusters().len()
        )),
    }
}

/// A reassembled multi-part reply ([`Reply::Metrics`] /
/// [`Reply::Trace`] / [`Reply::Series`]), with total-parts accounting
/// so callers can tell a complete document from one with datagrams
/// missing.
#[derive(Debug, Clone)]
pub struct MultipartFetch {
    /// The received parts concatenated in part order (gaps skipped).
    pub text: String,
    /// How many distinct parts actually arrived.
    pub received: usize,
    /// How many parts the service advertised in each header.
    pub total: usize,
}

impl MultipartFetch {
    /// Whether every advertised part arrived.
    pub fn is_complete(&self) -> bool {
        self.received == self.total
    }
}

/// Sends `request` to `solver` and reassembles the multi-part reply.
///
/// This is the one fetch path shared by `mercury-stats`,
/// `mercury-trace`, and `mercury-top`: it accepts whichever multi-part
/// reply kind the service answers with, keeps reading until every
/// advertised part has arrived or `timeout` passes with nothing new
/// (UDP may drop datagrams), and returns the parts it got in order.
/// Callers decide what a gap means — the binaries warn on stderr and
/// exit non-zero rather than silently presenting a truncated document.
///
/// # Errors
///
/// Returns a message on socket errors, an undecodable or unexpected
/// reply, a [`Reply::Error`] from the service, or when *no* part
/// arrives within `timeout`.
pub fn fetch_multipart(
    solver: SocketAddr,
    request: &Request,
    timeout: Duration,
) -> Result<MultipartFetch, String> {
    let socket = UdpSocket::bind("0.0.0.0:0").map_err(|e| format!("cannot bind socket: {e}"))?;
    socket
        .set_read_timeout(Some(timeout))
        .map_err(|e| format!("cannot set socket timeout: {e}"))?;
    socket
        .send_to(&proto::encode_request(request), solver)
        .map_err(|e| format!("cannot send to {solver}: {e}"))?;

    let mut parts: BTreeMap<u16, String> = BTreeMap::new();
    let mut total: Option<u16> = None;
    let mut buf = [0u8; 2048];
    while total.is_none_or(|n| parts.len() < n as usize) {
        let len = match socket.recv(&mut buf) {
            Ok(len) => len,
            // First part never arrived: a real failure. Later silence
            // just means the remaining datagrams were dropped.
            Err(e) if parts.is_empty() => {
                return Err(format!("no reply from {solver}: {e}"));
            }
            Err(_) => break,
        };
        let (part, part_total, text) =
            match proto::decode_reply(&buf[..len]).map_err(|e| format!("bad reply: {e}"))? {
                Reply::Metrics { part, parts, text }
                | Reply::Trace { part, parts, text }
                | Reply::Series { part, parts, text } => (part, parts, text),
                Reply::Error { message } => return Err(format!("solver error: {message}")),
                other => return Err(format!("unexpected reply: {other:?}")),
            };
        total = Some(total.unwrap_or(part_total).max(part_total));
        parts.insert(part, text);
    }
    let total = total.map_or(0, usize::from);
    Ok(MultipartFetch {
        received: parts.len(),
        text: parts.into_values().collect(),
        total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(words: &[&str]) -> Args {
        Args::parse(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_flags_values_and_positionals() {
        let a = args(&[
            "--bind",
            "0.0.0.0:8367",
            "--verbose",
            "server",
            "temperature",
            "inlet",
            "30",
        ]);
        assert_eq!(a.value("bind"), Some("0.0.0.0:8367"));
        assert!(a.has("verbose"));
        assert_eq!(a.value("verbose"), None);
        assert!(!a.has("quiet"));
        assert_eq!(a.positional(), &["server", "temperature", "inlet", "30"]);
        assert!(a.require("bind").is_ok());
        assert!(a.require("missing").is_err());
    }

    #[test]
    fn later_flags_win() {
        let a = args(&["--port", "1", "--port", "2"]);
        assert_eq!(a.value("port"), Some("2"));
    }

    #[test]
    fn resolve_handles_good_and_bad_addresses() {
        assert!(resolve("127.0.0.1:8367").is_ok());
        assert!(resolve("definitely not an address").is_err());
    }

    #[test]
    fn load_machine_presets_and_errors() {
        assert_eq!(load_machine("table1", None).unwrap().name(), "server");
        assert_eq!(load_machine("freon", None).unwrap().name(), "server");
        assert!(load_machine("/no/such/file.mdl", None).is_err());
    }

    #[test]
    fn load_machine_from_file() {
        let dir = std::env::temp_dir().join(format!("mercury-tools-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.mdl");
        std::fs::write(
            &path,
            "machine tiny { cpu [type=component, mass=0.1, c=896, pmin=7, pmax=31];\n\
             inlet [type=inlet]; a [type=air]; exhaust [type=exhaust];\n\
             cpu -- a [k=0.75]; inlet -> a [fraction=1]; a -> exhaust [fraction=1]; }",
        )
        .unwrap();
        let model = load_machine(path.to_str().unwrap(), None).unwrap();
        assert_eq!(model.name(), "tiny");
        let model = load_machine(path.to_str().unwrap(), Some("tiny")).unwrap();
        assert_eq!(model.name(), "tiny");
        assert!(load_machine(path.to_str().unwrap(), Some("ghost")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Spawns a fake solver that answers the first datagram with the
    /// given replies and returns its address.
    fn fake_responder(replies: Vec<Reply>) -> SocketAddr {
        let socket = UdpSocket::bind("127.0.0.1:0").unwrap();
        let addr = socket.local_addr().unwrap();
        std::thread::spawn(move || {
            let mut buf = [0u8; 2048];
            let (_, peer) = socket.recv_from(&mut buf).unwrap();
            for reply in &replies {
                socket.send_to(&proto::encode_reply(reply), peer).unwrap();
            }
        });
        addr
    }

    fn series_part(part: u16, parts: u16, text: &str) -> Reply {
        Reply::Series {
            part,
            parts,
            text: text.into(),
        }
    }

    #[test]
    fn fetch_multipart_reassembles_in_order() {
        // Parts delivered out of order still concatenate by index.
        let addr = fake_responder(vec![
            series_part(1, 2, "b raw 2:2\n"),
            series_part(0, 2, "a raw 1:1\n"),
        ]);
        let fetch = fetch_multipart(addr, &Request::Ping, Duration::from_secs(2)).unwrap();
        assert!(fetch.is_complete());
        assert_eq!((fetch.received, fetch.total), (2, 2));
        assert_eq!(fetch.text, "a raw 1:1\nb raw 2:2\n");
    }

    #[test]
    fn fetch_multipart_accounts_for_dropped_parts() {
        // Part 1 of 3 goes missing: the fetch reports the gap instead
        // of presenting a silently truncated document.
        let addr = fake_responder(vec![
            series_part(0, 3, "a raw 1:1\n"),
            series_part(2, 3, "c raw 3:3\n"),
        ]);
        let fetch = fetch_multipart(addr, &Request::Ping, Duration::from_millis(300)).unwrap();
        assert!(!fetch.is_complete());
        assert_eq!((fetch.received, fetch.total), (2, 3));
        assert_eq!(fetch.text, "a raw 1:1\nc raw 3:3\n");
    }

    #[test]
    fn fetch_multipart_surfaces_service_errors_and_silence() {
        let addr = fake_responder(vec![Reply::Error {
            message: "series history is disabled".into(),
        }]);
        let err = fetch_multipart(addr, &Request::Ping, Duration::from_secs(2)).unwrap_err();
        assert!(err.contains("series history is disabled"), "{err}");

        // Nobody listening: the first recv times out into an error.
        let silent = UdpSocket::bind("127.0.0.1:0").unwrap();
        let addr = silent.local_addr().unwrap();
        let err = fetch_multipart(addr, &Request::Ping, Duration::from_millis(100)).unwrap_err();
        assert!(err.contains("no reply"), "{err}");
    }

    #[test]
    fn load_cluster_presets() {
        assert_eq!(load_cluster("room:4", None).unwrap().machines().len(), 4);
        assert_eq!(
            load_cluster("freon-room:2", None).unwrap().machines().len(),
            2
        );
        assert!(load_cluster("room:x", None).is_err());
        assert!(load_cluster("/no/such.mdl", None).is_err());
    }
}
