//! # mercury-tools — the Mercury suite as command-line programs
//!
//! The paper deploys Mercury as cooperating processes (Figure 2): the
//! solver on its own machine, a `monitord` per emulated server, the
//! sensor library linked into applications, and `fiddle` run by the
//! experimenter. This crate packages those as binaries:
//!
//! | binary | role |
//! |--------|------|
//! | `mercury-solverd` | loads a model (built-in preset or a `.mdl` file) and serves the UDP protocol |
//! | `mercury-monitord` | samples Linux `/proc` (or a synthetic load) and streams utilization updates |
//! | `mercury-fiddle` | sends one fiddle command, or replays a script, against a running solver |
//! | `mercury-sensor` | the Figure 3 client: open, read (optionally repeatedly), close |
//! | `mercury-stats` | scrapes a running solver's telemetry registry and pretty-prints (or dumps) the Prometheus exposition |
//! | `mercury-trace` | fetches a solver's span buffer and converts dumps/incident bundles to Chrome trace-event JSON |
//!
//! A three-terminal session:
//!
//! ```text
//! $ mercury-solverd --bind 0.0.0.0:8367 --model assets/server.mdl --machine server
//! $ mercury-monitord --solver solvermachine:8367 --machine server --cpu cpu --disk disk_platters sda
//! $ mercury-sensor --solver solvermachine:8367 --node disk_shell --watch 1
//! $ mercury-fiddle --solver solvermachine:8367 server temperature inlet 30
//! ```
//!
//! The small argument-parsing helpers live here so all four binaries
//! share one vocabulary and error style.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::net::{SocketAddr, ToSocketAddrs};

/// A parsed `--key value` style argument list.
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: Vec<(String, Option<String>)>,
    positional: Vec<String>,
}

/// Flags that never take a value (everything else is `--key value`).
const BOOLEAN_FLAGS: &[&str] = &["list", "verbose", "help", "raw", "trace", "jsonl"];

impl Args {
    /// Parses the process arguments: `--key value` pairs, a fixed set of
    /// boolean flags (`list`, `verbose`, `help`), and positional words.
    pub fn parse(raw: impl Iterator<Item = String>) -> Args {
        let mut args = Args::default();
        let mut raw = raw.peekable();
        while let Some(word) = raw.next() {
            if let Some(key) = word.strip_prefix("--") {
                let value = if BOOLEAN_FLAGS.contains(&key) {
                    None
                } else {
                    match raw.peek() {
                        Some(next) if !next.starts_with("--") => raw.next(),
                        _ => None,
                    }
                };
                args.flags.push((key.to_string(), value));
            } else {
                args.positional.push(word);
            }
        }
        args
    }

    /// The value of `--key`, if present with a value.
    pub fn value(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_deref())
    }

    /// Whether `--key` was given at all.
    pub fn has(&self, key: &str) -> bool {
        self.flags.iter().any(|(k, _)| k == key)
    }

    /// Positional words, in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// The value of `--key`, or an error message naming it.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.value(key)
            .ok_or_else(|| format!("missing required --{key} <value>"))
    }
}

/// Resolves a `host:port` string to a socket address.
///
/// # Errors
///
/// Returns a human-readable message when resolution fails.
pub fn resolve(addr: &str) -> Result<SocketAddr, String> {
    addr.to_socket_addrs()
        .map_err(|e| format!("cannot resolve `{addr}`: {e}"))?
        .next()
        .ok_or_else(|| format!("`{addr}` resolved to no addresses"))
}

/// Loads a machine model: either a built-in preset name
/// (`table1`/`validation` or `freon`) or a path to a `.mdl` file (in
/// which case `machine` selects which machine the file defines).
///
/// # Errors
///
/// Returns a message for unknown presets, unreadable files, parse
/// failures, or a missing machine name.
pub fn load_machine(
    model: &str,
    machine: Option<&str>,
) -> Result<mercury::model::MachineModel, String> {
    match model {
        "table1" | "validation" => Ok(mercury::presets::validation_machine()),
        "freon" => Ok(mercury::presets::freon_machine()),
        path => {
            let source = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read model file `{path}`: {e}"))?;
            let library = mercury_graphdl::parse(&source).map_err(|e| format!("{path}: {e}"))?;
            match machine {
                Some(name) => library
                    .machine(name)
                    .cloned()
                    .ok_or_else(|| format!("`{path}` defines no machine `{name}`")),
                None if library.machines().len() == 1 => Ok(library.machines()[0].clone()),
                None => Err(format!(
                    "`{path}` defines {} machines; pick one with --machine",
                    library.machines().len()
                )),
            }
        }
    }
}

/// Loads a cluster model from a `.mdl` file, or the built-in Figure 1c
/// room (`room:<n>` / `freon-room:<n>`).
///
/// # Errors
///
/// As [`load_machine`].
pub fn load_cluster(
    model: &str,
    cluster: Option<&str>,
) -> Result<mercury::model::ClusterModel, String> {
    if let Some(n) = model.strip_prefix("room:") {
        let n: usize = n
            .parse()
            .map_err(|_| format!("bad machine count in `{model}`"))?;
        return Ok(mercury::presets::validation_cluster(n));
    }
    if let Some(n) = model.strip_prefix("freon-room:") {
        let n: usize = n
            .parse()
            .map_err(|_| format!("bad machine count in `{model}`"))?;
        return Ok(mercury::presets::freon_cluster(n));
    }
    let source = std::fs::read_to_string(model)
        .map_err(|e| format!("cannot read model file `{model}`: {e}"))?;
    let library = mercury_graphdl::parse(&source).map_err(|e| format!("{model}: {e}"))?;
    match cluster {
        Some(name) => library
            .cluster(name)
            .cloned()
            .ok_or_else(|| format!("`{model}` defines no cluster `{name}`")),
        None if library.clusters().len() == 1 => Ok(library.clusters()[0].1.clone()),
        None => Err(format!(
            "`{model}` defines {} clusters; pick one with --cluster",
            library.clusters().len()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(words: &[&str]) -> Args {
        Args::parse(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_flags_values_and_positionals() {
        let a = args(&[
            "--bind",
            "0.0.0.0:8367",
            "--verbose",
            "server",
            "temperature",
            "inlet",
            "30",
        ]);
        assert_eq!(a.value("bind"), Some("0.0.0.0:8367"));
        assert!(a.has("verbose"));
        assert_eq!(a.value("verbose"), None);
        assert!(!a.has("quiet"));
        assert_eq!(a.positional(), &["server", "temperature", "inlet", "30"]);
        assert!(a.require("bind").is_ok());
        assert!(a.require("missing").is_err());
    }

    #[test]
    fn later_flags_win() {
        let a = args(&["--port", "1", "--port", "2"]);
        assert_eq!(a.value("port"), Some("2"));
    }

    #[test]
    fn resolve_handles_good_and_bad_addresses() {
        assert!(resolve("127.0.0.1:8367").is_ok());
        assert!(resolve("definitely not an address").is_err());
    }

    #[test]
    fn load_machine_presets_and_errors() {
        assert_eq!(load_machine("table1", None).unwrap().name(), "server");
        assert_eq!(load_machine("freon", None).unwrap().name(), "server");
        assert!(load_machine("/no/such/file.mdl", None).is_err());
    }

    #[test]
    fn load_machine_from_file() {
        let dir = std::env::temp_dir().join(format!("mercury-tools-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.mdl");
        std::fs::write(
            &path,
            "machine tiny { cpu [type=component, mass=0.1, c=896, pmin=7, pmax=31];\n\
             inlet [type=inlet]; a [type=air]; exhaust [type=exhaust];\n\
             cpu -- a [k=0.75]; inlet -> a [fraction=1]; a -> exhaust [fraction=1]; }",
        )
        .unwrap();
        let model = load_machine(path.to_str().unwrap(), None).unwrap();
        assert_eq!(model.name(), "tiny");
        let model = load_machine(path.to_str().unwrap(), Some("tiny")).unwrap();
        assert_eq!(model.name(), "tiny");
        assert!(load_machine(path.to_str().unwrap(), Some("ghost")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_cluster_presets() {
        assert_eq!(load_cluster("room:4", None).unwrap().machines().len(), 4);
        assert_eq!(
            load_cluster("freon-room:2", None).unwrap().machines().len(),
            2
        );
        assert!(load_cluster("room:x", None).is_err());
        assert!(load_cluster("/no/such.mdl", None).is_err());
    }
}
