//! `mercury-monitord` — the component-utilization monitoring daemon.
//!
//! ```text
//! usage: mercury-monitord --solver HOST:PORT --machine NAME
//!                         [--cpu COMPONENT] [--disk COMPONENT DEVICE]
//!                         [--synthetic CPU_UTIL DISK_UTIL]
//!                         [--interval-ms MILLIS]
//!
//!   --solver       address of mercury-solverd
//!   --machine      machine name to report for ("" for single-machine solvers)
//!   --cpu          Mercury component fed with host CPU utilization
//!                  (default cpu; reads /proc/stat)
//!   --disk         Mercury component and block device for disk
//!                  utilization (default: disk_platters sda; /proc/diskstats)
//!   --synthetic    report fixed utilizations instead of sampling /proc —
//!                  for driving experiments on non-Linux hosts
//!   --interval-ms  sampling period (default 1000, the paper's 1 s)
//! ```

use mercury::net::{FnSource, Monitord, ProcSource};
use mercury_tools::{resolve, Args};
use std::time::Duration;

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("mercury-monitord: {message}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args = Args::parse(std::env::args().skip(1));
    let solver = resolve(args.require("solver")?)?;
    let machine = args.require("machine")?.to_string();
    let interval_ms: u64 = args
        .value("interval-ms")
        .unwrap_or("1000")
        .parse()
        .map_err(|_| "--interval-ms wants an integer".to_string())?;
    let interval = Duration::from_millis(interval_ms.max(1));

    let _daemon = if args.has("synthetic") {
        let mut fixed = args.positional().iter();
        let cpu: f64 = args
            .value("synthetic")
            .unwrap_or("0.5")
            .parse()
            .map_err(|_| "--synthetic wants a cpu utilization".to_string())?;
        let disk: f64 = fixed
            .next()
            .map(|s| s.parse().unwrap_or(0.0))
            .unwrap_or(0.0);
        eprintln!("reporting synthetic utilizations: cpu {cpu}, disk {disk}");
        Monitord::spawn(
            machine,
            FnSource(move || {
                vec![
                    ("cpu".to_string(), cpu),
                    ("disk_platters".to_string(), disk),
                ]
            }),
            solver,
            interval,
        )
        .map_err(|e| e.to_string())?
    } else {
        let cpu_component = args.value("cpu").unwrap_or("cpu").to_string();
        let (disk_component, device) = match args.value("disk") {
            Some(component) => {
                let device = args
                    .positional()
                    .first()
                    .cloned()
                    .unwrap_or_else(|| "sda".to_string());
                (component.to_string(), device)
            }
            None => ("disk_platters".to_string(), "sda".to_string()),
        };
        eprintln!(
            "sampling /proc every {interval_ms} ms: cpu -> `{cpu_component}`, {device} -> `{disk_component}`"
        );
        let source = ProcSource::new(cpu_component, disk_component, device);
        Monitord::spawn(machine, source, solver, interval).map_err(|e| e.to_string())?
    };

    eprintln!("mercury-monitord reporting to {solver}; ctrl-c to stop");
    // The daemon thread keeps running; sleep until killed.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
