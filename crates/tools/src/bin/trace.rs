//! `mercury-trace` — fetch, merge, and convert Mercury span dumps.
//!
//! ```text
//! usage: mercury-trace fetch HOST:PORT [--out FILE]
//!        mercury-trace convert INPUT... [--out FILE]
//!
//!   fetch    ask a running solver service for its recent spans
//!            (the TraceDump request) and write them as span JSONL
//!   convert  merge span JSONL dumps and/or flight-recorder incident
//!            bundles into one Chrome trace-event JSON file, ready for
//!            chrome://tracing or https://ui.perfetto.dev
//! ```
//!
//! A typical post-incident session:
//!
//! ```text
//! $ mercury-trace fetch 127.0.0.1:8367 --out spans.jsonl
//! $ mercury-trace convert spans.jsonl results/incidents/incident_t300_m1_red_line.json \
//!       --out incident.trace.json
//! ```

use mercury::net::proto::Request;
use mercury_tools::{fetch_multipart, resolve, Args};
use std::time::Duration;
use telemetry::trace::{parse_jsonl, to_chrome_trace, to_jsonl, SpanRecord};

fn main() -> std::process::ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("mercury-trace: {message}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<std::process::ExitCode, String> {
    let args = Args::parse(std::env::args().skip(1));
    match args.positional() {
        [] => Err("usage: mercury-trace fetch HOST:PORT | convert INPUT... (see --help)".into()),
        [cmd, rest @ ..] => match cmd.as_str() {
            "fetch" => fetch(&args, rest),
            "convert" => convert(&args, rest).map(|()| std::process::ExitCode::SUCCESS),
            other => Err(format!("unknown command `{other}`; try fetch or convert")),
        },
    }
}

/// Writes `text` to `--out` or stdout.
fn emit(args: &Args, text: &str) -> Result<(), String> {
    match args.value("out") {
        Some(path) => std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}")),
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

/// `fetch HOST:PORT` — one TraceDump round trip through the shared
/// multi-part fetch path. A dump with datagrams missing is still
/// written (spans are independent JSONL lines), but the gap is warned
/// about and the exit status is 2.
fn fetch(args: &Args, rest: &[String]) -> Result<std::process::ExitCode, String> {
    let addr = rest
        .first()
        .ok_or("fetch wants the solver's HOST:PORT".to_string())?;
    let solver = resolve(addr)?;
    let dump = fetch_multipart(solver, &Request::TraceDump, Duration::from_secs(2))?;
    let spans =
        parse_jsonl(&dump.text).map_err(|e| format!("solver sent a malformed dump: {e}"))?;
    eprintln!("fetched {} spans from {addr}", spans.len());
    if !dump.is_complete() {
        eprintln!(
            "mercury-trace: warning: incomplete dump — {}/{} parts arrived (UDP loss)",
            dump.received, dump.total
        );
    }
    emit(args, &dump.text)?;
    Ok(if dump.is_complete() {
        std::process::ExitCode::SUCCESS
    } else {
        std::process::ExitCode::from(2)
    })
}

/// Reads one input file as spans: an incident bundle (detected by its
/// schema tag) or plain span JSONL.
fn read_spans(path: &str) -> Result<Vec<SpanRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    if text.contains(telemetry::recorder::BUNDLE_SCHEMA) {
        telemetry::recorder::extract_bundle_spans(&text).map_err(|e| format!("{path}: {e}"))
    } else {
        parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))
    }
}

/// `convert INPUT...` — merge dumps and bundles, sort by start time,
/// drop duplicate span ids (the same span can appear in a live dump and
/// in a bundle), and emit Chrome trace-event JSON — or, with `--jsonl`,
/// merged span JSONL.
fn convert(args: &Args, rest: &[String]) -> Result<(), String> {
    if rest.is_empty() {
        return Err("convert wants at least one JSONL dump or incident bundle".to_string());
    }
    let mut spans: Vec<SpanRecord> = Vec::new();
    for path in rest {
        spans.extend(read_spans(path)?);
    }
    let mut seen = std::collections::HashSet::new();
    spans.retain(|s| s.id == 0 || seen.insert(s.id));
    spans.sort_by_key(|s| s.start_ns);
    eprintln!("merged {} spans from {} input(s)", spans.len(), rest.len());
    if args.has("jsonl") {
        emit(args, &to_jsonl(&spans))
    } else {
        emit(args, &to_chrome_trace(&spans))
    }
}
