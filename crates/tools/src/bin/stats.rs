//! `mercury-stats` — scrape and pretty-print a running solver's
//! telemetry.
//!
//! ```text
//! usage: mercury-stats --solver HOST:PORT [--raw] [--watch SECONDS]
//!
//!   --raw    print the Prometheus text exposition verbatim (pipe it to
//!            a file and point a Prometheus file exporter at it)
//!   --watch  re-scrape every N seconds until interrupted; from the
//!            second frame on, counter families additionally print
//!            their per-interval rate (delta / elapsed)
//! ```
//!
//! The default output groups the scrape by metric family: counters and
//! gauges one per line, histograms as `count / mean / max-bucket`.
//!
//! Scrapes travel as multiple UDP datagrams; when any advertised part
//! fails to arrive the tool warns on stderr and (in one-shot mode)
//! exits with status 2 rather than presenting a truncated document.

use mercury::net::proto::Request;
use mercury_tools::{fetch_multipart, resolve, Args, MultipartFetch};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

fn main() -> std::process::ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("mercury-stats: {message}");
            std::process::ExitCode::FAILURE
        }
    }
}

/// Sends one scrape request and reassembles the (possibly multi-part)
/// metrics reply.
fn scrape(solver: SocketAddr) -> Result<MultipartFetch, String> {
    fetch_multipart(solver, &Request::Scrape, Duration::from_secs(2))
}

fn format_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{{{}}}", inner.join(","))
}

/// One histogram series, reassembled from its `_bucket`/`_sum`/`_count`
/// exposition lines.
#[derive(Default)]
struct HistogramSeries {
    count: f64,
    sum: f64,
    /// `(le, cumulative)` pairs in line order.
    buckets: Vec<(f64, f64)>,
}

impl HistogramSeries {
    /// The smallest finite `le` bound whose cumulative bucket already
    /// holds every sample — an upper bound on the largest observation.
    fn max_le(&self) -> Option<f64> {
        self.buckets
            .iter()
            .filter(|(le, cumulative)| le.is_finite() && *cumulative >= self.count)
            .map(|(le, _)| *le)
            .fold(None, |best, le| Some(best.map_or(le, |b: f64| b.min(le))))
    }
}

fn pretty_print(text: &str) -> Result<(), String> {
    let samples = telemetry::text::parse_exposition(text)
        .map_err(|e| format!("scrape did not parse as Prometheus text: {e}"))?;

    let mut histograms: BTreeMap<String, HistogramSeries> = BTreeMap::new();
    let mut scalars: Vec<(String, f64)> = Vec::new();
    for sample in &samples {
        if let Some(family) = sample.name.strip_suffix("_bucket") {
            let labels: Vec<(String, String)> = sample
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .cloned()
                .collect();
            let series = histograms
                .entry(format!("{family}{}", format_labels(&labels)))
                .or_default();
            let le: f64 = match sample.label("le") {
                Some("+Inf") | None => f64::INFINITY,
                Some(bound) => bound.parse().unwrap_or(f64::INFINITY),
            };
            series.buckets.push((le, sample.value));
            continue;
        }
        if let Some(family) = sample.name.strip_suffix("_sum") {
            let key = format!("{family}{}", format_labels(&sample.labels));
            histograms.entry(key).or_default().sum = sample.value;
            continue;
        }
        if let Some(family) = sample.name.strip_suffix("_count") {
            let key = format!("{family}{}", format_labels(&sample.labels));
            histograms.entry(key).or_default().count = sample.value;
            continue;
        }
        scalars.push((
            format!("{}{}", sample.name, format_labels(&sample.labels)),
            sample.value,
        ));
    }

    for (name, value) in &scalars {
        println!("{name:<70} {value}");
    }
    for (name, series) in &histograms {
        if series.count > 0.0 {
            let mean = series.sum / series.count;
            let max = series
                .max_le()
                .map_or("?".to_string(), |le| format!("{le:.3e}"));
            println!(
                "{name:<70} count={} mean={mean:.3e} max<={max}",
                series.count
            );
        } else {
            println!("{name:<70} count=0");
        }
    }
    Ok(())
}

/// Extracts every counter-family sample (`*_total` counters and
/// histogram `*_count` lines) keyed by `name{labels}`, for rate
/// computation between watch frames.
fn counter_samples(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let samples = telemetry::text::parse_exposition(text)
        .map_err(|e| format!("scrape did not parse as Prometheus text: {e}"))?;
    Ok(samples
        .iter()
        .filter(|s| s.name.ends_with("_total") || s.name.ends_with("_count"))
        .map(|s| (format!("{}{}", s.name, format_labels(&s.labels)), s.value))
        .collect())
}

/// Prints per-second rates for every counter seen this frame, using the
/// previous frame as the baseline (counters new this frame rate from 0).
fn print_rates(now: &BTreeMap<String, f64>, before: &BTreeMap<String, f64>, elapsed: Duration) {
    let dt = elapsed.as_secs_f64();
    if dt <= 0.0 {
        return;
    }
    println!("-- counter rates over the last {dt:.1} s --");
    for (name, value) in now {
        let delta = value - before.get(name).copied().unwrap_or(0.0);
        println!("{name:<70} {:+.3}/s", delta / dt);
    }
}

fn run() -> Result<std::process::ExitCode, String> {
    let args = Args::parse(std::env::args().skip(1));
    let solver = resolve(args.require("solver")?)?;
    let raw = args.has("raw");

    let print = |fetch: &MultipartFetch| -> Result<(), String> {
        if !fetch.is_complete() {
            eprintln!(
                "mercury-stats: warning: incomplete scrape — {}/{} parts arrived (UDP loss)",
                fetch.received, fetch.total
            );
        }
        if raw {
            print!("{}", fetch.text);
            Ok(())
        } else {
            pretty_print(&fetch.text)
        }
    };

    match args.value("watch") {
        None => {
            let fetch = scrape(solver)?;
            print(&fetch)?;
            Ok(if fetch.is_complete() {
                std::process::ExitCode::SUCCESS
            } else {
                std::process::ExitCode::from(2)
            })
        }
        Some(period) => {
            let period: f64 = period
                .parse()
                .map_err(|_| "--watch wants seconds".to_string())?;
            let mut prev: Option<(Instant, BTreeMap<String, f64>)> = None;
            loop {
                let fetch = scrape(solver)?;
                print(&fetch)?;
                if !raw {
                    let counters = counter_samples(&fetch.text)?;
                    let now = Instant::now();
                    if let Some((then, before)) = prev.take() {
                        print_rates(&counters, &before, now - then);
                    }
                    prev = Some((now, counters));
                }
                println!();
                std::thread::sleep(Duration::from_secs_f64(period.max(0.05)));
            }
        }
    }
}
