//! `mercury-stats` — scrape and pretty-print a running solver's
//! telemetry.
//!
//! ```text
//! usage: mercury-stats --solver HOST:PORT [--raw] [--watch SECONDS]
//!
//!   --raw    print the Prometheus text exposition verbatim (pipe it to
//!            a file and point a Prometheus file exporter at it)
//!   --watch  re-scrape every N seconds until interrupted
//! ```
//!
//! The default output groups the scrape by metric family: counters and
//! gauges one per line, histograms as `count / mean / max-bucket`.

use mercury::net::proto::{self, Reply, Request};
use mercury_tools::{resolve, Args};
use std::collections::BTreeMap;
use std::net::{SocketAddr, UdpSocket};
use std::time::Duration;

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("mercury-stats: {message}");
            std::process::ExitCode::FAILURE
        }
    }
}

/// Sends one scrape request and reassembles the (possibly multi-part)
/// metrics reply into the full text exposition.
fn scrape(solver: SocketAddr) -> Result<String, String> {
    let socket = UdpSocket::bind("0.0.0.0:0").map_err(|e| e.to_string())?;
    socket.connect(solver).map_err(|e| e.to_string())?;
    socket
        .set_read_timeout(Some(Duration::from_secs(2)))
        .map_err(|e| e.to_string())?;
    socket
        .send(&proto::encode_request(&Request::Scrape))
        .map_err(|e| e.to_string())?;
    let mut received: BTreeMap<u16, String> = BTreeMap::new();
    let mut buf = [0u8; proto::MAX_DATAGRAM];
    loop {
        let n = socket
            .recv(&mut buf)
            .map_err(|e| format!("no reply from the solver: {e}"))?;
        match proto::decode_reply(&buf[..n]).map_err(|e| e.to_string())? {
            Reply::Metrics { part, parts, text } => {
                received.insert(part, text);
                if received.len() as u16 == parts {
                    return Ok(received.into_values().collect());
                }
            }
            Reply::Error { message } => return Err(message),
            other => return Err(format!("unexpected reply {other:?} to a scrape")),
        }
    }
}

fn format_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{{{}}}", inner.join(","))
}

/// One histogram series, reassembled from its `_bucket`/`_sum`/`_count`
/// exposition lines.
#[derive(Default)]
struct HistogramSeries {
    count: f64,
    sum: f64,
    /// `(le, cumulative)` pairs in line order.
    buckets: Vec<(f64, f64)>,
}

impl HistogramSeries {
    /// The smallest finite `le` bound whose cumulative bucket already
    /// holds every sample — an upper bound on the largest observation.
    fn max_le(&self) -> Option<f64> {
        self.buckets
            .iter()
            .filter(|(le, cumulative)| le.is_finite() && *cumulative >= self.count)
            .map(|(le, _)| *le)
            .fold(None, |best, le| Some(best.map_or(le, |b: f64| b.min(le))))
    }
}

fn pretty_print(text: &str) -> Result<(), String> {
    let samples = telemetry::text::parse_exposition(text)
        .map_err(|e| format!("scrape did not parse as Prometheus text: {e}"))?;

    let mut histograms: BTreeMap<String, HistogramSeries> = BTreeMap::new();
    let mut scalars: Vec<(String, f64)> = Vec::new();
    for sample in &samples {
        if let Some(family) = sample.name.strip_suffix("_bucket") {
            let labels: Vec<(String, String)> = sample
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .cloned()
                .collect();
            let series = histograms
                .entry(format!("{family}{}", format_labels(&labels)))
                .or_default();
            let le: f64 = match sample.label("le") {
                Some("+Inf") | None => f64::INFINITY,
                Some(bound) => bound.parse().unwrap_or(f64::INFINITY),
            };
            series.buckets.push((le, sample.value));
            continue;
        }
        if let Some(family) = sample.name.strip_suffix("_sum") {
            let key = format!("{family}{}", format_labels(&sample.labels));
            histograms.entry(key).or_default().sum = sample.value;
            continue;
        }
        if let Some(family) = sample.name.strip_suffix("_count") {
            let key = format!("{family}{}", format_labels(&sample.labels));
            histograms.entry(key).or_default().count = sample.value;
            continue;
        }
        scalars.push((
            format!("{}{}", sample.name, format_labels(&sample.labels)),
            sample.value,
        ));
    }

    for (name, value) in &scalars {
        println!("{name:<70} {value}");
    }
    for (name, series) in &histograms {
        if series.count > 0.0 {
            let mean = series.sum / series.count;
            let max = series
                .max_le()
                .map_or("?".to_string(), |le| format!("{le:.3e}"));
            println!(
                "{name:<70} count={} mean={mean:.3e} max<={max}",
                series.count
            );
        } else {
            println!("{name:<70} count=0");
        }
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args = Args::parse(std::env::args().skip(1));
    let solver = resolve(args.require("solver")?)?;
    let raw = args.has("raw");

    let print = |text: &str| -> Result<(), String> {
        if raw {
            print!("{text}");
            Ok(())
        } else {
            pretty_print(text)
        }
    };

    match args.value("watch") {
        None => print(&scrape(solver)?),
        Some(period) => {
            let period: f64 = period
                .parse()
                .map_err(|_| "--watch wants seconds".to_string())?;
            loop {
                print(&scrape(solver)?)?;
                println!();
                std::thread::sleep(Duration::from_secs_f64(period.max(0.05)));
            }
        }
    }
}
