//! `mercury-top` — a live terminal console over a solver's sampled
//! history.
//!
//! ```text
//! usage: mercury-top --solver HOST:PORT [--interval SECONDS]
//!                    [--window SECONDS] [--top N] [--once]
//!
//!   --solver    the solver service address (run `mercury-solverd`
//!               with --sample-ms so it keeps history)
//!   --interval  seconds between frames            (default 2)
//!   --window    history window shown, in seconds  (default 120)
//!   --top       rows in the hottest-machines list (default 8)
//!   --once      render a single frame without clearing the screen
//!               and exit (for scripts and CI)
//! ```
//!
//! Each frame is two `SeriesQuery` round trips against the embedded
//! time-series store: a downsampled sweep of every `temp/*` series
//! (cluster heatmap + per-machine sparklines) and a rate sweep of every
//! sampled counter family (solver/net/freon activity). The console is
//! read-only — it never perturbs the emulation beyond the queries
//! themselves.

use mercury::net::proto::Request;
use mercury_tools::{fetch_multipart, resolve, Args};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::time::{Duration, SystemTime};
use telemetry::tsdb::{parse_results, QueryKind, SeriesResult};

/// Sparkline ramp, coolest to hottest bucket.
const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
/// Downsample buckets per window — also the sparkline width.
const BUCKETS: u64 = 12;
/// Heatmap cells per row.
const HEAT_ROW: usize = 64;

fn main() -> std::process::ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("mercury-top: {message}");
            if message.contains("disabled") {
                eprintln!(
                    "mercury-top: start the solver with --sample-ms (e.g. 1000) to keep history"
                );
            }
            std::process::ExitCode::FAILURE
        }
    }
}

/// Wall-clock milliseconds since the Unix epoch — the service's sample
/// clock.
fn now_millis() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64)
}

/// One machine's thermal state, reduced from its `temp/<machine>/*`
/// series to the hottest component.
struct MachineHeat {
    machine: String,
    component: String,
    /// Latest bucket maximum, °C.
    latest: f64,
    /// Bucket means across the window, for the sparkline.
    history: Vec<f64>,
}

/// Sorts machine names numeric-aware so `server10` follows `server9`.
fn machine_key(name: &str) -> (String, u64) {
    let digits = name.len() - name.bytes().rev().take_while(u8::is_ascii_digit).count();
    (
        name[..digits].to_string(),
        name[digits..].parse().unwrap_or(0),
    )
}

/// Reduces the downsampled `temp/*` results to one entry per machine
/// (its hottest component), sorted by machine name.
fn reduce_machines(results: &[SeriesResult]) -> Vec<MachineHeat> {
    let mut by_machine: BTreeMap<(String, u64), MachineHeat> = BTreeMap::new();
    for r in results {
        let mut parts = r.name.splitn(3, '/');
        let (Some("temp"), Some(machine), Some(component)) =
            (parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        let Some(last) = r.points.last() else {
            continue;
        };
        let heat = MachineHeat {
            machine: machine.to_string(),
            component: component.to_string(),
            latest: last.max,
            history: r.points.iter().map(|p| p.mean).collect(),
        };
        match by_machine.entry(machine_key(machine)) {
            std::collections::btree_map::Entry::Vacant(slot) => {
                slot.insert(heat);
            }
            std::collections::btree_map::Entry::Occupied(mut slot) => {
                if heat.latest > slot.get().latest {
                    slot.insert(heat);
                }
            }
        }
    }
    by_machine.into_values().collect()
}

/// Heatmap shade for a temperature.
fn shade(celsius: f64) -> char {
    match celsius {
        c if c < 30.0 => '·',
        c if c < 45.0 => '░',
        c if c < 55.0 => '▒',
        c if c < 65.0 => '▓',
        _ => '█',
    }
}

/// A sparkline over the series' own min..max range (flat series render
/// as a mid-level bar).
fn sparkline(history: &[f64]) -> String {
    let finite: Vec<f64> = history.iter().copied().filter(|v| v.is_finite()).collect();
    let (lo, hi) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    history
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                return '?';
            }
            if hi - lo < 1e-9 {
                return SPARK[3];
            }
            let idx = ((v - lo) / (hi - lo) * (SPARK.len() - 1) as f64).round() as usize;
            SPARK[idx.min(SPARK.len() - 1)]
        })
        .collect()
}

/// Sums per-second rates per counter family (the series name up to its
/// label block), from a `Rate` query whose step spans the window.
fn family_rates(results: &[SeriesResult]) -> BTreeMap<String, f64> {
    let mut families: BTreeMap<String, f64> = BTreeMap::new();
    for r in results {
        let family = r.name.split('{').next().unwrap_or(&r.name).to_string();
        // Rate buckets are increase per millisecond (the sample clock).
        let per_s = r.points.last().map_or(0.0, |p| p.mean * 1000.0);
        *families.entry(family).or_insert(0.0) += per_s;
    }
    families
}

fn query(
    solver: SocketAddr,
    pattern: &str,
    kind: QueryKind,
    window_ms: u64,
    step: u64,
) -> Result<(Vec<SeriesResult>, bool), String> {
    let now = now_millis();
    let request = Request::SeriesQuery {
        pattern: pattern.to_string(),
        start: now.saturating_sub(window_ms),
        end: u64::MAX,
        step: step.max(1),
        kind,
    };
    let fetch = fetch_multipart(solver, &request, Duration::from_secs(2))?;
    let results = parse_results(&fetch.text)?;
    Ok((results, fetch.is_complete()))
}

/// Renders one frame to stdout. Returns whether every reply datagram
/// arrived.
fn frame(solver: SocketAddr, window_s: u64, top_n: usize) -> Result<bool, String> {
    let window_ms = window_s * 1000;
    let (temps, temps_ok) = query(
        solver,
        "temp/*",
        QueryKind::Downsample,
        window_ms,
        window_ms / BUCKETS,
    )?;
    let (counters, counters_ok) = query(solver, "*_total*", QueryKind::Rate, window_ms, window_ms)?;

    let machines = reduce_machines(&temps);
    println!(
        "mercury-top — {solver} — {} machines, {} temp series, window {window_s} s",
        machines.len(),
        temps.len()
    );
    println!();

    println!("cluster heatmap (one cell per machine, hottest component; · <30°C ░ <45 ▒ <55 ▓ <65 █ ≥65)");
    if machines.is_empty() {
        println!("  (no temp/* series in the window yet — is sampling on and warmed up?)");
    }
    for (row_start, row) in machines
        .chunks(HEAT_ROW)
        .enumerate()
        .map(|(i, c)| (i * HEAT_ROW, c))
    {
        let cells: String = row.iter().map(|m| shade(m.latest)).collect();
        println!("  [{row_start:>4}] {cells}");
    }
    println!();

    println!("hottest machines");
    println!(
        "  {:<18} {:<14} {:>8}   trend over {window_s} s",
        "machine", "component", "now °C"
    );
    let mut hottest: Vec<&MachineHeat> = machines.iter().collect();
    hottest.sort_by(|a, b| b.latest.total_cmp(&a.latest));
    for m in hottest.iter().take(top_n) {
        println!(
            "  {:<18} {:<14} {:>8.1}   {}",
            m.machine,
            m.component,
            m.latest,
            sparkline(&m.history)
        );
    }
    println!();

    let rates = family_rates(&counters);
    println!("activity (per second over the window)");
    if rates.is_empty() {
        println!("  (no counter series sampled yet)");
    }
    for (family, rate) in &rates {
        println!("  {family:<52} {rate:>10.3}/s");
    }
    let freon_rate = |family: &str| {
        rates
            .get(family)
            .map_or("-".to_string(), |r| format!("{r:.3}/s"))
    };
    println!(
        "  freon: decisions {}, trend anomalies {}",
        freon_rate("mercury_freon_decisions_total"),
        freon_rate("mercury_freon_trend_anomalies_total")
    );

    Ok(temps_ok && counters_ok)
}

fn run() -> Result<std::process::ExitCode, String> {
    let args = Args::parse(std::env::args().skip(1));
    let solver = resolve(args.require("solver")?)?;
    let interval: f64 = args
        .value("interval")
        .unwrap_or("2")
        .parse()
        .map_err(|_| "--interval wants seconds".to_string())?;
    let window_s: u64 = args
        .value("window")
        .unwrap_or("120")
        .parse()
        .map_err(|_| "--window wants whole seconds".to_string())?;
    let top_n: usize = args
        .value("top")
        .unwrap_or("8")
        .parse()
        .map_err(|_| "--top wants an integer".to_string())?;
    let window_s = window_s.max(1);

    if args.has("once") {
        let complete = frame(solver, window_s, top_n)?;
        if !complete {
            eprintln!("mercury-top: warning: some reply datagrams were lost");
        }
        return Ok(if complete {
            std::process::ExitCode::SUCCESS
        } else {
            std::process::ExitCode::from(2)
        });
    }

    loop {
        // Clear and home, then draw the frame in one go.
        print!("\x1b[2J\x1b[H");
        if let Err(message) = frame(solver, window_s, top_n) {
            // Transient fetch errors shouldn't kill a live console.
            eprintln!("mercury-top: {message}");
        }
        std::thread::sleep(Duration::from_secs_f64(interval.max(0.1)));
    }
}
