//! `mercury-fiddle` — inject thermal emergencies into a running solver.
//!
//! One-shot, mirroring the paper's command line:
//!
//! ```text
//! mercury-fiddle --solver HOST:PORT machine1 temperature inlet 30
//! mercury-fiddle --solver HOST:PORT machine1 fanspeed 19.3
//! mercury-fiddle --solver HOST:PORT machine1 release inlet
//! ```
//!
//! Or replay a whole script (Figure 4) with real sleeps:
//!
//! ```text
//! mercury-fiddle --solver HOST:PORT --script emergency.fiddle
//! ```
//!
//! With `--speedup N`, script sleeps are divided by N (pair it with a
//! fast-forwarding solver).

use mercury::fiddle::FiddleScript;
use mercury::net::send_fiddle;
use mercury_tools::{resolve, Args};
use std::time::Duration;

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("mercury-fiddle: {message}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args = Args::parse(std::env::args().skip(1));
    let solver = resolve(args.require("solver")?)?;

    if let Some(path) = args.value("script") {
        let speedup: f64 = args
            .value("speedup")
            .unwrap_or("1")
            .parse()
            .map_err(|_| "--speedup wants a number".to_string())?;
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read script `{path}`: {e}"))?;
        let script = FiddleScript::parse(&text).map_err(|e| e.to_string())?;
        eprintln!("replaying {} events from `{path}`", script.events().len());
        let mut clock = 0.0_f64;
        for event in script.events() {
            let wait = (event.at.0 - clock).max(0.0) / speedup.max(1e-9);
            if wait > 0.0 {
                std::thread::sleep(Duration::from_secs_f64(wait));
            }
            clock = event.at.0;
            eprintln!("t={:>6.0}s  {}", event.at.0, event.command);
            send_fiddle(solver, &event.command).map_err(|e| e.to_string())?;
        }
        return Ok(());
    }

    // One-shot: reuse the script grammar for a single command line.
    let line = format!("fiddle {}", args.positional().join(" "));
    let script = FiddleScript::parse(&line).map_err(|e| e.to_string())?;
    let command = script
        .events()
        .first()
        .map(|e| e.command.clone())
        .ok_or_else(|| "no command given; try: <machine> temperature <node> <°C>".to_string())?;
    send_fiddle(solver, &command).map_err(|e| e.to_string())?;
    eprintln!("applied: {command}");
    Ok(())
}
