//! `mercury-solverd` — the Mercury solver as a long-running service.
//!
//! ```text
//! usage: mercury-solverd [--bind HOST:PORT] [--model PRESET|FILE.mdl]
//!                        [--machine NAME | --cluster NAME]
//!                        [--tick-ms MILLIS] [--dt SECONDS] [--trace]
//!                        [--sample-ms MILLIS]
//!
//!   --bind       address to listen on           (default 127.0.0.1:8367)
//!   --model      `table1`, `freon`, `room:<n>`, `freon-room:<n>`,
//!                or a graph-description file    (default table1)
//!   --machine    machine to pick from a file defining several
//!   --cluster    cluster to pick from a file (serves a whole room)
//!   --tick-ms    wall milliseconds per emulated second (default 1000 =
//!                real time; smaller fast-forwards)
//!   --dt         emulated seconds per solver tick (default 1)
//!   --trace      record causal spans (tick phases, request lifecycle)
//!                and answer TraceDump requests from `mercury-trace`
//!   --sample-ms  keep sampled history: snapshot every metric and node
//!                temperature into the embedded time-series store every
//!                N wall ms, and answer SeriesQuery requests from
//!                `mercury-top` (off unless given; 1000 is typical)
//! ```
//!
//! The paper's example port is 8367.

use mercury::net::{ServiceConfig, SolverService};
use mercury::solver::SolverConfig;
use mercury::units::Seconds;
use mercury_tools::{load_cluster, load_machine, resolve, Args};
use std::time::Duration;

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("mercury-solverd: {message}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args = Args::parse(std::env::args().skip(1));
    let bind = resolve(args.value("bind").unwrap_or("127.0.0.1:8367"))?;
    let model = args.value("model").unwrap_or("table1");
    let tick_ms: u64 = args
        .value("tick-ms")
        .unwrap_or("1000")
        .parse()
        .map_err(|_| "--tick-ms wants an integer".to_string())?;
    let dt: f64 = args
        .value("dt")
        .unwrap_or("1")
        .parse()
        .map_err(|_| "--dt wants a number".to_string())?;

    let tracer = if args.has("trace") {
        telemetry::Tracer::new(telemetry::trace::DEFAULT_SPAN_CAPACITY)
    } else {
        telemetry::Tracer::default()
    };
    let sample_every = args
        .value("sample-ms")
        .map(|ms| {
            ms.parse::<u64>()
                .map(|ms| Duration::from_millis(ms.max(1)))
                .map_err(|_| "--sample-ms wants an integer".to_string())
        })
        .transpose()?;
    let config = ServiceConfig {
        bind,
        tick_wall: Duration::from_millis(tick_ms.max(1)),
        solver: SolverConfig {
            dt: Seconds(dt),
            ..SolverConfig::default()
        },
        tracer: tracer.clone(),
        sample_every,
    };

    let wants_cluster =
        args.has("cluster") || model.starts_with("room:") || model.starts_with("freon-room:");
    let service = if wants_cluster {
        let cluster = load_cluster(model, args.value("cluster"))?;
        eprintln!(
            "serving a {}-machine room from `{model}`",
            cluster.machines().len()
        );
        SolverService::spawn_cluster(&cluster, config).map_err(|e| e.to_string())?
    } else {
        let machine = load_machine(model, args.value("machine"))?;
        eprintln!("serving machine `{}` from `{model}`", machine.name());
        SolverService::spawn_machine(&machine, config).map_err(|e| e.to_string())?
    };

    eprintln!(
        "mercury-solverd listening on {} ({} wall ms per emulated second)",
        service.local_addr(),
        tick_ms
    );
    if tracer.is_attached() {
        eprintln!("span tracing on; dump with `mercury-trace fetch {}`", bind);
    }
    if let Some(period) = sample_every {
        eprintln!(
            "history sampling on every {} ms; watch with `mercury-top --solver {}`",
            period.as_millis(),
            bind
        );
    }
    eprintln!("press ctrl-c to stop");
    // Serve until killed; the service threads do all the work.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
