//! `mercury-offline` — trace-driven emulation without any live system.
//!
//! "Mercury is capable of computing temperatures from component-
//! utilization traces, which allows for fine-tuning of parameters
//! without actually running the system software" (§1). This tool is that
//! mode as a batch program:
//!
//! ```text
//! usage: mercury-offline --model PRESET|FILE.mdl --trace TRACE.csv
//!                        [--machine NAME] [--script SCRIPT.fiddle]
//!                        [--out TEMPS.csv]
//!
//!   --model    `table1`, `freon`, or a graph-description file
//!   --trace    a utilization trace (see UtilizationTrace::write_csv)
//!   --script   fiddle events to apply during the replay
//!   --out      where to write the temperature CSV (default stdout)
//! ```

use mercury::fiddle::FiddleScript;
use mercury::solver::SolverConfig;
use mercury::trace::{run_offline, UtilizationTrace};
use mercury_tools::{load_machine, Args};

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("mercury-offline: {message}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args = Args::parse(std::env::args().skip(1));
    let model = load_machine(
        args.value("model").unwrap_or("table1"),
        args.value("machine"),
    )?;
    // `--trace` is a boolean flag in the shared parser (mercury-solverd
    // uses it for span tracing), so its file argument arrives as the
    // first positional word.
    let trace_path = args
        .value("trace")
        .or_else(|| args.positional().first().map(String::as_str))
        .ok_or("missing required --trace <TRACE.csv>")?;
    let trace_file = std::fs::File::open(trace_path)
        .map_err(|e| format!("cannot read trace `{trace_path}`: {e}"))?;
    let trace = UtilizationTrace::read_csv_from(std::io::BufReader::new(trace_file))
        .map_err(|e| format!("`{trace_path}`: {e}"))?;
    let script = match args.value("script") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read script `{path}`: {e}"))?;
            Some(FiddleScript::parse(&text).map_err(|e| e.to_string())?)
        }
        None => None,
    };

    eprintln!(
        "replaying {}s of `{}` utilizations through `{}`",
        trace.duration().0,
        trace.machine(),
        model.name()
    );
    let log = run_offline(&model, &trace, SolverConfig::default(), script.as_ref())
        .map_err(|e| e.to_string())?;

    let mut csv = Vec::new();
    log.write_csv(&mut csv).map_err(|e| e.to_string())?;
    match args.value("out") {
        Some(path) => {
            std::fs::write(path, &csv).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!("wrote {} rows to {path}", log.len());
        }
        None => {
            use std::io::Write as _;
            std::io::stdout()
                .write_all(&csv)
                .map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}
