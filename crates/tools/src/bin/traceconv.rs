//! `mercury-traceconv` — convert utilization traces to and from the
//! `mercury-events-v1` binary format.
//!
//! CSV is the human-facing trace format; `.events` is the replay format:
//! one preprocessing pass quantizes every sample to 16 bits, delta/RLE-
//! compresses input-stable spans, and writes a file the replay engine
//! memory-maps and feeds to `ClusterSolver::step_for` out of core (see
//! DESIGN.md "The binary trace pipeline").
//!
//! ```text
//! usage: mercury-traceconv <command> [options]
//!
//!   encode TRACE.csv...        CSVs (one per machine) -> one .events file
//!     --out FLEET.events         output path (required)
//!     --replicate N              replicate a single input CSV across
//!                                machine1..machineN before encoding
//!
//!   decode FLEET.events        .events -> one CSV per machine
//!     --out-dir DIR              output directory (default .)
//!
//!   workload WORKLOAD.json     workload-gen trace -> .events
//!     --out FLEET.events         output path (required)
//!     --machines N               fleet size (default 1)
//!     --interval-s S             solver tick length (default 1)
//!     --peak-rps R               offered rate that saturates a component
//!                                (default: the trace's own peak second)
//!     --components LIST          comma-separated component names
//!                                (default cpu)
//!
//!   info FLEET.events          print the header without decoding frames
//! ```
//!
//! Streaming by construction: `encode` reads CSVs through `BufRead` line
//! by line and `decode` writes CSVs row by row, so neither ever holds a
//! whole text file in RAM.

use mercury::trace::events::{self, EventsHeader};
use mercury::trace::UtilizationTrace;
use mercury_tools::Args;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write as _};
use std::path::Path;

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("mercury-traceconv: {message}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let mut raw = std::env::args().skip(1).peekable();
    let command = raw.next().unwrap_or_else(|| "help".to_string());
    let args = Args::parse(raw);
    match command.as_str() {
        "encode" => encode(&args),
        "decode" => decode(&args),
        "workload" => workload(&args),
        "info" => info(&args),
        "help" | "--help" => {
            eprintln!(
                "usage: mercury-traceconv encode|decode|workload|info ... (see --help text \
                 in the source header)"
            );
            Ok(())
        }
        other => Err(format!(
            "unknown command `{other}` (expected encode, decode, workload, or info)"
        )),
    }
}

fn read_csv(path: &str) -> Result<UtilizationTrace, String> {
    let file = File::open(path).map_err(|e| format!("cannot read trace `{path}`: {e}"))?;
    UtilizationTrace::read_csv_from(BufReader::new(file)).map_err(|e| format!("`{path}`: {e}"))
}

fn write_events(path: &str, traces: &[UtilizationTrace]) -> Result<events::EncodeStats, String> {
    let file = File::create(path).map_err(|e| format!("cannot create `{path}`: {e}"))?;
    let mut out = BufWriter::new(file);
    let stats = events::encode(traces, &mut out).map_err(|e| e.to_string())?;
    out.flush()
        .map_err(|e| format!("cannot write `{path}`: {e}"))?;
    Ok(stats)
}

fn report(path: &str, stats: &events::EncodeStats, machines: usize) {
    eprintln!(
        "wrote {path}: {machines} machines x {} ticks in {} bytes \
         ({} full, {} delta frames; {} ticks held across {} holds)",
        stats.ticks,
        stats.bytes,
        stats.full_frames,
        stats.delta_frames,
        stats.held_ticks,
        stats.hold_records
    );
}

fn encode(args: &Args) -> Result<(), String> {
    let out = args.require("out")?;
    let inputs = args.positional();
    if inputs.is_empty() {
        return Err("encode needs at least one TRACE.csv argument".into());
    }
    let mut traces = Vec::new();
    if let Some(n) = args.value("replicate") {
        let n: usize = n
            .parse()
            .map_err(|_| format!("--replicate `{n}` is not a number"))?;
        if inputs.len() != 1 {
            return Err("--replicate takes exactly one input CSV".into());
        }
        if n == 0 {
            return Err("--replicate needs at least one machine".into());
        }
        let base = read_csv(&inputs[0])?;
        traces.extend((0..n).map(|i| base.replicate_for(format!("machine{}", i + 1))));
    } else {
        for path in inputs {
            traces.push(read_csv(path)?);
        }
    }
    let stats = write_events(out, &traces)?;
    report(out, &stats, traces.len());
    Ok(())
}

fn decode(args: &Args) -> Result<(), String> {
    let [input] = args.positional() else {
        return Err("decode takes exactly one FLEET.events argument".into());
    };
    let out_dir = Path::new(args.value("out-dir").unwrap_or("."));
    let bytes = std::fs::read(input).map_err(|e| format!("cannot read `{input}`: {e}"))?;
    let traces = events::decode(&bytes).map_err(|e| format!("`{input}`: {e}"))?;
    std::fs::create_dir_all(out_dir)
        .map_err(|e| format!("cannot create `{}`: {e}", out_dir.display()))?;
    for trace in &traces {
        let path = out_dir.join(format!("{}.csv", trace.machine()));
        let file =
            File::create(&path).map_err(|e| format!("cannot create `{}`: {e}", path.display()))?;
        let mut w = BufWriter::new(file);
        trace
            .write_csv(&mut w)
            .and_then(|()| w.flush().map_err(Into::into))
            .map_err(|e| format!("cannot write `{}`: {e}", path.display()))?;
    }
    eprintln!(
        "decoded {input}: {} machines x {} ticks into {}",
        traces.len(),
        traces.first().map_or(0, UtilizationTrace::len),
        out_dir.display()
    );
    Ok(())
}

fn workload(args: &Args) -> Result<(), String> {
    let [input] = args.positional() else {
        return Err("workload takes exactly one WORKLOAD.json argument".into());
    };
    let out = args.require("out")?;
    let machines: usize = args.value("machines").unwrap_or("1").parse().map_err(|_| {
        format!(
            "--machines `{}` is not a number",
            args.value("machines").unwrap_or_default()
        )
    })?;
    if machines == 0 {
        return Err("--machines needs at least one machine".into());
    }
    let interval_s: u64 = args
        .value("interval-s")
        .unwrap_or("1")
        .parse()
        .map_err(|_| "--interval-s must be a whole number of seconds".to_string())?;
    if interval_s == 0 {
        return Err("--interval-s must be at least 1".into());
    }
    let components: Vec<String> = args
        .value("components")
        .unwrap_or("cpu")
        .split(',')
        .map(|c| c.trim().to_string())
        .filter(|c| !c.is_empty())
        .collect();

    let text = std::fs::read_to_string(input).map_err(|e| format!("cannot read `{input}`: {e}"))?;
    let trace =
        workload_gen::WorkloadTrace::from_json(&text).map_err(|e| format!("`{input}`: {e}"))?;
    let peak_rps = match args.value("peak-rps") {
        Some(v) => v
            .parse::<f64>()
            .ok()
            .filter(|p| p.is_finite() && *p > 0.0)
            .ok_or_else(|| format!("--peak-rps `{v}` is not a positive number"))?,
        // Default: the busiest second saturates the components.
        None => (0..trace.duration_s())
            .map(|t| f64::from(trace.offered_at(t)))
            .fold(1.0, f64::max),
    };
    let series = trace.utilization_series(interval_s, peak_rps);

    let mut base = UtilizationTrace::new("machine1", interval_s as f64, components.clone())
        .map_err(|e| e.to_string())?;
    let mut row = vec![0.0; components.len()];
    for u in &series {
        row.fill(*u);
        base.push_row(&row).map_err(|e| e.to_string())?;
    }
    let traces: Vec<UtilizationTrace> = std::iter::once(base.clone())
        .chain((1..machines).map(|i| base.replicate_for(format!("machine{}", i + 1))))
        .collect();
    let stats = write_events(out, &traces)?;
    eprintln!(
        "converted {input} ({} requests over {} s, peak {peak_rps:.1} rps)",
        trace.total_requests(),
        trace.duration_s()
    );
    report(out, &stats, traces.len());
    Ok(())
}

fn info(args: &Args) -> Result<(), String> {
    let [input] = args.positional() else {
        return Err("info takes exactly one FLEET.events argument".into());
    };
    let bytes = std::fs::read(input).map_err(|e| format!("cannot read `{input}`: {e}"))?;
    let (header, header_len) =
        EventsHeader::parse(&bytes).map_err(|e| format!("`{input}`: {e}"))?;
    println!("file:        {input}");
    println!("format:      mercury-events-v{}", events::VERSION);
    println!("interval:    {} s", header.interval_s);
    println!("machines:    {}", header.machines.len());
    println!("components:  {}", header.components.join(", "));
    println!("ticks:       {}", header.ticks);
    println!(
        "size:        {} bytes ({} header + {} records)",
        bytes.len(),
        header_len,
        bytes.len() - header_len
    );
    let cells = header.cells() as u64;
    let raw = header.ticks * cells * 2;
    if raw > 0 {
        println!(
            "compression: {:.2}x vs uncompressed frames",
            raw as f64 / (bytes.len() - header_len).max(1) as f64
        );
    }
    Ok(())
}
