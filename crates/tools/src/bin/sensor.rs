//! `mercury-sensor` — read emulated thermal sensors from the shell.
//!
//! ```text
//! usage: mercury-sensor --solver HOST:PORT --node NODE [--machine NAME]
//!                       [--watch SECONDS] [--list]
//!
//!   --node     node to read (e.g. cpu, cpu_air, disk_shell)
//!   --machine  machine name on a cluster solver (default: the only one)
//!   --watch    keep reading every N seconds until interrupted
//!   --list     print the solver's node names and exit
//! ```

use mercury::net::proto::{self, Reply, Request};
use mercury::net::Sensor;
use mercury_tools::{resolve, Args};
use std::net::UdpSocket;
use std::time::Duration;

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("mercury-sensor: {message}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn list_nodes(solver: std::net::SocketAddr, machine: &str) -> Result<(), String> {
    let socket = UdpSocket::bind("0.0.0.0:0").map_err(|e| e.to_string())?;
    socket.connect(solver).map_err(|e| e.to_string())?;
    socket
        .set_read_timeout(Some(Duration::from_secs(1)))
        .map_err(|e| e.to_string())?;
    let request = Request::ListNodes {
        machine: machine.to_string(),
    };
    socket
        .send(&proto::encode_request(&request))
        .map_err(|e| e.to_string())?;
    let mut buf = [0u8; proto::MAX_DATAGRAM];
    let n = socket
        .recv(&mut buf)
        .map_err(|e| format!("no reply from the solver: {e}"))?;
    match proto::decode_reply(&buf[..n]).map_err(|e| e.to_string())? {
        Reply::Nodes { names } => {
            for name in names {
                println!("{name}");
            }
            Ok(())
        }
        Reply::Error { message } => Err(message),
        other => Err(format!("unexpected reply {other:?}")),
    }
}

fn run() -> Result<(), String> {
    let args = Args::parse(std::env::args().skip(1));
    let solver = resolve(args.require("solver")?)?;
    let machine = args.value("machine").unwrap_or("");

    if args.has("list") {
        return list_nodes(solver, machine);
    }

    let node = args.require("node")?;
    let sensor = Sensor::open(solver, machine, node).map_err(|e| e.to_string())?;
    match args.value("watch") {
        None => {
            let (temp, time) = sensor.read_with_time().map_err(|e| e.to_string())?;
            println!("{:.3}  # {node} at emulated t={time:.0}s", temp.0);
        }
        Some(period) => {
            let period: f64 = period
                .parse()
                .map_err(|_| "--watch wants seconds".to_string())?;
            loop {
                let (temp, time) = sensor.read_with_time().map_err(|e| e.to_string())?;
                println!("t={time:>8.0}s  {node} = {temp}");
                std::thread::sleep(Duration::from_secs_f64(period.max(0.05)));
            }
        }
    }
    sensor.close();
    Ok(())
}
