//! # mercury-freon — facade crate
//!
//! One-stop re-export of the Mercury & Freon reproduction workspace
//! (*"Mercury and Freon: Temperature Emulation and Management for Server
//! Systems"*, Heath et al., ASPLOS 2006):
//!
//! * [`mercury`] — the temperature-emulation suite (models, solver,
//!   fiddle, traces, UDP sensor interface);
//! * [`graphdl`] — the dot-like input language for heat-/air-flow graphs;
//! * [`cluster`] — the simulated web-server cluster and LVS-style load
//!   balancer substrate;
//! * [`workload`] — synthetic diurnal web workloads;
//! * [`freon`] — the thermal-emergency manager (base policy, Freon-EC,
//!   and the traditional red-line baseline);
//! * [`reference`](mod@reference) — high-fidelity reference models (the "real machine"
//!   plant and the CFD stand-in) plus calibration.
//!
//! See the workspace `README.md` for a tour and `examples/` for runnable
//! entry points (`cargo run --example quickstart`).

#![forbid(unsafe_code)]

pub use cluster_sim as cluster;
pub use freon;
pub use mercury;
pub use mercury_graphdl as graphdl;
pub use reference_models as reference;
pub use workload_gen as workload;
