//! Integration tests of the §3 validation pipeline: plant measurement →
//! calibration → unseen-benchmark validation, and the CFD comparison.

use mercury_freon::mercury::presets::{self, nodes};
use mercury_freon::mercury::solver::{Solver, SolverConfig};
use mercury_freon::mercury::trace::run_offline;
use mercury_freon::reference::fluent2d::{CaseConfig, Component, Fluent2d};
use mercury_freon::reference::microbench::{combined_benchmark, cpu_staircase};
use mercury_freon::reference::{CalibrationProblem, Param, Plant};

fn smooth(series: &[f64], w: usize) -> Vec<f64> {
    let half = w / 2;
    (0..series.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(series.len());
            series[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

/// A compressed Figure 5+7 pipeline: calibrate on a staircase, validate
/// on the combined benchmark with no further tuning, trend-match within
/// the paper's 1 °C.
#[test]
fn calibrated_mercury_tracks_the_plant_on_unseen_load() {
    // Calibration phase.
    let staircase = cpu_staircase(1600, 200);
    let mut plant = Plant::pentium3_testbed(11);
    let measured = plant
        .record_sensors(&staircase)
        .unwrap()
        .series("cpu_air")
        .unwrap();
    let base = presets::validation_machine();
    let outcome = CalibrationProblem::new(&base, &staircase)
        .param(Param::HeatK {
            a: nodes::CPU.to_string(),
            b: nodes::CPU_AIR.to_string(),
            min: 0.2,
            max: 3.0,
        })
        .param(Param::AirSplit {
            from: nodes::PS_AIR_DOWN.to_string(),
            to_a: nodes::CPU_AIR.to_string(),
            to_b: nodes::VOID_AIR.to_string(),
            min: 0.05,
            max: 0.5,
        })
        .target(nodes::CPU_AIR, measured)
        .calibrate(5);
    assert!(
        outcome.final_rmse <= outcome.initial_rmse,
        "calibration made things worse: {} -> {}",
        outcome.initial_rmse,
        outcome.final_rmse
    );

    // Validation phase: an unseen, rapidly varying benchmark.
    let benchmark = combined_benchmark(1500, 3);
    let mut plant = Plant::pentium3_testbed(12);
    let plant_series = plant
        .record_sensors(&benchmark)
        .unwrap()
        .series("cpu_air")
        .unwrap();
    let emulated = run_offline(&outcome.model, &benchmark, SolverConfig::default(), None)
        .unwrap()
        .series(nodes::CPU_AIR)
        .unwrap();
    let sp = smooth(&plant_series, 61);
    let se = smooth(&emulated, 61);
    let max_delta = sp[120..]
        .iter()
        .zip(&se[120..])
        .map(|(a, b)| (a - b).abs())
        .fold(0.0_f64, f64::max);
    assert!(max_delta < 1.5, "validation trend error {max_delta:.2} °C");
}

/// A compressed §3.2: the CFD stand-in and Mercury agree on steady state
/// after single-point calibration, across a power sweep.
#[test]
fn mercury_matches_the_cfd_stand_in_after_calibration() {
    let config = CaseConfig::coarse();
    let solve = |cpu_w: f64| {
        let mut case = Fluent2d::server_case(config.clone());
        case.set_power(Component::Cpu, cpu_w);
        case.set_power(Component::Disk, 11.5);
        case.set_power(Component::Psu, 40.0);
        case.solve(1e-6, 400_000).expect("coarse case converges")
    };
    // Two calibration solves give the affine response of the CPU channel.
    let low = solve(12.0);
    let high = solve(26.0);
    let rise_low = low.air_near(Component::Cpu) - config.inlet_c;
    let rise_high = high.air_near(Component::Cpu) - config.inlet_c;
    let slope = (rise_high - rise_low) / 14.0;
    let k = 14.0
        / ((high.component_temp(Component::Cpu) - high.air_near(Component::Cpu))
            - (low.component_temp(Component::Cpu) - low.air_near(Component::Cpu)));
    assert!(slope > 0.0 && k > 0.0);

    // Check an extrapolated point: cpu at 31 W.
    let truth = solve(31.0);
    let preheat = rise_low - slope * 12.0;
    let predicted = config.inlet_c + preheat + slope * 31.0 + 31.0 / k;
    let actual = truth.component_temp(Component::Cpu);
    assert!(
        (predicted - actual).abs() < 0.5,
        "affine Mercury model predicts {predicted:.2}, CFD says {actual:.2}"
    );
}

/// The networked path end to end: service, monitord, sensor, fiddle.
#[test]
fn networked_suite_round_trip() {
    use mercury_freon::mercury::fiddle::FiddleCommand;
    use mercury_freon::mercury::net::{
        send_fiddle, FnSource, Monitord, Sensor, ServiceConfig, SolverService,
    };
    use std::time::Duration;

    let service = SolverService::spawn_machine(
        &presets::validation_machine_named("m1"),
        ServiceConfig::fast(),
    )
    .unwrap();
    let daemon = Monitord::spawn(
        "m1",
        FnSource(|| vec![("cpu".to_string(), 1.0)]),
        service.local_addr(),
        Duration::from_millis(2),
    )
    .unwrap();
    let sensor = Sensor::open(service.local_addr(), "", "cpu").unwrap();
    let first = sensor.read().unwrap();
    std::thread::sleep(Duration::from_millis(500));
    let later = sensor.read().unwrap();
    assert!(
        later.0 > first.0 + 1.0,
        "cpu did not heat: {first} -> {later}"
    );

    send_fiddle(
        service.local_addr(),
        &FiddleCommand::Temperature {
            machine: "m1".into(),
            node: "inlet".into(),
            celsius: 38.6,
        },
    )
    .unwrap();
    std::thread::sleep(Duration::from_millis(300));
    let hot = sensor.read().unwrap();
    assert!(hot.0 > later.0, "emergency had no effect: {later} -> {hot}");

    sensor.close();
    daemon.shutdown();
    service.shutdown();
}

/// Mercury's headline speed claim, qualitatively: emulating a whole
/// ten-minute thermal transient costs less than a *single* steady-state
/// solve of even the coarse CFD case. (The paper's comparison is starker
/// still — hours of Fluent vs native-speed execution — but the ordering
/// is the falsifiable part.)
#[test]
fn mercury_is_much_faster_than_the_cfd_stand_in() {
    use std::time::Instant;
    let config = CaseConfig::coarse();
    let mut case = Fluent2d::server_case(config);
    case.set_power(Component::Cpu, 19.0);
    case.set_power(Component::Disk, 11.5);
    case.set_power(Component::Psu, 40.0);
    let started = Instant::now();
    let _ = case.solve(1e-6, 400_000).unwrap();
    let cfd_time = started.elapsed();

    let model = presets::validation_machine();
    let mut solver = Solver::new(&model, SolverConfig::default()).unwrap();
    solver.set_utilization(nodes::CPU, 0.6).unwrap();
    let started = Instant::now();
    solver.step_for(600); // ten emulated minutes
    let mercury_time = started.elapsed();

    assert!(
        mercury_time < cfd_time,
        "mercury's 600-tick transient ({mercury_time:?}) should beat one CFD solve ({cfd_time:?})"
    );
}
