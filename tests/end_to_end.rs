//! Integration tests spanning the whole workspace: graph language →
//! thermal model → cluster simulation → Freon policies → results.

use mercury_freon::cluster::{ClusterSim, ServerConfig};
use mercury_freon::freon::{
    EcConfig, Experiment, ExperimentConfig, FreonConfig, FreonEcPolicy, FreonPolicy, NoPolicy,
    TraditionalPolicy,
};
use mercury_freon::mercury::fiddle::FiddleScript;
use mercury_freon::mercury::presets;
use mercury_freon::workload::{DiurnalProfile, RequestMix, WorkloadGenerator, WorkloadTrace};

fn short_trace(duration: u64, peak_util: f64) -> WorkloadTrace {
    let mix = RequestMix::paper();
    let peak = mix.rps_for_cpu_utilization(peak_util, 4, 1000.0);
    let profile = DiurnalProfile::new(duration as f64, peak * 0.15, peak)
        .with_peak_at(0.7)
        .with_plateau(0.3);
    WorkloadGenerator::new(profile, mix, 42).generate(duration)
}

fn emergency_script() -> FiddleScript {
    FiddleScript::parse(
        "sleep 300\nfiddle machine1 temperature inlet 38.6\nfiddle machine3 temperature inlet 35.6\n",
    )
    .expect("script parses")
}

/// The whole §5 loop, compressed: emergencies hit, Freon throttles, no
/// red lines, nothing dropped.
#[test]
fn freon_contains_emergencies_without_drops() {
    let model = presets::freon_cluster(4);
    let sim = ClusterSim::homogeneous(4, ServerConfig::default());
    let trace = short_trace(1500, 0.7);
    let script = emergency_script();
    let config = ExperimentConfig {
        duration_s: 1500,
        ..Default::default()
    };
    let mut policy = FreonPolicy::new(FreonConfig::paper(), 4);
    let log = Experiment::new(&model, sim, &trace, Some(&script), config)
        .unwrap()
        .run(&mut policy)
        .unwrap();

    assert_eq!(log.total_dropped(), 0, "freon dropped requests");
    assert_eq!(policy.red_line_shutdowns(), 0, "freon lost a server");
    let tr = FreonConfig::paper().thresholds_for("cpu").unwrap().red_line;
    for server in 0..4 {
        assert!(
            log.max_cpu_temp(server) < tr,
            "server {server} reached {:.1} (red line {tr})",
            log.max_cpu_temp(server)
        );
    }
}

/// Freon beats the traditional baseline on the same trace: fewer drops,
/// no lost servers.
#[test]
fn freon_dominates_the_traditional_baseline() {
    let run = |policy: &mut dyn mercury_freon::freon::ThermalPolicy| {
        let model = presets::freon_cluster(4);
        let sim = ClusterSim::homogeneous(4, ServerConfig::default());
        let trace = short_trace(2000, 0.7);
        let script = emergency_script();
        let config = ExperimentConfig {
            duration_s: 2000,
            ..Default::default()
        };
        Experiment::new(&model, sim, &trace, Some(&script), config)
            .unwrap()
            .run(policy)
            .unwrap()
    };
    let mut freon = FreonPolicy::new(FreonConfig::paper(), 4);
    let freon_log = run(&mut freon);
    let mut traditional = TraditionalPolicy::new(FreonConfig::paper(), 4);
    let trad_log = run(&mut traditional);

    assert_eq!(freon_log.total_dropped(), 0);
    assert!(
        trad_log.total_dropped() > freon_log.total_dropped(),
        "traditional dropped {} vs freon {}",
        trad_log.total_dropped(),
        freon_log.total_dropped()
    );
    assert!(
        traditional.shutdown_times().iter().any(Option::is_some),
        "the baseline never red-lined — the scenario is too mild to compare"
    );
}

/// Freon-EC conserves energy in the valley and still serves the trace.
#[test]
fn freon_ec_shrinks_and_grows_the_configuration() {
    let model = presets::freon_cluster(4);
    let sim = ClusterSim::homogeneous(4, ServerConfig::default());
    let trace = short_trace(1500, 0.7);
    let config = ExperimentConfig {
        duration_s: 1500,
        ..Default::default()
    };
    let mut policy = FreonEcPolicy::new(FreonConfig::paper(), EcConfig::paper_four_servers());
    let log = Experiment::new(&model, sim, &trace, None, config)
        .unwrap()
        .run(&mut policy)
        .unwrap();

    let min_active = log.rows().iter().map(|r| r.active_servers).min().unwrap();
    let max_active = log.rows().iter().map(|r| r.active_servers).max().unwrap();
    assert_eq!(min_active, 1, "never shrank to one server");
    assert_eq!(max_active, 4, "never grew back to four");
    assert!(policy.power_offs() >= 3);
    assert!(policy.power_ons() >= 1);
    assert!(log.drop_rate() < 0.01, "drop rate {:.3}", log.drop_rate());
    // Energy saved: mean active servers well below the static 4.
    assert!(
        log.mean_active_servers() < 3.6,
        "mean {}",
        log.mean_active_servers()
    );
}

/// Without any policy, the emergencies drive the affected CPUs past the
/// red line — proof the scenario actually *is* an emergency.
#[test]
fn the_emergencies_are_real_without_a_policy() {
    let model = presets::freon_cluster(4);
    let sim = ClusterSim::homogeneous(4, ServerConfig::default());
    let trace = short_trace(2000, 0.7);
    let script = emergency_script();
    let config = ExperimentConfig {
        duration_s: 2000,
        ..Default::default()
    };
    let log = Experiment::new(&model, sim, &trace, Some(&script), config)
        .unwrap()
        .run(&mut NoPolicy)
        .unwrap();
    let tr = FreonConfig::paper().thresholds_for("cpu").unwrap().red_line;
    assert!(
        log.max_cpu_temp(0) > tr,
        "machine1 only reached {:.1}",
        log.max_cpu_temp(0)
    );
    assert!(log.max_cpu_temp(1) < tr, "machine2 should stay safe");
}

/// The assets file, the graph language, and the built-in presets all
/// agree.
#[test]
fn assets_match_presets_through_the_graph_language() {
    let source = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/assets/server.mdl"))
        .expect("assets/server.mdl exists");
    let library = mercury_freon::graphdl::parse(&source).expect("assets parse");
    let machine = library.machine("server").expect("machine `server` defined");
    assert_eq!(machine, &presets::validation_machine());
    let room = library.cluster("room").expect("cluster `room` defined");
    assert_eq!(room.machines().len(), 4);
}

/// Deterministic replay: the same seed and scenario produce bit-identical
/// logs — Mercury's core promise of repeatable experiments.
#[test]
fn experiments_are_exactly_repeatable() {
    let run = || {
        let model = presets::freon_cluster(2);
        let sim = ClusterSim::homogeneous(2, ServerConfig::default());
        let mix = RequestMix::paper();
        let profile = DiurnalProfile::new(400.0, 20.0, 120.0);
        let trace = WorkloadGenerator::new(profile, mix, 7).generate(400);
        let config = ExperimentConfig {
            duration_s: 400,
            ..Default::default()
        };
        let mut policy = FreonPolicy::new(FreonConfig::paper(), 2);
        Experiment::new(&model, sim, &trace, None, config)
            .unwrap()
            .run(&mut policy)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}
