//! Property-based tests over the core physical invariants, using
//! randomly generated models, workloads, and command sequences.

use mercury_freon::cluster::{ClusterSim, Request, RequestKind, ServerConfig};
use mercury_freon::mercury::model::MachineModel;
use mercury_freon::mercury::presets::{self, nodes};
use mercury_freon::mercury::solver::{Solver, SolverConfig};
use mercury_freon::mercury::units::Celsius;
use mercury_freon::workload::{DiurnalProfile, RequestMix, WorkloadGenerator};
use proptest::prelude::*;

/// A random closed two-body system (no air, no boundary).
fn closed_pair() -> impl Strategy<Value = (MachineModel, f64, f64)> {
    (
        0.05f64..5.0,   // mass a
        0.05f64..5.0,   // mass b
        0.1f64..20.0,   // k
        -20.0f64..80.0, // Ta
        -20.0f64..80.0, // Tb
    )
        .prop_map(|(ma, mb, k, ta, tb)| {
            let mut b = MachineModel::builder("closed");
            b.component("a")
                .mass_kg(ma)
                .specific_heat(900.0)
                .constant_power(0.0);
            b.component("b")
                .mass_kg(mb)
                .specific_heat(900.0)
                .constant_power(0.0);
            b.heat_edge("a", "b", k).expect("valid edge");
            (b.build().expect("valid model"), ta, tb)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation of energy: a closed system's total heat content never
    /// changes, whatever the constants.
    #[test]
    fn closed_systems_conserve_energy((model, ta, tb) in closed_pair(), ticks in 1usize..500) {
        let mut solver = Solver::new(&model, SolverConfig::default()).unwrap();
        solver.set_temperature("a", Celsius(ta)).unwrap();
        solver.set_temperature("b", Celsius(tb)).unwrap();
        let before = solver.heat_content();
        solver.step_for(ticks);
        let after = solver.heat_content();
        prop_assert!(
            (before.0 - after.0).abs() < 1e-6 * before.0.abs().max(1.0),
            "energy drifted: {} -> {}", before.0, after.0
        );
    }

    /// Second law: temperatures in a closed pair approach each other
    /// monotonically and never cross.
    #[test]
    fn closed_pairs_equalize_without_crossing((model, ta, tb) in closed_pair()) {
        let mut solver = Solver::new(&model, SolverConfig::default()).unwrap();
        solver.set_temperature("a", Celsius(ta)).unwrap();
        solver.set_temperature("b", Celsius(tb)).unwrap();
        let (hot, cold) = if ta >= tb { ("a", "b") } else { ("b", "a") };
        let mut prev_hot = solver.temperature(hot).unwrap().0;
        let mut prev_cold = solver.temperature(cold).unwrap().0;
        for _ in 0..200 {
            solver.step();
            let h = solver.temperature(hot).unwrap().0;
            let c = solver.temperature(cold).unwrap().0;
            prop_assert!(h <= prev_hot + 1e-9);
            prop_assert!(c >= prev_cold - 1e-9);
            prop_assert!(h >= c - 1e-9, "temperatures crossed");
            prev_hot = h;
            prev_cold = c;
        }
    }

    /// On the Table 1 machine, every node's temperature stays within
    /// physical bounds for any utilization schedule: never below the
    /// inlet (minus epsilon), never above a generous ceiling.
    #[test]
    fn table1_temperatures_stay_bounded(
        schedule in proptest::collection::vec((0.0f64..=1.0, 0.0f64..=1.0), 1..40),
        hold in 5usize..60,
    ) {
        let model = presets::validation_machine();
        let mut solver = Solver::new(&model, SolverConfig::default()).unwrap();
        for (cpu, disk) in schedule {
            solver.set_utilization(nodes::CPU, cpu).unwrap();
            solver.set_utilization(nodes::DISK_PLATTERS, disk).unwrap();
            solver.step_for(hold);
            for (name, temp) in solver.temperatures() {
                prop_assert!(
                    temp.0 >= 21.6 - 1e-6,
                    "{name} fell below the inlet: {temp}"
                );
                prop_assert!(temp.0 < 120.0, "{name} ran away: {temp}");
            }
        }
    }

    /// More utilization never cools the CPU: steady-state monotonicity.
    #[test]
    fn steady_state_is_monotone_in_utilization(u1 in 0.0f64..=1.0, u2 in 0.0f64..=1.0) {
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        let model = presets::validation_machine();
        let mut a = Solver::new(&model, SolverConfig::default()).unwrap();
        let mut b = Solver::new(&model, SolverConfig::default()).unwrap();
        a.set_utilization(nodes::CPU, lo).unwrap();
        b.set_utilization(nodes::CPU, hi).unwrap();
        a.run_to_steady_state(1e-5, 50_000);
        b.run_to_steady_state(1e-5, 50_000);
        let ta = a.temperature(nodes::CPU).unwrap().0;
        let tb = b.temperature(nodes::CPU).unwrap().0;
        prop_assert!(tb >= ta - 0.05, "u={lo} -> {ta}, u={hi} -> {tb}");
    }

    /// The cluster simulation conserves requests: offered = routed +
    /// dropped, and completions never exceed admissions.
    #[test]
    fn cluster_conserves_requests(
        arrivals_per_tick in proptest::collection::vec(0usize..120, 1..30),
        servers in 1usize..5,
        cap in proptest::option::of(1usize..40),
    ) {
        let mut sim = ClusterSim::homogeneous(servers, ServerConfig::default());
        if let Some(cap) = cap {
            for i in 0..servers {
                sim.lvs_mut().set_connection_cap(i, Some(cap));
            }
        }
        let mut routed_total = 0usize;
        let mut completed_total = 0usize;
        for n in arrivals_per_tick {
            let arrivals: Vec<Request> = (0..n)
                .map(|i| if i % 3 == 0 { Request::dynamic() } else { Request::static_file() })
                .collect();
            let stats = sim.tick(arrivals);
            prop_assert_eq!(stats.offered, stats.routed + stats.dropped);
            routed_total += stats.routed;
            completed_total += stats.completed;
            prop_assert!(completed_total <= routed_total);
        }
        let in_flight: usize = (0..servers).map(|i| sim.server(i).connections()).sum();
        prop_assert_eq!(routed_total, completed_total + in_flight);
    }

    /// Workload generation is schedule-stable: a trace's totals match a
    /// second generation with the same seed, and the dynamic share tracks
    /// the configured mix for any mix fraction.
    #[test]
    fn workload_mix_fraction_is_respected(dynamic in 0.0f64..=1.0, seed in 0u64..1000) {
        let mix = RequestMix { dynamic_fraction: dynamic, ..RequestMix::paper() };
        let profile = DiurnalProfile::new(300.0, 50.0, 150.0);
        let trace = WorkloadGenerator::new(profile, mix, seed).generate(300);
        let total = trace.total_requests();
        prop_assume!(total > 500);
        let share = trace.dynamic_fraction();
        prop_assert!((share - dynamic).abs() < 0.08, "asked {dynamic}, got {share}");
        // Replay materializes the right kinds.
        let sample = trace.arrivals_at(150);
        for request in sample {
            let kind_ok = matches!(request.kind(), RequestKind::Static | RequestKind::Dynamic);
            prop_assert!(kind_ok);
        }
    }
}
