//! Loading models from Mercury's description language and drawing them.
//!
//! The paper specifies its input graphs in a modified `dot`; this example
//! parses `assets/server.mdl` (Table 1 + the Figure 1c room), verifies it
//! against the built-in preset, runs it, and emits standard Graphviz for
//! visualization — "the language enables freely available programs to
//! draw the graphs".
//!
//! Run with: `cargo run --example graphdl_tour`

use mercury_freon::graphdl;
use mercury_freon::mercury::solver::{ClusterSolver, Solver, SolverConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = std::fs::read_to_string("assets/server.mdl")?;
    let library = graphdl::parse(&source)?;

    let machine = library
        .machine("server")
        .ok_or("assets define machine `server`")?;
    println!(
        "parsed machine `{}`: {} nodes, {} heat edges, {} air edges",
        machine.name(),
        machine.nodes().len(),
        machine.heat_edges().len(),
        machine.air_edges().len()
    );

    // The file encodes exactly the built-in Table 1 preset.
    let preset = mercury_freon::mercury::presets::validation_machine();
    assert_eq!(
        machine, &preset,
        "assets/server.mdl matches presets::validation_machine()"
    );
    println!("matches presets::validation_machine() exactly");

    // Run the parsed machine for ten minutes at full CPU load.
    let mut solver = Solver::new(machine, SolverConfig::default())?;
    solver.set_utilization("cpu", 1.0)?;
    solver.step_for(600);
    println!(
        "after 600 s at 100% CPU: cpu = {}",
        solver.temperature("cpu")?
    );

    // And the parsed room.
    let room = library
        .cluster("room")
        .ok_or("assets define cluster `room`")?;
    let mut cluster = ClusterSolver::new(room, SolverConfig::default())?;
    cluster.set_utilization("machine2", "cpu", 0.9)?;
    cluster.step_for(300);
    println!(
        "room after 300 s: machine2 cpu = {}, cluster exhaust = {}",
        cluster.temperature("machine2", "cpu")?,
        cluster.junction_temperature("cluster_exhaust")?
    );

    // Emit Graphviz for the three Figure 1 graphs.
    let out = std::path::Path::new("results");
    std::fs::create_dir_all(out)?;
    std::fs::write(
        out.join("server_heat.dot"),
        graphdl::dot::heat_flow_to_dot(machine),
    )?;
    std::fs::write(
        out.join("server_air.dot"),
        graphdl::dot::air_flow_to_dot(machine),
    )?;
    std::fs::write(out.join("room.dot"), graphdl::dot::cluster_to_dot(room))?;
    println!("wrote results/server_heat.dot, results/server_air.dot, results/room.dot");
    println!("render with e.g.: dot -Tpng results/server_air.dot -o air.png");
    Ok(())
}
