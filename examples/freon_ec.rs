//! Freon-EC: energy conservation plus thermal management (§4.2 / Figure
//! 12). Watch the active configuration shrink to one server in the load
//! valley, grow back for the peak, and route around the emergencies
//! using room regions.
//!
//! Run with: `cargo run --release --example freon_ec`

use mercury_freon::cluster::{ClusterSim, ServerConfig};
use mercury_freon::freon::{EcConfig, Experiment, ExperimentConfig, FreonConfig, FreonEcPolicy};
use mercury_freon::mercury::fiddle::FiddleScript;
use mercury_freon::mercury::presets;
use mercury_freon::workload::{DiurnalProfile, RequestMix, WorkloadGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = presets::freon_cluster(4);
    let sim = ClusterSim::homogeneous(4, ServerConfig::default());

    let mix = RequestMix::paper();
    let peak = mix.rps_for_cpu_utilization(0.7, 4, 1000.0);
    let profile = DiurnalProfile::new(2000.0, peak * 0.15, peak)
        .with_peak_at(0.70)
        .with_plateau(0.3);
    let trace = WorkloadGenerator::new(profile, mix, 42).generate(2000);

    let script = FiddleScript::parse(
        "sleep 480\nfiddle machine1 temperature inlet 38.6\nfiddle machine3 temperature inlet 35.6\n",
    )?;

    // Regions as in the paper: {machine1, machine3} near one AC,
    // {machine2, machine4} near the other — the emergencies hit region 0.
    let ec = EcConfig::paper_four_servers();
    let mut policy = FreonEcPolicy::new(FreonConfig::paper(), ec);

    let config = ExperimentConfig {
        duration_s: 2000,
        ..Default::default()
    };
    let log = Experiment::new(&model, sim, &trace, Some(&script), config)?.run(&mut policy)?;

    println!("time   active  m1_temp m2_temp m3_temp m4_temp  dropped");
    for row in log.rows().iter().filter(|r| r.time_s % 100 == 99) {
        println!(
            "{:>4}   {:>5}   {:>6.1}  {:>6.1}  {:>6.1}  {:>6.1}  {:>6}",
            row.time_s + 1,
            row.active_servers,
            row.cpu_temp[0],
            row.cpu_temp[1],
            row.cpu_temp[2],
            row.cpu_temp[3],
            row.dropped,
        );
    }
    println!(
        "\nsummary: power-offs {}, power-ons {}, mean active servers {:.2}, dropped {:.2}%",
        policy.power_offs(),
        policy.power_ons(),
        log.mean_active_servers(),
        log.drop_rate() * 100.0
    );
    println!(
        "region emergency counts at the end: {:?}",
        policy.region_emergencies()
    );
    Ok(())
}
