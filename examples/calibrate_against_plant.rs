//! The paper's §3.1 calibration phase, end to end: measure the "real
//! machine" (the high-fidelity plant with noisy sensors) under a CPU
//! staircase, tune Mercury's constants by coordinate descent, and report
//! the before/after error.
//!
//! Run with: `cargo run --release --example calibrate_against_plant`

use mercury_freon::mercury::presets::{self, nodes};
use mercury_freon::mercury::solver::SolverConfig;
use mercury_freon::mercury::trace::run_offline;
use mercury_freon::reference::microbench::cpu_staircase;
use mercury_freon::reference::{CalibrationProblem, Param, Plant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. "Measure" the real machine: a 2 000-second CPU staircase, read
    //    through the ±1.5 °C thermometer on the heat sink.
    let trace = cpu_staircase(2000, 250);
    let mut plant = Plant::pentium3_testbed(7);
    let measurements = plant.record_sensors(&trace)?;
    let measured = measurements.series("cpu_air")?;
    println!(
        "recorded {} seconds from the plant's CPU-air thermometer",
        measured.len()
    );

    // 2. Calibrate Mercury's CPU-side constants against those readings.
    let base = presets::validation_machine();
    let problem = CalibrationProblem::new(&base, &trace)
        .param(Param::HeatK {
            a: nodes::CPU.to_string(),
            b: nodes::CPU_AIR.to_string(),
            min: 0.2,
            max: 3.0,
        })
        .param(Param::AirSplit {
            from: nodes::PS_AIR_DOWN.to_string(),
            to_a: nodes::CPU_AIR.to_string(),
            to_b: nodes::VOID_AIR.to_string(),
            min: 0.05,
            max: 0.5,
        })
        .target(nodes::CPU_AIR, measured.clone());
    let outcome = problem.calibrate(6);
    println!(
        "calibration: RMSE {:.2} °C -> {:.2} °C in {} rounds",
        outcome.initial_rmse, outcome.final_rmse, outcome.rounds
    );
    println!(
        "fitted values: k(cpu--cpu_air) = {:.3} W/K, split(ps_down->cpu_air) = {:.3}",
        outcome.values[0], outcome.values[1]
    );

    // 3. Show a few emulated-vs-measured points from the calibrated model.
    let emulated = run_offline(&outcome.model, &trace, SolverConfig::default(), None)?
        .series(nodes::CPU_AIR)?;
    println!("\ntime   measured  emulated");
    for t in (200..2000).step_by(300) {
        println!("{t:>4}   {:>7.1}   {:>7.1}", measured[t], emulated[t]);
    }
    println!("\n(the paper's hand calibration of the same constants took 'less than an hour')");
    Ok(())
}
