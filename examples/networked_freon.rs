//! The complete Figure 9 deployment over real sockets: Mercury's solver
//! service emulating a 4-machine room, the cluster simulation serving a
//! live workload, one `monitord` and one `tempd` per server, sensors
//! reading temperatures over UDP, and `admd` at the balancer applying
//! Freon's adjustments — every arrow in the paper's architecture diagram
//! is a datagram here.
//!
//! Wall-clock compression: one emulated second ≈ 2 ms, so the 2000 s
//! §5 scenario plays in a few seconds.
//!
//! Run with: `cargo run --release --example networked_freon`

use mercury_freon::cluster::{ClusterSim, ServerConfig};
use mercury_freon::freon::net::{AdmdService, TempdDaemon};
use mercury_freon::freon::FreonConfig;
use mercury_freon::mercury::fiddle::FiddleCommand;
use mercury_freon::mercury::net::{
    send_fiddle, FnSource, Monitord, Sensor, ServiceConfig, SolverService,
};
use mercury_freon::mercury::presets;
use mercury_freon::workload::{DiurnalProfile, RequestMix, WorkloadGenerator};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Wall milliseconds per emulated second.
const MS_PER_SECOND: u64 = 2;
/// Emulated seconds to run.
const DURATION_S: u64 = 2000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Mercury: the thermal side, served over UDP -----------------------
    let room = presets::freon_cluster(4);
    let solver = SolverService::spawn_cluster(
        &room,
        ServiceConfig {
            tick_wall: Duration::from_millis(MS_PER_SECOND),
            ..ServiceConfig::default()
        },
    )?;
    println!("mercury solver service on {}", solver.local_addr());

    // --- The cluster being managed ----------------------------------------
    let sim = Arc::new(Mutex::new(ClusterSim::homogeneous(
        4,
        ServerConfig::default(),
    )));

    // --- admd at the balancer ----------------------------------------------
    let compression = MS_PER_SECOND as f64 / 1000.0;
    let config = FreonConfig::paper();
    let admd = AdmdService::spawn(Arc::clone(&sim), config.clone(), compression)?;
    println!("freon admd on {}", admd.local_addr());

    // --- One monitord + one tempd per server -------------------------------
    let mut daemons = Vec::new();
    for i in 0..4 {
        let machine = format!("machine{}", i + 1);
        // monitord: samples the simulated server, reports to Mercury.
        let sim_for_monitor = Arc::clone(&sim);
        let monitord = Monitord::spawn(
            machine.clone(),
            FnSource(move || {
                let sim = sim_for_monitor.lock();
                vec![
                    ("cpu".to_string(), sim.server(i).cpu_utilization()),
                    (
                        "disk_platters".to_string(),
                        sim.server(i).disk_utilization(),
                    ),
                ]
            }),
            solver.local_addr(),
            Duration::from_millis(MS_PER_SECOND),
        )?;
        // tempd: reads Mercury sensors over UDP, reports to admd.
        let cpu_sensor = Sensor::open(solver.local_addr(), machine.clone(), "cpu")?;
        let disk_sensor = Sensor::open(solver.local_addr(), machine.clone(), "disk_platters")?;
        let tempd = TempdDaemon::spawn(
            i,
            config.clone(),
            admd.local_addr(),
            compression,
            move || {
                let mut temps = Vec::with_capacity(2);
                if let Ok(t) = cpu_sensor.read() {
                    temps.push(("cpu".to_string(), t.0));
                }
                if let Ok(t) = disk_sensor.read() {
                    temps.push(("disk_platters".to_string(), t.0));
                }
                temps
            },
        )?;
        daemons.push((monitord, tempd));
    }

    // --- The workload driver, in this thread --------------------------------
    let mix = RequestMix::paper();
    let peak = mix.rps_for_cpu_utilization(0.7, 4, 1000.0);
    let profile = DiurnalProfile::new(DURATION_S as f64, peak * 0.15, peak)
        .with_peak_at(0.70)
        .with_plateau(0.3);
    let mut generator = WorkloadGenerator::new(profile, mix, 42);

    let stop = Arc::new(AtomicBool::new(false));
    println!(
        "\nrunning {DURATION_S} emulated seconds ({} ms wall each)...",
        MS_PER_SECOND
    );
    let mut emergency_sent = false;
    for t in 0..DURATION_S {
        let arrivals = generator.arrivals_at(t);
        sim.lock().tick(arrivals);
        if t == 480 && !emergency_sent {
            // The §5 emergencies, injected over the wire with fiddle.
            for (machine, celsius) in [("machine1", 38.6), ("machine3", 35.6)] {
                send_fiddle(
                    solver.local_addr(),
                    &FiddleCommand::Temperature {
                        machine: machine.into(),
                        node: "inlet".into(),
                        celsius,
                    },
                )?;
            }
            println!("t=480s: raised machine1 inlet to 38.6 °C, machine3 to 35.6 °C (via fiddle)");
            emergency_sent = true;
        }
        if t % 200 == 199 {
            let weights: Vec<f64> = {
                let sim = sim.lock();
                (0..4).map(|i| sim.lvs().weight(i)).collect()
            };
            let m1 = Sensor::open(solver.local_addr(), "machine1", "cpu")?;
            println!(
                "t={:>4}s  m1 cpu {:>5.1}  weights {:?}",
                t + 1,
                m1.read()?.0,
                weights
                    .iter()
                    .map(|w| (w * 100.0).round() / 100.0)
                    .collect::<Vec<_>>()
            );
        }
        std::thread::sleep(Duration::from_millis(MS_PER_SECOND));
    }
    stop.store(true, Ordering::Relaxed);

    let sim = sim.lock();
    println!(
        "\nfinal: offered {}, dropped {} ({:.2}%), mean response {:.0} ms, admd handled {} messages",
        sim.total_offered(),
        sim.total_dropped(),
        sim.drop_rate() * 100.0,
        sim.mean_response_time_s() * 1000.0,
        admd.messages_handled()
    );
    drop(sim);
    for (monitord, tempd) in daemons {
        monitord.shutdown();
        tempd.shutdown();
    }
    admd.shutdown();
    solver.shutdown();
    Ok(())
}
