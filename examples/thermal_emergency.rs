//! Injecting a thermal emergency with `fiddle` (the paper's Figure 4).
//!
//! A cooling failure is simulated by pinning a machine's inlet air at
//! 30 °C for 200 seconds; the CPU heats toward a new equilibrium and
//! recovers after the "repair". The same script drives both the
//! in-process solver and (commented path) a remote solver service.
//!
//! Run with: `cargo run --example thermal_emergency`

use mercury_freon::mercury::fiddle::FiddleScript;
use mercury_freon::mercury::presets::{self, nodes};
use mercury_freon::mercury::solver::{Solver, SolverConfig};
use mercury_freon::mercury::units::Seconds;

const SCRIPT: &str = "#!/bin/bash
# Figure 4 of the paper: a 200-second cooling failure.
sleep 100
fiddle machine1 temperature inlet 30
sleep 200
fiddle machine1 temperature inlet 21.6
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = presets::validation_machine_named("machine1");
    let mut solver = Solver::new(&model, SolverConfig::default())?;
    solver.set_utilization(nodes::CPU, 0.7)?;

    let script = FiddleScript::parse(SCRIPT)?;
    println!("script events:");
    for event in script.events() {
        println!("  t={:>5}  {}", event.at, event.command);
    }

    let mut runner = script.runner();
    println!("\ntime   inlet    cpu_air  cpu");
    for t in 0..600u64 {
        runner.apply_due_to_solver(Seconds(t as f64), &mut solver)?;
        solver.step();
        if t % 50 == 49 {
            println!(
                "{:>4}  {:>7.1}  {:>7.1}  {:>6.1}",
                t + 1,
                solver.temperature(nodes::INLET)?.0,
                solver.temperature(nodes::CPU_AIR)?.0,
                solver.temperature(nodes::CPU)?.0,
            );
        }
    }
    println!("\n(the inlet jumps to 30 °C at t=100 and back at t=300; the CPU\n lags behind with its ~3-minute thermal time constant)");
    Ok(())
}
