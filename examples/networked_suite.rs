//! The full networked Mercury deployment (the paper's Figure 2): a
//! cluster solver service, one `monitord` per emulated server streaming
//! UDP utilization updates, sensors reading temperatures remotely, and
//! `fiddle` injecting an emergency over the wire.
//!
//! Run with: `cargo run --example networked_suite`

use mercury_freon::mercury::fiddle::FiddleCommand;
use mercury_freon::mercury::net::{
    send_fiddle, FnSource, Monitord, Sensor, ServiceConfig, SolverService,
};
use mercury_freon::mercury::presets;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The solver runs "on a separate machine" — here, a separate thread
    // behind a UDP socket, fast-forwarding 1 s of emulated time per
    // millisecond of wall time.
    let cluster = presets::validation_cluster(2);
    let service = SolverService::spawn_cluster(&cluster, ServiceConfig::fast())?;
    println!("solver service on {}", service.local_addr());

    // One monitord per server. machine1 is busy, machine2 idles.
    let busy = Monitord::spawn(
        "machine1",
        FnSource(|| vec![("cpu".to_string(), 0.9), ("disk_platters".to_string(), 0.4)]),
        service.local_addr(),
        Duration::from_millis(2),
    )?;
    let idle = Monitord::spawn(
        "machine2",
        FnSource(|| vec![("cpu".to_string(), 0.05)]),
        service.local_addr(),
        Duration::from_millis(2),
    )?;

    // Sensors for both machines' CPUs (the Figure 3 interface).
    let s1 = Sensor::open(service.local_addr(), "machine1", "cpu")?;
    let s2 = Sensor::open(service.local_addr(), "machine2", "cpu")?;

    println!("\nletting the emulation run (1 ms wall = 1 s emulated)...");
    std::thread::sleep(Duration::from_millis(600));
    let (t1, at1) = s1.read_with_time()?;
    let (t2, _) = s2.read_with_time()?;
    println!("t={at1:.0}s  machine1 cpu {t1}  |  machine2 cpu {t2}");
    println!("(the busy machine runs hotter)");

    // Break machine2's cooling over the wire with fiddle.
    send_fiddle(
        service.local_addr(),
        &FiddleCommand::Temperature {
            machine: "machine2".into(),
            node: "inlet".into(),
            celsius: 38.6,
        },
    )?;
    println!("\nfiddle: machine2 inlet forced to 38.6 °C");
    std::thread::sleep(Duration::from_millis(600));
    let t2_after = s2.read()?;
    println!("machine2 cpu after the emergency: {t2_after}");

    s1.close();
    s2.close();
    busy.shutdown();
    idle.shutdown();
    service.shutdown();
    Ok(())
}
