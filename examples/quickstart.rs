//! Quickstart: emulate the paper's Table 1 server and read its sensors.
//!
//! This walks the same path as the paper's Figure 3 example — start a
//! solver, open a sensor, read temperatures — both in-process and over
//! the UDP interface.
//!
//! Run with: `cargo run --example quickstart`

use mercury_freon::mercury::net::{Sensor, ServiceConfig, SolverService};
use mercury_freon::mercury::presets::{self, nodes};
use mercury_freon::mercury::solver::{Solver, SolverConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ----- In-process emulation ------------------------------------------
    // The Pentium III validation server with the paper's Table 1 constants.
    let model = presets::validation_machine();
    println!(
        "loaded `{}`: {} nodes, {} heat edges, {} air edges, fan {:.1} cfm",
        model.name(),
        model.nodes().len(),
        model.heat_edges().len(),
        model.air_edges().len(),
        model.fan().to_cfm()
    );

    let mut solver = Solver::new(&model, SolverConfig::default())?;
    solver.set_utilization(nodes::CPU, 0.8)?;
    solver.set_utilization(nodes::DISK_PLATTERS, 0.3)?;

    println!("\nwarming up at 80% CPU / 30% disk:");
    for minutes in 1..=10 {
        solver.step_for(60);
        println!(
            "  t={:>4}s  cpu {:5.1}  cpu_air {:5.1}  disk {:5.1}",
            minutes * 60,
            solver.temperature(nodes::CPU)?,
            solver.temperature(nodes::CPU_AIR)?,
            solver.temperature(nodes::DISK_SHELL)?,
        );
    }

    // ----- The networked sensor interface (Figure 3) ---------------------
    // The solver service is Mercury's normal deployment: it runs on its
    // own machine and applications probe it like a local sensor device.
    // `ServiceConfig::fast()` compresses a simulated second into a
    // millisecond so this example finishes instantly.
    let service = SolverService::spawn_machine(&model, ServiceConfig::fast())?;
    println!("\nsolver service listening on {}", service.local_addr());

    // The paper's three calls: opensensor / readsensor / closesensor.
    let sensor = Sensor::open(service.local_addr(), "", nodes::DISK_SHELL)?;
    let temp = sensor.read()?;
    println!("readsensor(disk) -> {temp}");
    sensor.close();
    service.shutdown();
    Ok(())
}
