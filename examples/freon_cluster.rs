//! Freon managing a four-server cluster through two inlet emergencies —
//! a compact version of the paper's §5.1 experiment (Figure 11).
//!
//! Run with: `cargo run --release --example freon_cluster`

use mercury_freon::cluster::{ClusterSim, ServerConfig};
use mercury_freon::freon::{Experiment, ExperimentConfig, FreonConfig, FreonPolicy};
use mercury_freon::mercury::fiddle::FiddleScript;
use mercury_freon::mercury::presets;
use mercury_freon::workload::{DiurnalProfile, RequestMix, WorkloadGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The thermal model: four servers fed by one AC (Figure 1c).
    let model = presets::freon_cluster(4);
    // The substrate Freon manages: four Apache-like servers behind LVS.
    let sim = ClusterSim::homogeneous(4, ServerConfig::default());

    // The paper's trace recipe: diurnal load, 30% CGI, peak at 70%
    // utilization across the four servers.
    let mix = RequestMix::paper();
    let peak = mix.rps_for_cpu_utilization(0.7, 4, 1000.0);
    let profile = DiurnalProfile::new(2000.0, peak * 0.15, peak)
        .with_peak_at(0.70)
        .with_plateau(0.3);
    let trace = WorkloadGenerator::new(profile, mix, 42).generate(2000);

    // Two thermal emergencies at t=480 s, lasting the whole run.
    let script = FiddleScript::parse(
        "sleep 480\nfiddle machine1 temperature inlet 38.6\nfiddle machine3 temperature inlet 35.6\n",
    )?;

    let config = ExperimentConfig {
        duration_s: 2000,
        ..Default::default()
    };
    let mut policy = FreonPolicy::new(FreonConfig::paper(), 4);
    let log = Experiment::new(&model, sim, &trace, Some(&script), config)?.run(&mut policy)?;

    println!("time   m1_temp m2_temp m3_temp m4_temp   m1_w  active  dropped");
    for row in log.rows().iter().filter(|r| r.time_s % 100 == 99) {
        println!(
            "{:>4}   {:>6.1}  {:>6.1}  {:>6.1}  {:>6.1}   {:>5.2}  {:>5}   {:>5}",
            row.time_s + 1,
            row.cpu_temp[0],
            row.cpu_temp[1],
            row.cpu_temp[2],
            row.cpu_temp[3],
            row.weight[0],
            row.active_servers,
            row.dropped,
        );
    }
    println!(
        "\nsummary: {} adjustments, {} red-line shutdowns, {}/{} requests dropped ({:.2}%)",
        policy.adjustments(),
        policy.red_line_shutdowns(),
        log.total_dropped(),
        log.total_offered(),
        log.drop_rate() * 100.0
    );
    println!(
        "peak CPU temperatures: {:?}",
        (0..4)
            .map(|i| log.max_cpu_temp(i).round())
            .collect::<Vec<_>>()
    );
    Ok(())
}
